//! End-to-end CLI error contract: the `timecsl` binary exits with the
//! class-pinned code (README, "Exit codes"), prints one `error:` line on
//! stderr, and — with `TCSL_TRACE=1` — still writes a complete trace: the
//! `error` event in the JSONL stream and an `error.<class>` counter in
//! the `RUN_trace.json` summary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use timecsl::data::io;
use timecsl::prelude::*;
use timecsl::shapelet::{Measure, ShapeletBank, ShapeletConfig};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_timecsl")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .env_remove("TCSL_TRACE")
        .output()
        .expect("spawn timecsl")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_fails_with(args: &[&str], code: i32, needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(code),
        "`timecsl {}`: expected exit {code}, got {:?}; stderr: {}",
        args.join(" "),
        out.status.code(),
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(
        err.contains("error: ") && err.contains(needle),
        "`timecsl {}`: stderr missing {needle:?}: {err}",
        args.join(" ")
    );
}

/// A scratch dir with a small valid model and dataset the error cases can
/// build on.
fn fixtures(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("tcsl_cli_errors_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = ShapeletConfig {
        lengths: vec![4, 8],
        k_per_group: 2,
        measures: vec![Measure::Euclidean],
        stride: 1,
    };
    let model = TimeCsl::from_bank(ShapeletBank::new(&cfg, 1));
    let model_path = dir.join("model.tcsl");
    model.save(&model_path).unwrap();
    let series: Vec<TimeSeries> = (0..6)
        .map(|i| {
            let v: Vec<f32> = (0..24).map(|t| ((t + i) as f32 * 0.4).sin()).collect();
            TimeSeries::multivariate(vec![v])
        })
        .collect();
    let ds = Dataset::labeled("d", series, vec![0, 1, 0, 1, 0, 1]);
    let data_path = dir.join("data.csv");
    io::save_csv(&ds, &data_path).unwrap();
    (dir, model_path, data_path)
}

fn p(path: &Path) -> String {
    path.to_string_lossy().into_owned()
}

#[test]
fn usage_errors_exit_2() {
    assert_fails_with(&[], 2, "usage");
    assert_fails_with(&["frobnicate"], 2, "usage");
    assert_fails_with(&["pretrain"], 2, "missing argument");
    // Satellite (a): non-numeric and zero epoch counts are usage errors
    // caught before any file is touched.
    assert_fails_with(
        &["pretrain", "train.csv", "model.tcsl", "twelve"],
        2,
        "epochs must be a number, got 'twelve'",
    );
    assert_fails_with(
        &["pretrain", "train.csv", "model.tcsl", "0"],
        2,
        "epochs must be at least 1",
    );
}

#[test]
fn io_errors_exit_3() {
    let (_dir, model, _data) = fixtures("io");
    assert_fails_with(
        &[
            "transform",
            &p(&model),
            "/nonexistent/data.csv",
            "/tmp/out.csv",
        ],
        3,
        "/nonexistent/data.csv",
    );
    assert_fails_with(&["info", "/nonexistent/data.csv"], 3, "data.csv");
}

#[test]
fn parse_errors_exit_4() {
    let (dir, model, _data) = fixtures("parse");
    // A CSV with a non-numeric value is a Parse error naming the line.
    let bad_csv = dir.join("bad.csv");
    std::fs::write(
        &bad_csv,
        "series,label,variable,t,value\n0,0,0,0,not_a_number\n",
    )
    .unwrap();
    assert_fails_with(&["info", &p(&bad_csv)], 4, "line 2");
    // A model with a non-numeric weight is Parse too.
    let text = std::fs::read_to_string(&model).unwrap();
    let corrupt: String = {
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let row = lines.iter().position(|l| l.starts_with("group ")).unwrap() + 1;
        lines[row] = format!("abc {}", lines[row]);
        format!("{}\n", lines.join("\n"))
    };
    let bad_model = dir.join("bad_weights.tcsl");
    std::fs::write(&bad_model, corrupt).unwrap();
    let out = run(&["info", &p(&bad_csv)]);
    assert_eq!(out.status.code(), Some(4));
    assert_fails_with(
        &["transform", &p(&bad_model), &p(&bad_csv), "/tmp/out.csv"],
        4,
        "bad weight",
    );
}

#[test]
fn model_format_errors_exit_5() {
    let (dir, _model, data) = fixtures("mf");
    let garbage = dir.join("garbage.tcsl");
    std::fs::write(&garbage, "this is not a model file\n").unwrap();
    assert_fails_with(
        &["transform", &p(&garbage), &p(&data), "/tmp/out.csv"],
        5,
        "tcsl-bank v1 header",
    );
    let bad_norm = dir.join("bad_norm.tcsl");
    std::fs::write(&bad_norm, "tcsl-model v2 normalization=sigma\n").unwrap();
    assert_fails_with(
        &["transform", &p(&bad_norm), &p(&data), "/tmp/out.csv"],
        5,
        "normalization",
    );
}

#[test]
fn shape_mismatch_errors_exit_6() {
    let (dir, model, _data) = fixtures("shape");
    // The model expects univariate series; feed a 2-variable CSV.
    let series = vec![TimeSeries::multivariate(vec![
        vec![0.5; 24],
        vec![0.25; 24],
    ])];
    let wide = Dataset::unlabeled("wide", series);
    let wide_csv = dir.join("wide.csv");
    io::save_csv(&wide, &wide_csv).unwrap();
    assert_fails_with(
        &["transform", &p(&model), &p(&wide_csv), "/tmp/out.csv"],
        6,
        "variables",
    );
}

#[test]
fn empty_input_errors_exit_7() {
    let (dir, model, _data) = fixtures("empty");
    let empty_csv = dir.join("empty.csv");
    std::fs::write(&empty_csv, "series,label,variable,t,value\n").unwrap();
    assert_fails_with(
        &["transform", &p(&model), &p(&empty_csv), "/tmp/out.csv"],
        7,
        "empty",
    );
}

#[test]
fn non_finite_input_errors_exit_8() {
    let (dir, model, _data) = fixtures("nan");
    let nan_csv = dir.join("nan.csv");
    let mut body = String::from("series,label,variable,t,value\n");
    for t in 0..24 {
        let v = if t == 3 {
            "NaN".into()
        } else {
            format!("{}", t as f32 * 0.1)
        };
        body.push_str(&format!("0,-1,0,{t},{v}\n"));
    }
    std::fs::write(&nan_csv, body).unwrap();
    assert_fails_with(
        &["transform", &p(&model), &p(&nan_csv), "/tmp/out.csv"],
        8,
        "non-finite",
    );
}

#[test]
fn cluster_and_match_argument_errors_exit_2() {
    let (_dir, model, data) = fixtures("args");
    assert_fails_with(
        &["cluster", &p(&model), &p(&data), "zero"],
        2,
        "k must be a number",
    );
    assert_fails_with(
        &["cluster", &p(&model), &p(&data), "0"],
        2,
        "k must be at least 1",
    );
    // Out-of-range series/feature indices surface as Config from the
    // explore session, not as panics.
    assert_fails_with(
        &["match", &p(&model), &p(&data), "999", "0", "/tmp/out.svg"],
        2,
        "out of range",
    );
}

#[test]
fn failed_runs_still_write_a_complete_trace() {
    let (dir, model, data) = fixtures("trace");
    let jsonl = dir.join("trace.jsonl");
    let summary = dir.join("trace.json");
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&summary).ok();
    let out = Command::new(bin())
        .args(["cluster", &p(&model), &p(&data), "0"])
        .env("TCSL_TRACE", "1")
        .env("TCSL_TRACE_OUT", &jsonl)
        .output()
        .expect("spawn timecsl");
    assert_eq!(out.status.code(), Some(2));

    // The JSONL stream carries a structured error event with the class.
    let stream = std::fs::read_to_string(&jsonl).expect("trace jsonl written");
    let error_line = stream
        .lines()
        .find(|l| l.contains("\"event\":\"error\""))
        .expect("an error event in the trace stream");
    assert!(error_line.contains("\"class\":\"config\""), "{error_line}");
    assert!(error_line.contains("k must be at least 1"), "{error_line}");

    // The summary is valid (starts with the schema header, balanced
    // braces) and counts the failure under error.config.
    let body = std::fs::read_to_string(&summary).expect("run summary written");
    assert!(
        body.starts_with("{\"schema\":\"tcsl-run-trace-v2\""),
        "summary lost its schema header: {body}"
    );
    let opens = body.matches('{').count();
    let closes = body.matches('}').count();
    assert_eq!(opens, closes, "unbalanced summary JSON");
    assert!(
        body.contains("\"error.config\":1"),
        "summary missing the error.config counter: {body}"
    );
    assert!(
        body.contains("\"error.io\":0"),
        "well-known error counters should be present even at zero: {body}"
    );
}

#[test]
fn successful_runs_exit_zero() {
    let (dir, model, data) = fixtures("ok");
    let out_csv = dir.join("features.csv");
    let out = run(&["transform", &p(&model), &p(&data), &p(&out_csv)]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let written = std::fs::read_to_string(&out_csv).unwrap();
    assert!(written.lines().count() > 1, "no features written");
}

/// A real v2 run summary to feed `timecsl trace`: one traced transform
/// run, summarized next to its JSONL stream.
fn real_summary(tag: &str) -> (PathBuf, PathBuf) {
    let (dir, model, data) = fixtures(tag);
    let jsonl = dir.join("trace.jsonl");
    let summary = dir.join("trace.json");
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&summary).ok();
    let out = Command::new(bin())
        .args(["transform", &p(&model), &p(&data), &p(&dir.join("z.csv"))])
        .env("TCSL_TRACE", "1")
        .env("TCSL_TRACE_OUT", &jsonl)
        .output()
        .expect("spawn timecsl");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    std::fs::read_to_string(&summary).expect("run summary written");
    (dir, summary)
}

#[test]
fn trace_subcommand_rejects_hostile_summaries_with_typed_errors() {
    let (dir, summary) = real_summary("trace_hostile");

    // Missing file is Io (3); an unknown flag is Config (2), caught
    // before any file is touched.
    assert_fails_with(
        &["trace", "/nonexistent/RUN_trace.json"],
        3,
        "RUN_trace.json",
    );
    assert_fails_with(&["trace", &p(&summary), "--frobnicate"], 2, "--frobnicate");

    // Non-JSON garbage is Parse (4) with a 1-based position.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "this is not json {{{").unwrap();
    assert_fails_with(&["trace", &p(&garbage)], 4, "line 1");

    // Valid JSON that is not a run summary is ModelFormat (5).
    let wrong = dir.join("wrong_schema.json");
    std::fs::write(&wrong, "{\"schema\":\"not-a-trace\",\"run\":\"x\"}").unwrap();
    assert_fails_with(&["trace", &p(&wrong)], 5, "tcsl-run-trace");
    let arr = dir.join("array.json");
    std::fs::write(&arr, "[1,2,3]").unwrap();
    assert_fails_with(&["trace", &p(&arr)], 5, "schema");

    // The real summary truncated mid-stream, or with a structural byte
    // flipped, is Parse (4) — never a panic (101) or a success.
    let body = std::fs::read_to_string(&summary).unwrap();
    let truncated = dir.join("truncated.json");
    std::fs::write(&truncated, &body[..body.len() / 2]).unwrap();
    assert_fails_with(&["trace", &p(&truncated)], 4, "");
    let flipped = dir.join("flipped.json");
    std::fs::write(&flipped, body.replacen(':', ";", 1)).unwrap();
    assert_fails_with(&["trace", &p(&flipped)], 4, "");

    // --diff with a missing baseline is Io (3); against itself it is a
    // clean pass (0).
    assert_fails_with(
        &["trace", &p(&summary), "--diff", "/nonexistent/base.json"],
        3,
        "base.json",
    );
    let out = run(&["trace", &p(&summary), "--diff", &p(&summary)]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

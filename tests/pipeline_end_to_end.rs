//! Cross-crate integration: the full Figure-2 pipeline — one unsupervised
//! pre-training run feeding classification, clustering and anomaly
//! detection — exercised through the public facade.

use timecsl::data::archive;
use timecsl::eval::metrics::anomaly::roc_auc;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::eval::metrics::clustering::{adjusted_rand_index, nmi};
use timecsl::prelude::*;

fn quick_cfg(seed: u64) -> CslConfig {
    CslConfig {
        epochs: 6,
        batch_size: 12,
        seed,
        ..Default::default()
    }
}

#[test]
fn one_pretraining_serves_three_tasks() {
    let entry = archive::by_name("MotifMulti").unwrap();
    let (train, test) = archive::generate_split(&entry, 100);
    let (model, report) = TimeCsl::pretrain(&train, None, &quick_cfg(1));

    // Learning curve exists and is finite.
    assert_eq!(report.epoch_total.len(), 6);
    assert!(report.epoch_total.iter().all(|l| l.is_finite()));

    let ztr = model.transform(&train).unwrap();
    let zte = model.transform(&test).unwrap();

    // Classification well above the 20% chance level of 5 classes.
    let mut svm = LinearSvm::new();
    svm.fit(&ztr, train.labels().unwrap()).unwrap();
    let acc = accuracy(&svm.predict(&zte).unwrap(), test.labels().unwrap());
    assert!(acc > 0.6, "freeze-mode SVM accuracy only {acc}");

    // Clustering recovers most of the class structure.
    let mut km = KMeans::new(5);
    let assign = km.fit_predict(&zte).unwrap();
    let score = nmi(&assign, test.labels().unwrap());
    assert!(score > 0.4, "k-means NMI only {score}");
    assert!(adjusted_rand_index(&assign, test.labels().unwrap()) > 0.2);

    // Anomaly scoring: planted out-of-distribution series score higher.
    // The k-NN distance detector is the stabler scorer for "far from the
    // training distribution" (isolation forests care about axis-aligned
    // sparsity, which random seeds can wash out on small samples).
    let mut forest = KnnDistance::new(5);
    forest.fit(&ztr).unwrap();
    let mut scores = forest.score(&zte).unwrap();
    // Append scores of pure-noise imposters.
    let mut rng = timecsl::tensor::rng::seeded(9);
    let noise_series: Vec<TimeSeries> = (0..20)
        .map(|_| TimeSeries::new(timecsl::tensor::Tensor::randn([2, 160], &mut rng).scale(3.0)))
        .collect();
    let noise = Dataset::unlabeled("noise", noise_series);
    scores.extend(forest.score(&model.transform(&noise).unwrap()).unwrap());
    let labels: Vec<bool> = (0..zte.rows())
        .map(|_| false)
        .chain((0..20).map(|_| true))
        .collect();
    // Loose sanity bound: the pipeline z-normalizes, so the imposters
    // differ only in *pattern* (no planted motifs), not amplitude.
    let auc = roc_auc(&scores, &labels);
    assert!(auc > 0.7, "imposter detection AUC only {auc}");
}

#[test]
fn freezing_mode_accepts_any_analyzer() {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, test) = archive::generate_split(&entry, 101);
    let (model, _) = TimeCsl::pretrain(&train, None, &quick_cfg(2));
    let ztr = model.transform(&train).unwrap();
    let zte = model.transform(&test).unwrap();
    let y = train.labels().unwrap();
    let yt = test.labels().unwrap();

    let analyzers: Vec<(&str, Box<dyn Classifier>)> = vec![
        ("svm", Box::new(LinearSvm::new())),
        ("logreg", Box::new(LogisticRegression::new())),
        ("knn", Box::new(KnnClassifier::new(3))),
        ("tree", Box::new(DecisionTree::new(6))),
        ("gbdt", Box::new(GradientBoosting::new(15))),
    ];
    for (name, mut clf) in analyzers {
        clf.fit(&ztr, y).unwrap();
        let acc = accuracy(&clf.predict(&zte).unwrap(), yt);
        assert!(
            acc > 0.6,
            "{name} accuracy only {acc} on MotifEasy features"
        );
    }
}

#[test]
fn representation_is_length_and_dataset_agnostic() {
    // Train on one dataset, transform another with different T: dimensions
    // stay fixed, values finite — the "unified vector representation".
    let (train, _) = archive::generate_split(&archive::by_name("MotifEasy").unwrap(), 102);
    let (model, _) = TimeCsl::pretrain(&train, None, &quick_cfg(3));
    let (other, _) = archive::generate_split(&archive::by_name("PeriodicWave").unwrap(), 103);
    let z = model.transform(&other).unwrap();
    assert_eq!(z.cols(), model.repr_dim());
    assert_eq!(z.rows(), other.len());
    assert!(z.all_finite());
}

#[test]
fn model_save_load_preserves_features_through_facade() {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, test) = archive::generate_split(&entry, 104);
    let (model, _) = TimeCsl::pretrain(&train, None, &quick_cfg(4));
    let dir = std::env::temp_dir().join("timecsl_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.tcsl");
    model.save(&path).unwrap();
    let loaded = TimeCsl::load(&path).unwrap();
    assert!(
        model
            .transform(&test)
            .unwrap()
            .max_abs_diff(&loaded.transform(&test).unwrap())
            < 1e-5
    );
    std::fs::remove_file(path).ok();
}

//! Integration: the fine-tuning mode and the semi-supervised claim of §2.2
//! — pre-training + fine-tuning holds up under label scarcity where a
//! from-scratch supervised model degrades.

use timecsl::baselines::fcn::FcnConfig;
use timecsl::baselines::{CnnArch, SupervisedCnn};
use timecsl::data::archive;
use timecsl::data::split::label_fraction_split;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::prelude::*;
use timecsl::tensor::rng::seeded;

#[test]
fn finetuning_improves_over_frozen_head_on_training_loss() {
    let entry = archive::by_name("GestureSmall").unwrap();
    let (train, test) = archive::generate_split(&entry, 200);
    let csl = CslConfig {
        epochs: 5,
        batch_size: 12,
        seed: 7,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train, None, &csl);

    // Frozen: linear probing only.
    let mut frozen = model.clone();
    let (head_frozen, rep_frozen) = frozen.fine_tune(
        &train,
        &FineTuneConfig {
            epochs: 12,
            freeze_shapelets: true,
            seed: 1,
            ..Default::default()
        },
    );
    // Joint: shapelets adapt too.
    let mut joint = model.clone();
    let (head_joint, rep_joint) = joint.fine_tune(
        &train,
        &FineTuneConfig {
            epochs: 12,
            freeze_shapelets: false,
            seed: 1,
            ..Default::default()
        },
    );
    // Joint optimization reaches a lower training loss than probing.
    assert!(
        rep_joint.epoch_loss.last().unwrap() <= rep_frozen.epoch_loss.last().unwrap(),
        "joint {} vs frozen {}",
        rep_joint.epoch_loss.last().unwrap(),
        rep_frozen.epoch_loss.last().unwrap()
    );
    // Both reach reasonable test accuracy.
    let yt = test.labels().unwrap();
    let acc_frozen = accuracy(&head_frozen.predict(&frozen.transform(&test).unwrap()), yt);
    let acc_joint = accuracy(&head_joint.predict(&joint.transform(&test).unwrap()), yt);
    assert!(acc_frozen > 0.5, "frozen accuracy {acc_frozen}");
    assert!(acc_joint > 0.5, "joint accuracy {acc_joint}");
}

#[test]
fn pretraining_beats_from_scratch_with_scarce_labels() {
    let entry = archive::by_name("GestureSmall").unwrap();
    let (train, test) = archive::generate_split(&entry, 201);
    let yt = test.labels().unwrap();

    // Pre-train on everything (no labels), fine-tune on 10%.
    let csl = CslConfig {
        epochs: 6,
        batch_size: 12,
        seed: 3,
        ..Default::default()
    };
    let (pretrained, _) = TimeCsl::pretrain(&train, None, &csl);
    let mut rng = seeded(11);
    let (labeled, _) = label_fraction_split(&train, 0.1, &mut rng);
    assert!(labeled.len() < train.len() / 5);

    let mut model = pretrained.clone();
    let (head, _) = model.fine_tune(
        &labeled,
        &FineTuneConfig {
            epochs: 20,
            seed: 3,
            ..Default::default()
        },
    );
    let csl_acc = accuracy(&head.predict(&model.transform(&test).unwrap()), yt);

    // Supervised CNN from scratch on the same 10%.
    let mut fcn = SupervisedCnn::new(
        train.n_vars(),
        train.n_classes(),
        CnnArch::default(),
        FcnConfig {
            epochs: 20,
            seed: 3,
            ..Default::default()
        },
    );
    fcn.fit(&labeled.znormed());
    let fcn_acc = accuracy(&fcn.predict(&test.znormed()), yt);

    assert!(
        csl_acc >= fcn_acc,
        "semi-supervised CSL ({csl_acc}) should not lose to from-scratch CNN ({fcn_acc}) at 10% labels"
    );
    assert!(csl_acc > 0.5, "semi-supervised accuracy only {csl_acc}");
}

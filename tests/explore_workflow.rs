//! Integration: the §3 step-4 exploration loop — match, tabular, t-SNE,
//! and iterative re-analysis with selected shapelets.

use timecsl::data::archive;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::prelude::*;

fn session() -> (ExploreSession, Dataset, Dataset) {
    let entry = archive::by_name("GestureSmall").unwrap();
    let (train, test) = archive::generate_split(&entry, 300);
    let csl = CslConfig {
        epochs: 5,
        batch_size: 12,
        seed: 5,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train, None, &csl);
    (
        ExploreSession::new(model, test.clone()).unwrap(),
        train,
        test,
    )
}

#[test]
fn matches_localize_and_agree_with_features() {
    let (session, _, test) = session();
    for col in [0usize, 7, 20] {
        for i in [0usize, 3] {
            let m = session.match_shapelet(i, col).unwrap();
            assert!(m.start + m.len <= test.series(i).len().max(m.len));
            assert!(
                (m.score - session.features().at2(i, col)).abs() < 1e-4,
                "match score and cached feature diverge at series {i}, column {col}"
            );
        }
    }
}

#[test]
fn figure3_panels_render_as_svg() {
    let (session, _, test) = session();
    for svg in [
        session.render_series(0).unwrap(),
        session.render_shapelet(0).unwrap(),
        session.render_match(0, 0).unwrap(),
    ] {
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(!svg.contains("NaN"));
    }
    let tsne = session
        .render_tsne(
            None,
            &TsneConfig {
                iterations: 50,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(tsne.matches("<circle").count(), test.len());
}

#[test]
fn tabular_sorting_ranks_best_matches_first() {
    let (session, _, _) = session();
    // Column 0 is a euclidean feature: ascending sort = best matches first.
    let table = session.tabular(None).unwrap();
    let order = table.sort_by(0, true);
    for w in order.windows(2) {
        assert!(table.value(w[0], 0) <= table.value(w[1], 0));
    }
}

#[test]
fn redo_analysis_with_subset_still_classifies() {
    let (session, train, test) = session();
    // Keep the longest scale only (the demo's exploration insight).
    let scales = session.model().bank().scales();
    let reduced = session.with_scale(*scales.last().unwrap()).unwrap();
    assert!(reduced.features().cols() < session.features().cols());

    let mut svm = LinearSvm::new();
    let ztr = reduced.model().transform(&train).unwrap();
    svm.fit(&ztr, train.labels().unwrap()).unwrap();
    let pred = svm.predict(reduced.features()).unwrap();
    let acc = accuracy(&pred, test.labels().unwrap());
    assert!(acc > 0.5, "subset accuracy only {acc}");
}

#[test]
fn feature_subsets_match_full_model_columns() {
    let (session, _, _) = session();
    let cols = [1usize, 4, 9];
    let reduced = session.with_selected(&cols).unwrap();
    for i in 0..session.dataset().len() {
        for (k, &c) in cols.iter().enumerate() {
            assert!((reduced.features().at2(i, k) - session.features().at2(i, c)).abs() < 1e-5);
        }
    }
}

//! Hostile-input integration suite (DESIGN.md, "Error taxonomy & panic
//! policy"): every request-path entry point, fed deliberately broken
//! input, must return a typed [`TcslError`] — never panic. Each case runs
//! under `catch_unwind` so a regression to `panic!`/`unwrap` fails the
//! suite with the offending case named, not an opaque test abort.

use std::panic::{catch_unwind, AssertUnwindSafe};
use timecsl::data::io;
use timecsl::prelude::*;
use timecsl::shapelet::{Measure, ShapeletBank, ShapeletConfig};
use timecsl::tensor::Tensor;

/// Runs one hostile case and returns its typed error; panicking is the
/// failure mode this suite exists to catch.
fn must_err<T: std::fmt::Debug>(what: &str, f: impl FnOnce() -> TcslResult<T>) -> TcslError {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(v)) => panic!("{what}: hostile input was accepted: {v:?}"),
        Ok(Err(e)) => e,
        Err(_) => panic!("{what}: panicked instead of returning a typed error"),
    }
}

/// Runs one case that may legitimately succeed or fail — only a panic is
/// a defect (used for fuzz-ish byte corruption where some mutations stay
/// well-formed).
fn must_not_panic<T>(what: &str, f: impl FnOnce() -> TcslResult<T>) {
    if catch_unwind(AssertUnwindSafe(f)).is_err() {
        panic!("{what}: panicked on hostile input");
    }
}

fn small_model() -> TimeCsl {
    let cfg = ShapeletConfig {
        lengths: vec![4, 8],
        k_per_group: 2,
        measures: vec![Measure::Euclidean],
        stride: 1,
    };
    TimeCsl::from_bank(ShapeletBank::new(&cfg, 2))
}

fn bivariate(values: [&[f32]; 2]) -> TimeSeries {
    TimeSeries::multivariate(vec![values[0].to_vec(), values[1].to_vec()])
}

fn good_series(t: usize) -> TimeSeries {
    let v: Vec<f32> = (0..t).map(|i| (i as f32 * 0.3).sin()).collect();
    TimeSeries::multivariate(vec![v.clone(), v])
}

// ------------------------------------------------------------- model files

#[test]
fn every_truncated_model_file_is_a_typed_error() {
    let text = small_model().to_text();
    let lines: Vec<&str> = text.lines().collect();
    for n in 0..lines.len() {
        let prefix = format!("{}\n", lines[..n].join("\n"));
        must_err(&format!("model prefix of {n} lines"), || {
            TimeCsl::from_text(&prefix)
        });
    }
}

#[test]
fn byte_corrupted_model_files_never_panic() {
    let text = small_model().to_text();
    // Stamp a hostile byte at positions spread across the whole file:
    // headers, group lines, weight rows. Some mutations still parse (a
    // digit inside a weight), so only a panic is a failure here.
    for step in [1usize, 7, 13] {
        for pos in (0..text.len()).step_by(step * 17 + 3) {
            if !text.is_char_boundary(pos) {
                continue;
            }
            let mut bad = String::with_capacity(text.len() + 1);
            bad.push_str(&text[..pos]);
            bad.push('#');
            bad.push_str(&text[pos + text[pos..].chars().next().map_or(1, char::len_utf8)..]);
            must_not_panic(&format!("model with '#' at byte {pos}"), || {
                TimeCsl::from_text(&bad)
            });
        }
    }
}

#[test]
fn missing_model_file_is_an_io_error() {
    let err = must_err("load of a nonexistent path", || {
        TimeCsl::load("/nonexistent/deeply/model.tcsl")
    });
    assert_eq!(err.class(), ErrorClass::Io);
    assert!(err.to_string().contains("model.tcsl"), "{err}");
}

// -------------------------------------------------------------- csv / ts

#[test]
fn hostile_csv_inputs_are_typed_errors() {
    let cases: &[(&str, &str)] = &[
        ("empty file", ""),
        ("wrong header", "time,value\n0,1.0\n"),
        (
            "ragged row",
            "series,label,variable,t,value\n0,0,0,0,1.0\n0,0,1,0\n",
        ),
        (
            "non-numeric value",
            "series,label,variable,t,value\n0,0,0,0,abc\n",
        ),
        (
            "non-numeric index",
            "series,label,variable,t,value\nx,0,0,0,1.0\n",
        ),
    ];
    for (what, text) in cases {
        let err = must_err(what, || io::from_csv("hostile", text));
        assert!(
            err.class() == ErrorClass::Parse || err.class() == ErrorClass::EmptyInput,
            "{what}: got {:?}: {err}",
            err.class()
        );
    }
}

#[test]
fn hostile_ts_files_are_typed_errors() {
    let dir = std::env::temp_dir().join("tcsl_hostile_inputs");
    std::fs::create_dir_all(&dir).unwrap();
    for (what, text) in [
        ("garbage ts", "not a ts file at all"),
        ("header only ts", "@problemName x\n@data\n"),
    ] {
        let path = dir.join("hostile.ts");
        std::fs::write(&path, text).unwrap();
        must_err(what, || timecsl::data::io_ts::load_ts("hostile", &path));
    }
}

// ------------------------------------------------------------- transform

#[test]
fn transform_rejects_empty_nan_and_mismatched_datasets() {
    let model = small_model();

    let empty = Dataset::unlabeled("empty", Vec::new());
    let err = must_err("transform of empty dataset", || model.transform(&empty));
    assert_eq!(err.class(), ErrorClass::EmptyInput);

    let nan = Dataset::unlabeled(
        "nan",
        vec![bivariate(
            [&[1.0, f32::NAN, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]; 2],
        )],
    );
    let err = must_err("transform of NaN series", || model.transform(&nan));
    assert_eq!(err.class(), ErrorClass::NonFiniteInput);

    let inf = Dataset::unlabeled(
        "inf",
        vec![bivariate(
            [&[1.0, f32::INFINITY, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]; 2],
        )],
    );
    let err = must_err("transform of infinite series", || model.transform(&inf));
    assert_eq!(err.class(), ErrorClass::NonFiniteInput);

    // Model expects D=2 variables; feed a univariate series.
    let skinny = Dataset::unlabeled(
        "skinny",
        vec![TimeSeries::multivariate(vec![vec![0.5; 16]])],
    );
    let err = must_err("transform with wrong variable count", || {
        model.transform(&skinny)
    });
    assert_eq!(err.class(), ErrorClass::ShapeMismatch);

    // A series shorter than the longest shapelet is legal (the transform
    // clamps the window), but must never panic.
    let short = Dataset::unlabeled("short", vec![bivariate([&[1.0, 2.0]; 2])]);
    must_not_panic("transform of too-short series", || model.transform(&short));

    // And the single-series path.
    let err = must_err("transform_one of NaN series", || {
        model.transform_one(&bivariate([&[f32::NAN; 8]; 2]))
    });
    assert_eq!(err.class(), ErrorClass::NonFiniteInput);
}

#[test]
fn feature_subset_requests_are_validated() {
    let model = small_model();
    let dim = model.repr_dim();
    let err = must_err("with_selected_features out of range", || {
        model.with_selected_features(&[dim + 3])
    });
    assert_eq!(err.class(), ErrorClass::Config);
    let err = must_err("with_selected_features empty", || {
        model.with_selected_features(&[])
    });
    assert_eq!(err.class(), ErrorClass::EmptyInput);
    let err = must_err("with_scale unknown", || model.with_scale(9999));
    assert_eq!(err.class(), ErrorClass::Config);
    assert!(
        err.to_string().contains("available scales"),
        "scale error does not list alternatives: {err}"
    );
}

// ------------------------------------------------------------- analyzers

#[test]
fn analyzers_reject_hostile_features_without_panicking() {
    let x = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], [3, 2]);
    let y = vec![0usize, 1, 0];
    let nan = Tensor::from_vec(vec![0.1, f32::NAN, 0.3, 0.4], [2, 2]);
    let empty = Tensor::from_vec(Vec::new(), [0, 2]);
    let wide = Tensor::from_vec(vec![0.0; 9], [3, 3]);

    // Predict before fit.
    let mut svm = LinearSvm::new();
    let err = must_err("svm predict before fit", || svm.predict(&x));
    assert_eq!(err.class(), ErrorClass::Config);
    assert!(err.to_string().contains("before fit"), "{err}");

    // Empty and non-finite training sets.
    let err = must_err("svm fit on empty", || svm.fit(&empty, &[]));
    assert_eq!(err.class(), ErrorClass::EmptyInput);
    let err = must_err("svm fit on NaN", || svm.fit(&nan, &y[..2]));
    assert_eq!(err.class(), ErrorClass::NonFiniteInput);

    // Label/row count mismatch.
    let err = must_err("svm fit with short labels", || svm.fit(&x, &y[..2]));
    assert_eq!(err.class(), ErrorClass::ShapeMismatch);

    // Query width differs from the fitted width.
    svm.fit(&x, &y).unwrap();
    let err = must_err("svm predict on wrong width", || svm.predict(&wide));
    assert_eq!(err.class(), ErrorClass::ShapeMismatch);

    // Clustering and anomaly scoring share the same contract.
    let mut km = KMeans::new(2);
    let err = must_err("kmeans on empty", || km.fit_predict(&empty));
    assert_eq!(err.class(), ErrorClass::EmptyInput);

    let mut forest = KnnDistance::new(3);
    let err = must_err("knn-distance score before fit", || forest.score(&x));
    assert_eq!(err.class(), ErrorClass::Config);
    forest.fit(&x).unwrap();
    let err = must_err("knn-distance score on wrong width", || forest.score(&wide));
    assert_eq!(err.class(), ErrorClass::ShapeMismatch);
}

// ------------------------------------------------------------- explore

#[test]
fn explore_session_requests_are_validated_not_panics() {
    let model = small_model();
    let ds = Dataset::unlabeled("d", (0..5).map(|_| good_series(16)).collect());
    let session = ExploreSession::new(model, ds).unwrap();

    let err = must_err("render_series out of range", || session.render_series(99));
    assert_eq!(err.class(), ErrorClass::Config);
    let err = must_err("match_shapelet bad column", || {
        session.match_shapelet(0, 9999)
    });
    assert_eq!(err.class(), ErrorClass::Config);
    let err = must_err("tabular with bad columns", || {
        session.tabular(Some(&[12345]))
    });
    assert_eq!(err.class(), ErrorClass::Config);
}

#[test]
fn tsne_needs_four_series_as_a_typed_error() {
    let model = small_model();
    let tiny = Dataset::unlabeled("tiny", (0..3).map(|_| good_series(16)).collect());
    let session = ExploreSession::new(model, tiny).unwrap();
    let err = must_err("tsne on 3 series", || {
        session.tsne_embedding(None, &TsneConfig::default())
    });
    assert_eq!(err.class(), ErrorClass::Config);
    assert!(err.to_string().contains("at least 4"), "{err}");
}

// ------------------------------------------------------------ run traces

/// A real v2 run summary body (zero-valued instruments are fine — the
/// shape is what matters to the parser).
fn summary_fixture() -> String {
    timecsl::obs::trace::summary_json("hostile-fixture")
}

fn scratch(name: &str, body: &str) -> String {
    let dir = std::env::temp_dir().join("tcsl_hostile_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn every_truncated_trace_summary_is_a_typed_error() {
    let body = summary_fixture();
    // Every strict prefix is either Parse (cut mid-JSON) or ModelFormat
    // (cut so early the schema header is gone) — never a panic, and
    // never accepted. Step through byte positions; skip the full length.
    for n in (0..body.len()).step_by(7) {
        if !body.is_char_boundary(n) {
            continue;
        }
        let path = scratch("truncated.json", &body[..n]);
        let err = must_err(&format!("summary prefix of {n} bytes"), || {
            timecsl::trace_tool::load_summary(&path)
        });
        assert!(
            matches!(err.class(), ErrorClass::Parse | ErrorClass::ModelFormat),
            "summary prefix of {n} bytes: unexpected class {:?}",
            err.class()
        );
    }
}

#[test]
fn byte_corrupted_trace_summaries_never_panic() {
    let body = summary_fixture();
    // A '#' is never valid JSON syntax outside a string, and inside one
    // it merely changes a name — either way the loader must return,
    // not panic. Some mutations (inside the run name) still load.
    for pos in (0..body.len()).step_by(11) {
        if !body.is_char_boundary(pos) {
            continue;
        }
        let mut bad = String::with_capacity(body.len() + 1);
        bad.push_str(&body[..pos]);
        bad.push('#');
        bad.push_str(&body[pos + body[pos..].chars().next().map_or(1, char::len_utf8)..]);
        let path = scratch("flipped.json", &bad);
        must_not_panic(&format!("summary with '#' at byte {pos}"), || {
            timecsl::trace_tool::load_summary(&path)
        });
    }
}

#[test]
fn deep_nesting_and_non_json_summaries_are_rejected() {
    // A recursion bomb must hit the parser's depth cap, not the stack.
    let bomb = format!("{}{}", "[".repeat(20_000), "]".repeat(20_000));
    let path = scratch("bomb.json", &bomb);
    let err = must_err("20k-deep nesting bomb", || {
        timecsl::trace_tool::load_summary(&path)
    });
    assert_eq!(err.class(), ErrorClass::Parse);
    assert!(err.to_string().contains("nesting deeper than"), "{err}");

    for (name, junk) in [
        ("empty.json", ""),
        ("nul.json", "\u{0}\u{0}"),
        ("half_utf8.json", "{\"schema\": \"tcsl"),
        ("numbers.json", "1e999"),
    ] {
        let path = scratch(name, junk);
        let err = must_err(name, || timecsl::trace_tool::load_summary(&path));
        assert!(
            matches!(err.class(), ErrorClass::Parse | ErrorClass::ModelFormat),
            "{name}: unexpected class {:?}",
            err.class()
        );
    }
}

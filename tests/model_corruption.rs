//! Corrupted-model corpus for the `tcsl-model v3` save/load format
//! (DESIGN.md, "Error taxonomy & panic policy"): every structural mutation
//! of a valid file — truncation at each section boundary, a bad magic, a
//! wrong normalization tag, non-numeric weights — must surface as the
//! *pinned* typed error class, never a panic; and the untouched file must
//! round-trip bit-identically.

use timecsl::shapelet::{Measure, ShapeletBank, ShapeletConfig};
use timecsl::{ErrorClass, TimeCsl};

/// A small deterministic model: two scales × two measures × three
/// shapelets, so the text format has several group sections to truncate.
fn model() -> TimeCsl {
    let cfg = ShapeletConfig {
        lengths: vec![4, 8],
        k_per_group: 3,
        measures: vec![Measure::Euclidean, Measure::Cosine],
        stride: 1,
    };
    TimeCsl::from_bank(ShapeletBank::new(&cfg, 2))
}

fn class_of(text: &str) -> ErrorClass {
    TimeCsl::from_text(text)
        .expect_err("corrupted model text must not parse")
        .class()
}

#[test]
fn good_file_round_trips_bit_identically() {
    let text = model().to_text();
    let reloaded = TimeCsl::from_text(&text).unwrap();
    assert_eq!(reloaded.to_text(), text, "v3 round-trip is not bit-stable");
}

#[test]
fn truncation_at_every_line_boundary_is_a_typed_error() {
    let text = model().to_text();
    let lines: Vec<&str> = text.lines().collect();
    // The full file has: model header, bank header, then per-group a
    // header plus k weight rows. Every strict prefix is structurally
    // damaged — ModelFormat, never a panic and never silent success.
    for n in 0..lines.len() {
        let prefix = if n == 0 {
            String::new()
        } else {
            format!("{}\n", lines[..n].join("\n"))
        };
        let err = TimeCsl::from_text(&prefix)
            .expect_err(&format!("prefix of {n}/{} lines parsed", lines.len()));
        assert_eq!(
            err.class(),
            ErrorClass::ModelFormat,
            "prefix of {n} lines gave {:?}: {err}",
            err.class()
        );
    }
}

#[test]
fn mid_line_truncation_is_a_typed_error() {
    // Cutting inside the last weight row leaves too few values for the
    // final group — a count mismatch, not a parse panic.
    let text = model().to_text();
    let cut = text.len() - text.len() / 10;
    let boundary = text
        .char_indices()
        .map(|(i, _)| i)
        .take_while(|&i| i <= cut)
        .last()
        .unwrap();
    let class = class_of(&text[..boundary]);
    assert!(
        class == ErrorClass::ModelFormat || class == ErrorClass::Parse,
        "mid-line truncation gave {class:?}"
    );
}

#[test]
fn bad_magic_is_model_format() {
    let text = model().to_text();
    // Not `tcsl-model ...` and not a bare bank either.
    let bad = text.replacen("tcsl-model", "tcsl-zzzzz", 1);
    assert_eq!(class_of(&bad), ErrorClass::ModelFormat);
    // An unsupported version number with an otherwise intact file.
    let v99 = text.replacen("tcsl-model v3", "tcsl-model v99", 1);
    assert_ne!(v99, text, "header version drifted — update this test");
    assert_eq!(class_of(&v99), ErrorClass::ModelFormat);
}

#[test]
fn wrong_normalization_tag_is_model_format() {
    let text = model().to_text();
    let bad = text.replacen("normalization=zscore", "normalization=sigma", 1);
    let err = TimeCsl::from_text(&bad).unwrap_err();
    assert_eq!(err.class(), ErrorClass::ModelFormat);
    assert!(
        err.to_string().contains("normalization"),
        "error does not name the bad field: {err}"
    );
    // Tag missing entirely.
    let missing = text.replacen(" normalization=zscore", "", 1);
    assert_eq!(class_of(&missing), ErrorClass::ModelFormat);
}

#[test]
fn non_numeric_weight_is_a_parse_error_with_the_line() {
    let text = model().to_text();
    // The first weight row is the line after the first group header.
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let row = lines
        .iter()
        .position(|l| l.starts_with("group "))
        .expect("a group header")
        + 1;
    let mut toks: Vec<&str> = lines[row].split_whitespace().collect();
    toks[0] = "abc";
    lines[row] = toks.join(" ");
    let bad = format!("{}\n", lines.join("\n"));
    let err = TimeCsl::from_text(&bad).unwrap_err();
    assert_eq!(err.class(), ErrorClass::Parse);
    assert!(
        err.to_string().contains("abc"),
        "parse error does not quote the bad token: {err}"
    );
}

#[test]
fn corrupted_group_header_fields_are_typed_errors() {
    let text = model().to_text();
    // Non-numeric k= in a group header → Parse.
    let bad_k = text.replacen("k=3", "k=three", 1);
    assert_eq!(class_of(&bad_k), ErrorClass::Parse);
    // Unknown measure name → ModelFormat.
    let bad_m = text.replacen("measure=euc", "measure=hamming", 1);
    assert_eq!(class_of(&bad_m), ErrorClass::ModelFormat);
    // A deleted weight makes the value count wrong → ModelFormat.
    let header_end = text.find('\n').unwrap();
    let bank_header_end = text[header_end + 1..].find('\n').unwrap() + header_end + 1;
    let group_end = text[bank_header_end + 1..].find('\n').unwrap() + bank_header_end + 1;
    let row_end = text[group_end + 1..].find('\n').unwrap() + group_end + 1;
    let row = &text[group_end + 1..row_end];
    let shortened = row.rsplit_once(' ').unwrap().0;
    let bad_count = text.replacen(row, shortened, 1);
    assert_eq!(class_of(&bad_count), ErrorClass::ModelFormat);
}

#[test]
fn save_load_through_disk_preserves_the_bytes() {
    let m = model();
    let dir = std::env::temp_dir().join("tcsl_model_corruption");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.tcsl");
    m.save(&path).unwrap();
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(on_disk, m.to_text());
    let loaded = TimeCsl::load(&path).unwrap();
    assert_eq!(loaded.to_text(), m.to_text());
    std::fs::remove_file(path).ok();
}

#[test]
fn loading_a_corrupted_file_names_the_path() {
    let dir = std::env::temp_dir().join("tcsl_model_corruption");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.tcsl");
    std::fs::write(&path, "tcsl-model v2 normalization=sigma\n").unwrap();
    let err = TimeCsl::load(&path).unwrap_err();
    assert_eq!(err.class(), ErrorClass::ModelFormat);
    assert!(
        err.to_string().contains("bad.tcsl"),
        "load error lost the path context: {err}"
    );
    std::fs::remove_file(path).ok();
}

//! Integration: CSV persistence feeding the pipeline — the path the CLI
//! (`timecsl` binary) exercises: dataset → CSV → load → pretrain →
//! features → CSV.

use timecsl::data::{archive, io};
use timecsl::prelude::*;

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("timecsl_data_formats");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn csv_round_trip_preserves_pipeline_behaviour() {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, test) = archive::generate_split(&entry, 800);
    let dir = tmpdir();
    let train_path = dir.join("train.csv");
    io::save_csv(&train, &train_path).unwrap();
    let reloaded = io::load_csv("train", &train_path).unwrap();

    // Same data in, same model out.
    let cfg = CslConfig {
        epochs: 2,
        batch_size: 8,
        seed: 1,
        ..CslConfig::fast()
    };
    let (m1, _) = TimeCsl::pretrain(&train, None, &cfg);
    let (m2, _) = TimeCsl::pretrain(&reloaded, None, &cfg);
    let f1 = m1.transform(&test).unwrap();
    let f2 = m2.transform(&test).unwrap();
    assert!(
        f1.max_abs_diff(&f2) < 1e-5,
        "CSV round trip changed the model"
    );
    std::fs::remove_file(train_path).ok();
}

#[test]
fn feature_matrix_exports_with_stable_header() {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, test) = archive::generate_split(&entry, 801);
    let cfg = CslConfig {
        epochs: 1,
        batch_size: 8,
        seed: 2,
        ..CslConfig::fast()
    };
    let (model, _) = TimeCsl::pretrain(&train, None, &cfg);
    let feats = model.transform(&test).unwrap();
    let csv = io::matrix_to_csv(&feats, &model.feature_names());
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    // Header columns use the bank's stable naming scheme.
    assert!(header.starts_with("L"));
    assert_eq!(header.split(',').count(), model.repr_dim());
    assert_eq!(lines.count(), test.len());
}

#[test]
fn malformed_csv_is_rejected_not_panicking() {
    for bad in [
        "",                                           // empty
        "wrong,header\n1,2",                          // bad header
        "series,label,variable,t,value\n0,0,0,5,1.0", // out-of-order t
        "series,label,variable,t,value\nx,0,0,0,1.0", // bad series id
    ] {
        assert!(
            io::from_csv("bad", bad).is_err(),
            "accepted malformed csv: {bad:?}"
        );
    }
}

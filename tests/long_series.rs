//! Integration: the long-series path (E1d) — the capped-window adaptive
//! configuration keeps the transform tractable at multi-thousand-step
//! series without giving up accuracy.

use std::time::Instant;
use timecsl::data::archive;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::prelude::*;
use timecsl::shapelet::ShapeletConfig;

#[test]
fn capped_window_config_handles_4k_series() {
    let entry = archive::by_name("LongMotif4k").unwrap();
    let (train, test) = archive::generate_split(&entry, 600);
    assert_eq!(train.series(0).len(), 4096);

    let scfg = ShapeletConfig::adaptive_long(4096, 256);
    assert!(scfg.stride > 1, "long config must stride");
    let ccfg = CslConfig {
        epochs: 4,
        batch_size: 8,
        seed: 1,
        ..Default::default()
    };
    let t0 = Instant::now();
    let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
    let ztr = model.transform(&train).unwrap();
    let zte = model.transform(&test).unwrap();
    let elapsed = t0.elapsed();

    let mut svm = LinearSvm::new();
    svm.fit(&ztr, train.labels().unwrap()).unwrap();
    let acc = accuracy(&svm.predict(&zte).unwrap(), test.labels().unwrap());
    assert!(acc > 0.7, "long-series accuracy only {acc}");
    // Tractability: whole train+encode cycle stays interactive.
    assert!(
        elapsed.as_secs_f64() < 30.0,
        "long-series pipeline too slow: {elapsed:?}"
    );
}

#[test]
fn long_and_short_series_share_one_feature_space() {
    // A model trained on 1k-step series transforms 4k-step series into the
    // same representation dimensionality.
    let (train_1k, _) = archive::generate_split(&archive::by_name("LongMotif1k").unwrap(), 601);
    let (other_4k, _) = archive::generate_split(&archive::by_name("LongMotif4k").unwrap(), 602);
    let scfg = ShapeletConfig::adaptive_long(1024, 128);
    let ccfg = CslConfig {
        epochs: 2,
        batch_size: 8,
        seed: 2,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train_1k, Some(scfg), &ccfg);
    let z = model.transform(&other_4k).unwrap();
    assert_eq!(z.cols(), model.repr_dim());
    assert!(z.all_finite());
}

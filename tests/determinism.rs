//! Integration: end-to-end reproducibility — a single seed pins down the
//! whole pipeline (data generation, initialization, view sampling,
//! optimization), and different seeds genuinely differ.

use timecsl::data::archive;
use timecsl::prelude::*;

fn run(seed: u64) -> (Vec<f32>, timecsl::tensor::Tensor) {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, test) = archive::generate_split(&entry, 900);
    let cfg = CslConfig {
        epochs: 3,
        batch_size: 8,
        seed,
        ..CslConfig::fast()
    };
    let (model, report) = TimeCsl::pretrain(&train, None, &cfg);
    (report.epoch_total, model.transform(&test).unwrap())
}

#[test]
fn same_seed_reproduces_bitwise() {
    let (curve_a, feats_a) = run(5);
    let (curve_b, feats_b) = run(5);
    assert_eq!(curve_a, curve_b, "learning curves diverged under one seed");
    assert_eq!(feats_a, feats_b, "features diverged under one seed");
}

#[test]
fn different_seeds_differ() {
    let (_, feats_a) = run(5);
    let (_, feats_b) = run(6);
    assert!(
        feats_a.max_abs_diff(&feats_b) > 1e-6,
        "different seeds produced identical models"
    );
}

#[test]
fn archive_generation_is_seed_stable_across_all_entries() {
    for entry in archive::all_entries() {
        let (a_train, a_test) = archive::generate_split(&entry, 77);
        let (b_train, b_test) = archive::generate_split(&entry, 77);
        assert_eq!(a_train.len(), b_train.len(), "{}", entry.name);
        for i in (0..a_train.len()).step_by(7) {
            assert_eq!(
                a_train.series(i),
                b_train.series(i),
                "{} train {i}",
                entry.name
            );
        }
        assert_eq!(a_test.labels(), b_test.labels(), "{}", entry.name);
    }
}

//! Integration: CSL against the baseline representations on the regimes
//! the paper motivates — shapelet-friendly data where best-match pooling
//! should win, and periodic data where the temporal-neighbourhood
//! assumption fails.

use timecsl::baselines::{features, CnnArch, CnnUrl, Objective, UrlConfig};
use timecsl::data::archive;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::prelude::*;

fn freeze_accuracy(
    ztr: &timecsl::tensor::Tensor,
    ytr: &[usize],
    zte: &timecsl::tensor::Tensor,
    yte: &[usize],
) -> f64 {
    let mut svm = LinearSvm::new();
    svm.fit(ztr, ytr).unwrap();
    accuracy(&svm.predict(zte).unwrap(), yte)
}

#[test]
fn csl_beats_stat_features_on_random_position_motifs() {
    // Motif position is random, so global statistics are weakly
    // informative while best-match shapelet features nail it.
    let entry = archive::by_name("MotifMulti").unwrap();
    let (train, test) = archive::generate_split(&entry, 400);
    let (ytr, yte) = (train.labels().unwrap(), test.labels().unwrap());

    let csl_cfg = CslConfig {
        epochs: 6,
        batch_size: 12,
        seed: 8,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train, None, &csl_cfg);
    let csl_acc = freeze_accuracy(
        &model.transform(&train).unwrap(),
        ytr,
        &model.transform(&test).unwrap(),
        yte,
    );

    let stat_tr = features::extract_dataset(&train.znormed());
    let stat_te = features::extract_dataset(&test.znormed());
    let stat_acc = freeze_accuracy(&stat_tr, ytr, &stat_te, yte);

    assert!(
        csl_acc > stat_acc,
        "CSL ({csl_acc:.3}) should beat global statistics ({stat_acc:.3}) on embedded motifs"
    );
    assert!(csl_acc > 0.6);
}

#[test]
fn csl_beats_tnc_on_periodic_data() {
    // Periodic series violate TNC's "distant ⇒ dissimilar" assumption —
    // the failure mode §1 cites. CSL, agnostic to position, is unaffected.
    let entry = archive::by_name("PeriodicWave").unwrap();
    let (train, test) = archive::generate_split(&entry, 401);
    let (ytr, yte) = (train.labels().unwrap(), test.labels().unwrap());
    let (ntrain, ntest) = (train.znormed(), test.znormed());

    let csl_cfg = CslConfig {
        epochs: 6,
        batch_size: 12,
        seed: 9,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train, None, &csl_cfg);
    let csl_acc = freeze_accuracy(
        &model.transform(&train).unwrap(),
        ytr,
        &model.transform(&test).unwrap(),
        yte,
    );

    let arch = CnnArch {
        hidden: 8,
        out: 16,
        kernel: 3,
        dilations: vec![1, 2, 4],
    };
    let url_cfg = UrlConfig {
        epochs: 6,
        batch_size: 12,
        seed: 9,
        ..Default::default()
    };
    let mut tnc = CnnUrl::new(1, Objective::TemporalNeighbourhood, arch, url_cfg);
    tnc.pretrain(&ntrain);
    let tnc_acc = freeze_accuracy(&tnc.encode(&ntrain), ytr, &tnc.encode(&ntest), yte);

    assert!(
        csl_acc >= tnc_acc,
        "CSL ({csl_acc:.3}) should not lose to TNC ({tnc_acc:.3}) on periodic data"
    );
    assert!(csl_acc > 0.5, "CSL accuracy only {csl_acc}");
}

#[test]
fn all_url_baselines_produce_usable_representations() {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, test) = archive::generate_split(&entry, 402);
    let (ntrain, ntest) = (train.znormed(), test.znormed());
    let (ytr, yte) = (train.labels().unwrap(), test.labels().unwrap());
    for objective in [
        Objective::InstanceContrast,
        Objective::Triplet,
        Objective::TemporalNeighbourhood,
    ] {
        let arch = CnnArch {
            hidden: 8,
            out: 16,
            kernel: 3,
            dilations: vec![1, 2],
        };
        let cfg = UrlConfig {
            epochs: 4,
            batch_size: 10,
            seed: 10,
            ..Default::default()
        };
        let mut url = CnnUrl::new(1, objective, arch, cfg);
        let (time, curve) = url.pretrain(&ntrain);
        assert!(time.as_nanos() > 0);
        assert!(
            curve.iter().all(|l| l.is_finite()),
            "{}: bad curve",
            url.name()
        );
        let acc = freeze_accuracy(&url.encode(&ntrain), ytr, &url.encode(&ntest), yte);
        // Usable ≥ chance on a 2-class problem.
        assert!(acc > 0.45, "{} accuracy only {acc}", url.name());
    }
}

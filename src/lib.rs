//! # timecsl
//!
//! An end-to-end Rust implementation of **TimeCSL** — *Unsupervised
//! Contrastive Learning of General Shapelets for Explorable Time Series
//! Analysis* (VLDB 2024) — and of the CSL framework it builds on.
//!
//! This facade crate re-exports the workspace under task-oriented names and
//! is the only dependency downstream users need:
//!
//! * [`TimeCsl`] — the unified pipeline: unsupervised contrastive
//!   pre-training of the Shapelet Transformer, freezing-mode feature
//!   extraction, and fine-tuning with a linear head.
//! * [`analyzers`] — SVM, logistic regression, k-NN, trees, GBDT, k-means,
//!   agglomerative, isolation forest, k-NN distance scoring.
//! * [`explore`] — shapelet matching, tabular feature views, t-SNE, SVG
//!   rendering.
//! * [`data`] — containers, splits, augmentations, CSV I/O and the
//!   synthetic archive.
//! * [`baselines`] — the competitor methods of the paper's Figure 1.
//!
//! ## Quickstart
//!
//! Fallible steps return the workspace-wide [`TcslError`] and compose
//! with `?` (DESIGN.md, "Error taxonomy & panic policy"):
//!
//! ```
//! use timecsl::prelude::*;
//!
//! # fn main() -> TcslResult<()> {
//! // A small archive dataset (synthetic stand-in for UEA).
//! let entry = timecsl::data::archive::require("MotifEasy")?;
//! let (train, test) = timecsl::data::archive::generate_split(&entry, 7);
//!
//! // Step 1–2: configure + unsupervised contrastive shapelet learning.
//! let csl_cfg = CslConfig { epochs: 2, batch_size: 8, ..CslConfig::fast() };
//! let shapelet_cfg = ShapeletConfig { lengths: vec![8, 16], k_per_group: 3,
//!     measures: vec![Measure::Euclidean], stride: 1 };
//! let (model, _report) = TimeCsl::pretrain(&train, Some(shapelet_cfg), &csl_cfg);
//!
//! // Step 3: freezing mode — any analyzer on the representation.
//! let (ztr, zte) = (model.transform(&train)?, model.transform(&test)?);
//! let mut svm = LinearSvm::new();
//! svm.fit(&ztr, train.labels().unwrap())?;
//! let acc = svm.accuracy(&zte, test.labels().unwrap())?;
//! assert!(acc > 0.4);
//! # Ok(())
//! # }
//! ```

pub use tcsl_analyzers as analyzers;
pub use tcsl_autodiff as autodiff;
pub use tcsl_baselines as baselines;
pub use tcsl_core as core;
pub use tcsl_data as data;
pub use tcsl_error as error;
pub use tcsl_eval as eval;
pub use tcsl_explore as explore;
pub use tcsl_obs as obs;
pub use tcsl_shapelet as shapelet;
pub use tcsl_tensor as tensor;

pub mod trace_tool;

pub use tcsl_core::{CslConfig, FineTuneConfig, LinearHead, TimeCsl, TrainingReport};
pub use tcsl_error::{ErrorClass, TcslError, TcslResult};
pub use tcsl_shapelet::{Measure, ShapeletBank, ShapeletConfig};

/// The commonly used surface in one import.
pub mod prelude {
    pub use crate::analyzers::anomaly::{IsolationForest, KnnDistance};
    pub use crate::analyzers::classify::{
        DecisionTree, GradientBoosting, KnnClassifier, LinearSvm, LogisticRegression, RandomForest,
    };
    pub use crate::analyzers::cluster::{Agglomerative, KMeans};
    pub use crate::analyzers::{AnomalyScorer, Classifier, Clusterer};
    pub use crate::data::{Dataset, TimeSeries};
    pub use crate::explore::{ExploreSession, TsneConfig};
    pub use crate::{
        CslConfig, ErrorClass, FineTuneConfig, LinearHead, Measure, ShapeletConfig, TcslError,
        TcslResult, TimeCsl,
    };
}

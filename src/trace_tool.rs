//! Analysis of `RUN_trace.json` summaries — the library behind the
//! `timecsl trace` subcommand.
//!
//! Three consumers of one parsed [`TraceSummary`]:
//!
//! * [`render_report`] — human-readable ASCII span tree with percentile
//!   columns (fed by the per-span histograms `TCSL_TRACE_HIST=1` adds to
//!   the summary), followed by the histogram and counter sections.
//! * [`render_collapsed`] — span paths in collapsed-stack format
//!   (`a;b;c <self_ns>`), directly consumable by `inferno` /
//!   `flamegraph.pl`. Weights are *self* nanoseconds: a path's total minus
//!   its direct children's totals, so the flamegraph's widths add up.
//! * [`diff`] / [`diff_bench`] — per-metric comparison of two summaries
//!   (or two `BENCH_*.json` reports) with a relative regression threshold,
//!   the primitive the CI perf gate is built on.
//!
//! **Error taxonomy.** Loading follows the PR 8 contract end to end: a
//! missing or unreadable file is `Io` (exit 3), bytes that do not parse as
//! JSON are `Parse` (exit 4), and JSON whose shape is not a
//! `tcsl-run-trace-v*` summary — wrong or missing `schema`, non-object
//! sections — is `ModelFormat` (exit 5). Hostile inputs (truncated,
//! bit-flipped) land in one of those classes; nothing in this module
//! panics on input.

use std::collections::BTreeMap;

use tcsl_error::{TcslError, TcslResult};
use tcsl_obs::json::{self, JsonValue};

/// Derived view of one histogram entry in a summary.
#[derive(Clone, Copy, Debug, Default)]
pub struct HistView {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Mean recorded value.
    pub mean: f64,
    /// Interpolated median.
    pub p50: f64,
    /// Interpolated 90th percentile.
    pub p90: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
    /// Interpolated 99.9th percentile.
    pub p999: f64,
}

/// One span aggregate from a summary, with its duration histogram when the
/// run had `TCSL_TRACE_HIST=1`.
#[derive(Clone, Debug)]
pub struct SpanView {
    /// Completed spans at this path.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
    /// Shortest single span.
    pub min_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
    /// Duration distribution (percentile columns), when recorded.
    pub hist: Option<HistView>,
}

/// A parsed `RUN_trace.json` summary (v1 summaries load with empty
/// histogram sections).
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// The schema tag (`tcsl-run-trace-v1` or `-v2`).
    pub schema: String,
    /// Run label (e.g. `timecsl pretrain`).
    pub run: String,
    /// Deterministic counters.
    pub counters: BTreeMap<String, u64>,
    /// Schedule-class counters (`pool.*`).
    pub sched_counters: BTreeMap<String, u64>,
    /// Gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Deterministic histograms (input-determined values).
    pub histograms: BTreeMap<String, HistView>,
    /// Host-class histograms (latencies, allocation sizes).
    pub host_histograms: BTreeMap<String, HistView>,
    /// Span aggregates by slash-joined path.
    pub spans: BTreeMap<String, SpanView>,
}

/// The schema tags this tool understands.
const SCHEMAS: [&str; 2] = ["tcsl-run-trace-v1", "tcsl-run-trace-v2"];

fn bad_shape(path: &str, what: &str) -> TcslError {
    TcslError::model_format("tcsl-run-trace summary", format!("{path}: {what}"))
}

fn u64_field(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn f64_field(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn hist_view(v: &JsonValue) -> HistView {
    HistView {
        count: u64_field(v, "count"),
        sum: u64_field(v, "sum"),
        mean: f64_field(v, "mean"),
        p50: f64_field(v, "p50"),
        p90: f64_field(v, "p90"),
        p99: f64_field(v, "p99"),
        p999: f64_field(v, "p999"),
    }
}

/// Reads a `(name → u64)` section; a present-but-non-object section is a
/// `ModelFormat` error, an absent one an empty map (v1 compatibility for
/// the histogram sections).
fn u64_section(
    doc: &JsonValue,
    path: &str,
    key: &str,
    required: bool,
) -> TcslResult<BTreeMap<String, u64>> {
    match doc.get(key) {
        None if !required => Ok(BTreeMap::new()),
        None => Err(bad_shape(path, &format!("missing \"{key}\" section"))),
        Some(section) => {
            let fields = section
                .as_obj()
                .ok_or_else(|| bad_shape(path, &format!("\"{key}\" is not an object")))?;
            Ok(fields
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect())
        }
    }
}

fn hist_section(doc: &JsonValue, path: &str, key: &str) -> TcslResult<BTreeMap<String, HistView>> {
    match doc.get(key) {
        // v1 summaries have no histogram sections.
        None => Ok(BTreeMap::new()),
        Some(section) => {
            let fields = section
                .as_obj()
                .ok_or_else(|| bad_shape(path, &format!("\"{key}\" is not an object")))?;
            Ok(fields
                .iter()
                .map(|(k, v)| (k.clone(), hist_view(v)))
                .collect())
        }
    }
}

/// Loads and validates one summary file. `Io` when unreadable, `Parse`
/// when not JSON, `ModelFormat` when the JSON is not a trace summary.
pub fn load_summary(path: &str) -> TcslResult<TraceSummary> {
    let body = tcsl_error::read_to_string(path)?;
    let doc = json::parse(&body)
        .map_err(|e| TcslError::parse(path.to_string(), e.line, e.msg.clone()))?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad_shape(path, "missing \"schema\" field"))?;
    if !SCHEMAS.contains(&schema) {
        return Err(TcslError::model_format(
            format!("schema {} or {}", SCHEMAS[0], SCHEMAS[1]),
            format!("{path}: schema \"{schema}\""),
        ));
    }
    let run = doc
        .get("run")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad_shape(path, "missing \"run\" field"))?
        .to_string();
    let spans_section = doc
        .get("spans")
        .ok_or_else(|| bad_shape(path, "missing \"spans\" section"))?;
    let spans = spans_section
        .as_obj()
        .ok_or_else(|| bad_shape(path, "\"spans\" is not an object"))?
        .iter()
        .map(|(k, v)| {
            (
                k.clone(),
                SpanView {
                    count: u64_field(v, "count"),
                    total_ns: u64_field(v, "total_ns"),
                    min_ns: u64_field(v, "min_ns"),
                    max_ns: u64_field(v, "max_ns"),
                    hist: v.get("hist").map(hist_view),
                },
            )
        })
        .collect();
    Ok(TraceSummary {
        schema: schema.to_string(),
        run,
        counters: u64_section(&doc, path, "counters", true)?,
        sched_counters: u64_section(&doc, path, "sched_counters", true)?,
        gauges: u64_section(&doc, path, "gauges", false)?,
        histograms: hist_section(&doc, path, "histograms")?,
        host_histograms: hist_section(&doc, path, "host_histograms")?,
        spans,
    })
}

/// Nanoseconds rendered at a human scale (`999ns`, `12.3µs`, `4.56ms`,
/// `7.89s`).
pub fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        return "-".to_string();
    }
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    if value >= 100.0 {
        format!("{value:.0}{unit}")
    } else if value >= 10.0 {
        format!("{value:.1}{unit}")
    } else {
        format!("{value:.2}{unit}")
    }
}

/// Direct children of `path` among all span paths (paths one segment
/// deeper, with `path` as their prefix).
fn children<'a>(spans: &'a BTreeMap<String, SpanView>, path: &str) -> Vec<&'a str> {
    let depth = path.matches('/').count() + 1;
    spans
        .keys()
        .filter(|p| {
            p.len() > path.len() + 1
                && p.starts_with(path)
                && p.as_bytes()[path.len()] == b'/'
                && p.matches('/').count() == depth
        })
        .map(String::as_str)
        .collect()
}

fn roots(spans: &BTreeMap<String, SpanView>) -> Vec<&str> {
    spans
        .keys()
        .filter(|p| !p.contains('/'))
        .map(String::as_str)
        .collect()
}

/// The ASCII span-tree report: one row per span path in tree order, with
/// count, total/mean/min/max and — when the run recorded per-span
/// histograms — p50/p90/p99 columns; then the deterministic and host
/// histogram sections and the counter listing.
pub fn render_report(s: &TraceSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "run: {}  ({})", s.run, s.schema);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<38} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "span", "count", "total", "mean", "min", "max", "p50", "p90", "p99"
    );
    fn walk(out: &mut String, s: &TraceSummary, path: &str, prefix: &str, last: bool, root: bool) {
        use std::fmt::Write as _;
        let v = &s.spans[path];
        let name = path.rsplit('/').next().unwrap_or(path);
        let label = if root {
            name.to_string()
        } else {
            format!("{prefix}{}{name}", if last { "└─ " } else { "├─ " })
        };
        let mean = if v.count == 0 {
            0.0
        } else {
            v.total_ns as f64 / v.count as f64
        };
        let (p50, p90, p99) = match &v.hist {
            Some(h) => (fmt_ns(h.p50), fmt_ns(h.p90), fmt_ns(h.p99)),
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
        };
        let _ = writeln!(
            out,
            "{label:<38} {:>8} {:>9} {:>9} {:>9} {:>9} {p50:>9} {p90:>9} {p99:>9}",
            v.count,
            fmt_ns(v.total_ns as f64),
            fmt_ns(mean),
            fmt_ns(v.min_ns as f64),
            fmt_ns(v.max_ns as f64),
        );
        let kids = children(&s.spans, path);
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        for (i, kid) in kids.iter().enumerate() {
            walk(out, s, kid, &child_prefix, i + 1 == kids.len(), false);
        }
    }
    for root in roots(&s.spans) {
        walk(&mut out, s, root, "", true, true);
    }
    for (title, section, ns_scale) in [
        ("histograms (deterministic)", &s.histograms, false),
        ("host histograms", &s.host_histograms, true),
    ] {
        let live: Vec<(&String, &HistView)> = section.iter().filter(|(_, h)| h.count > 0).collect();
        if live.is_empty() {
            continue;
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{title:<38} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "count", "mean", "p50", "p90", "p99"
        );
        for (name, h) in live {
            // ns-valued names render at human scale; pure-count
            // distributions (pairs, candidates, bytes) stay numeric.
            let f = |x: f64| {
                if ns_scale && name.ends_with("_ns") {
                    fmt_ns(x)
                } else {
                    format!("{x:.1}")
                }
            };
            let _ = writeln!(
                out,
                "{name:<38} {:>8} {:>9} {:>9} {:>9} {:>9}",
                h.count,
                f(h.mean),
                f(h.p50),
                f(h.p90),
                f(h.p99)
            );
        }
    }
    let counter_rows: Vec<(&str, &BTreeMap<String, u64>)> = vec![
        ("counters", &s.counters),
        ("sched_counters", &s.sched_counters),
        ("gauges", &s.gauges),
    ];
    for (title, map) in counter_rows {
        let live: Vec<(&String, &u64)> = map.iter().filter(|(_, &v)| v > 0).collect();
        if live.is_empty() {
            continue;
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{title}");
        for (name, v) in live {
            let _ = writeln!(out, "  {name:<36} {v:>12}");
        }
    }
    out
}

/// Span paths in collapsed-stack format: one `seg;seg;seg weight` line per
/// path, weight = *self* nanoseconds (total minus direct children's
/// totals, clamped at zero so clock skew between levels never goes
/// negative). Pipe into `inferno-flamegraph` / `flamegraph.pl`.
pub fn render_collapsed(s: &TraceSummary) -> String {
    let mut out = String::new();
    for (path, v) in &s.spans {
        let child_total: u64 = children(&s.spans, path)
            .iter()
            .map(|c| s.spans[*c].total_ns)
            .sum();
        let self_ns = v.total_ns.saturating_sub(child_total);
        if self_ns > 0 {
            out.push_str(&path.replace('/', ";"));
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
    }
    out
}

/// Options for [`diff`] / [`diff_bench`].
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Maximum tolerated relative increase, in percent (e.g. `20.0`).
    pub threshold_pct: f64,
    /// Metric-name prefixes excluded from breach detection (still listed).
    pub ignore: Vec<String>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            threshold_pct: 20.0,
            ignore: Vec::new(),
        }
    }
}

/// Outcome of a comparison: the rendered per-metric lines and the subset
/// that breached the threshold (empty = gate passes).
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// One rendered line per compared metric with a delta.
    pub lines: Vec<String>,
    /// Metrics whose increase exceeded the threshold.
    pub breaches: Vec<String>,
}

/// Flattens a summary into named scalar metrics. Higher is worse for every
/// one of them (counts of work done, latency percentiles) — "less work
/// than baseline" is never flagged.
fn metrics(s: &TraceSummary) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    for (k, &v) in &s.counters {
        m.insert(format!("counter.{k}"), v as f64);
    }
    for (k, &v) in &s.sched_counters {
        m.insert(format!("sched.{k}"), v as f64);
    }
    for (k, h) in &s.histograms {
        m.insert(format!("hist.{k}.count"), h.count as f64);
        m.insert(format!("hist.{k}.p50"), h.p50);
        m.insert(format!("hist.{k}.p99"), h.p99);
    }
    for (k, h) in &s.host_histograms {
        m.insert(format!("host.{k}.p50"), h.p50);
        m.insert(format!("host.{k}.p99"), h.p99);
    }
    for (k, v) in &s.spans {
        m.insert(format!("span.{k}.count"), v.count as f64);
        m.insert(format!("span.{k}.total_ns"), v.total_ns as f64);
    }
    m
}

fn compare(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    cfg: &DiffConfig,
) -> DiffReport {
    let mut report = DiffReport::default();
    let ignored = |name: &str| cfg.ignore.iter().any(|p| name.starts_with(p.as_str()));
    for (name, &base) in baseline {
        let Some(&cur) = current.get(name) else {
            report
                .lines
                .push(format!("{name:<44} gone (baseline {base})"));
            continue;
        };
        if base == 0.0 {
            if cur != 0.0 {
                report.lines.push(format!("{name:<44} new: {cur}"));
            }
            continue;
        }
        let rel = (cur - base) / base * 100.0;
        if rel == 0.0 {
            continue;
        }
        let flag = rel > cfg.threshold_pct && !ignored(name);
        report.lines.push(format!(
            "{name:<44} {base} -> {cur}  ({rel:+.1}%){}",
            if flag {
                "  REGRESSION"
            } else if ignored(name) && rel > cfg.threshold_pct {
                "  (ignored)"
            } else {
                ""
            }
        ));
        if flag {
            report.breaches.push(name.clone());
        }
    }
    for (name, &cur) in current {
        if !baseline.contains_key(name) && cur != 0.0 {
            report.lines.push(format!("{name:<44} new: {cur}"));
        }
    }
    report
}

/// Compares two trace summaries metric by metric. A metric *regresses*
/// when its relative increase over baseline exceeds the threshold; new or
/// vanished metrics are reported but never breach (instrumentation grows
/// across PRs). Zero-valued and unchanged metrics stay silent.
pub fn diff(current: &TraceSummary, baseline: &TraceSummary, cfg: &DiffConfig) -> DiffReport {
    compare(&metrics(current), &metrics(baseline), cfg)
}

/// Loads one `BENCH_*.json` report as flat named metrics: top-level
/// numeric fields under their own names, booleans as `0`/`1` (so a
/// contract flag flipping to `false` shows up as a change), nested
/// objects flattened with a `.` separator. Same error taxonomy as
/// [`load_summary`], minus the schema check (bench schemas vary by bin —
/// their own `schema_version` field is validated by `tcsl_bench`).
pub fn load_bench_metrics(path: &str) -> TcslResult<BTreeMap<String, f64>> {
    let body = tcsl_error::read_to_string(path)?;
    let doc = json::parse(&body)
        .map_err(|e| TcslError::parse(path.to_string(), e.line, e.msg.clone()))?;
    let fields = doc
        .as_obj()
        .ok_or_else(|| bad_shape(path, "not a JSON object"))?;
    let mut out = BTreeMap::new();
    fn insert(out: &mut BTreeMap<String, f64>, name: String, v: &JsonValue) {
        match v {
            JsonValue::Num(n) => {
                out.insert(name, *n);
            }
            JsonValue::Bool(b) => {
                out.insert(name, f64::from(u8::from(*b)));
            }
            JsonValue::Obj(inner) => flatten(out, &name, inner),
            JsonValue::Arr(items) => {
                // Case arrays flatten by position — bench case lists are
                // ordered by construction, so index i is the same case on
                // both sides of a diff.
                for (i, item) in items.iter().enumerate() {
                    insert(out, format!("{name}.{i}"), item);
                }
            }
            _ => {}
        }
    }
    fn flatten(out: &mut BTreeMap<String, f64>, prefix: &str, fields: &[(String, JsonValue)]) {
        for (k, v) in fields {
            let name = if prefix.is_empty() {
                k.clone()
            } else {
                format!("{prefix}.{k}")
            };
            insert(out, name, v);
        }
    }
    flatten(&mut out, "", fields);
    Ok(out)
}

/// [`diff`] for `BENCH_*.json` reports: compares the flattened numeric
/// fields of two bench files, re-mapped so "higher is worse" holds for
/// every compared name:
///
/// * raw timings (`secs`, `*_secs`, `*_ms`, `*_us`, `*_ns`) keep their
///   value under a `wall.` prefix — one `--ignore wall.` excludes all
///   host-speed variance from breach detection when comparing across
///   machines;
/// * throughputs (`*per_sec*`) invert to `wall.inv.<name>` so *lower*
///   throughput is the increase;
/// * higher-is-better ratios (`*speedup*`, `*recall*`, `*nmi*`) invert to
///   `inv.<name>` — a drop breaches, an improvement never does — and stay
///   gated even under `--ignore wall.`;
/// * boolean contract fields breach on any true→false flip, whatever the
///   threshold.
pub fn diff_bench(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    cfg: &DiffConfig,
) -> DiffReport {
    fn is_timing(name: &str) -> bool {
        let last = name.rsplit('.').next().unwrap_or(name);
        last == "secs"
            || last.ends_with("_secs")
            || last.ends_with("_ms")
            || last.ends_with("_us")
            || last.ends_with("_ns")
    }
    fn is_quality_ratio(name: &str) -> bool {
        name.contains("speedup") || name.contains("recall") || name.contains("nmi")
    }
    let remap = |m: &BTreeMap<String, f64>| -> BTreeMap<String, f64> {
        m.iter()
            .map(|(k, &v)| {
                if k.contains("per_sec") && v > 0.0 {
                    (format!("wall.inv.{k}"), 1.0 / v)
                } else if is_timing(k) {
                    (format!("wall.{k}"), v)
                } else if is_quality_ratio(k) && v > 0.0 {
                    (format!("inv.{k}"), 1.0 / v)
                } else {
                    (k.clone(), v)
                }
            })
            .collect()
    };
    let mut report = compare(&remap(current), &remap(baseline), cfg);
    // Contract booleans (0/1 fields present on both sides) must not flip
    // from true to false — that is a broken contract, not a perf delta.
    for (name, &base) in baseline {
        if base == 1.0 && current.get(name) == Some(&0.0) {
            report.lines.push(format!(
                "{name:<44} contract flag flipped to false  REGRESSION"
            ));
            report.breaches.push(name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A v2 summary exercising every section, written through the real
    /// writer path (obs is a test dependency of the facade via the
    /// workspace) would race other tests on the global registries, so this
    /// fixture is a literal.
    const FIXTURE: &str = r#"{"schema":"tcsl-run-trace-v2","run":"timecsl pretrain",
        "counters":{"trainer.pairs":128,"pairdist.tiles":0},
        "sched_counters":{"pool.dispatch":4},
        "gauges":{"parallel.threads":4},
        "histograms":{"trainer.batch_pairs":{"count":16,"sum":128,"mean":8,"p50":8,"p90":8.5,"p99":9,"p999":9,"buckets":{"4":16}}},
        "host_histograms":{"trainer.batch_ns":{"count":16,"sum":32000,"mean":2000,"p50":1800,"p90":2600,"p99":3100,"p999":3150,"buckets":{"11":16}}},
        "spans":{"pretrain":{"count":1,"total_ns":5000,"min_ns":5000,"max_ns":5000},
                 "pretrain/epoch":{"count":2,"total_ns":4000,"min_ns":1500,"max_ns":2500,
                     "hist":{"count":2,"sum":4000,"mean":2000,"p50":1700,"p90":2400,"p99":2480,"p999":2498,"buckets":{"11":2}}},
                 "pretrain/epoch/batch":{"count":16,"total_ns":3200,"min_ns":100,"max_ns":400}}}"#;

    fn fixture() -> TraceSummary {
        let dir = std::env::temp_dir().join("tcsl_trace_tool_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fixture_summary.json");
        std::fs::write(&path, FIXTURE).unwrap();
        load_summary(path.to_str().unwrap()).unwrap()
    }

    #[test]
    fn loads_every_section() {
        let s = fixture();
        assert_eq!(s.schema, "tcsl-run-trace-v2");
        assert_eq!(s.run, "timecsl pretrain");
        assert_eq!(s.counters["trainer.pairs"], 128);
        assert_eq!(s.sched_counters["pool.dispatch"], 4);
        assert_eq!(s.histograms["trainer.batch_pairs"].count, 16);
        assert_eq!(s.host_histograms["trainer.batch_ns"].p99, 3100.0);
        assert_eq!(s.spans.len(), 3);
        assert!(s.spans["pretrain/epoch"].hist.is_some());
        assert!(s.spans["pretrain"].hist.is_none());
    }

    #[test]
    fn report_renders_tree_and_percentiles() {
        let s = fixture();
        let r = render_report(&s);
        assert!(r.contains("run: timecsl pretrain"));
        assert!(r.contains("pretrain"));
        assert!(r.contains("└─ epoch"), "tree glyphs:\n{r}");
        assert!(r.contains("└─ batch"));
        // The epoch row carries interpolated percentiles, batch shows "-".
        assert!(r.contains("1.70µs"), "p50 column:\n{r}");
        assert!(r.contains("trainer.batch_pairs"));
        assert!(r.contains("trainer.pairs"));
    }

    #[test]
    fn collapsed_weights_are_self_time_and_sum_to_root_total() {
        let s = fixture();
        let c = render_collapsed(&s);
        let mut weights = BTreeMap::new();
        for line in c.lines() {
            let (stack, w) = line.rsplit_once(' ').unwrap();
            weights.insert(stack.to_string(), w.parse::<u64>().unwrap());
        }
        assert_eq!(weights["pretrain"], 1000); // 5000 − 4000
        assert_eq!(weights["pretrain;epoch"], 800); // 4000 − 3200
        assert_eq!(weights["pretrain;epoch;batch"], 3200);
        assert_eq!(weights.values().sum::<u64>(), 5000, "widths add up");
    }

    #[test]
    fn diff_flags_breaches_over_threshold_only() {
        let base = fixture();
        let mut cur = base.clone();
        cur.counters.insert("trainer.pairs".into(), 200); // +56%
        cur.sched_counters.insert("pool.dispatch".into(), 5); // +25%
        let cfg = DiffConfig {
            threshold_pct: 30.0,
            ignore: vec!["sched.".into()],
        };
        let r = diff(&cur, &base, &cfg);
        assert_eq!(r.breaches, vec!["counter.trainer.pairs".to_string()]);
        assert!(r.lines.iter().any(|l| l.contains("REGRESSION")));
        // Identical summaries: clean gate.
        let clean = diff(&base, &base, &cfg);
        assert!(clean.breaches.is_empty());
        assert!(clean.lines.is_empty());
    }

    #[test]
    fn diff_never_breaches_on_new_or_vanished_metrics() {
        let base = fixture();
        let mut cur = base.clone();
        cur.counters.insert("brand.new".into(), 7);
        cur.counters.remove("trainer.pairs");
        let r = diff(&cur, &base, &DiffConfig::default());
        assert!(r.breaches.is_empty());
        assert!(r.lines.iter().any(|l| l.contains("new: 7")));
        assert!(r.lines.iter().any(|l| l.contains("gone")));
    }

    #[test]
    fn bench_diff_inverts_throughput_and_pins_contract_flags() {
        let mut base = BTreeMap::new();
        base.insert("series_per_sec".to_string(), 100.0);
        base.insert("fused_within_budget".to_string(), 1.0);
        base.insert("secs".to_string(), 2.0);
        base.insert("cases.0.speedup".to_string(), 4.0);
        let mut cur = base.clone();
        cur.insert("series_per_sec".to_string(), 50.0); // throughput halved
        cur.insert("fused_within_budget".to_string(), 0.0); // contract broken
        cur.insert("cases.0.speedup".to_string(), 2.0); // speedup halved
        let r = diff_bench(&cur, &base, &DiffConfig::default());
        assert!(
            r.breaches.iter().any(|b| b.contains("series_per_sec")),
            "halved throughput must breach: {:?}",
            r.breaches
        );
        assert!(r.breaches.iter().any(|b| b == "fused_within_budget"));
        assert!(
            r.breaches.iter().any(|b| b == "inv.cases.0.speedup"),
            "halved speedup must breach: {:?}",
            r.breaches
        );
        // Unchanged secs: silent.
        assert!(!r.breaches.iter().any(|b| b.contains("secs")));

        // Raw timings carry the wall. prefix, so one ignore band excludes
        // host-speed variance while the quality ratios stay gated.
        let mut slow = base.clone();
        slow.insert("secs".to_string(), 9.0); // 4.5x slower wall clock
        let cfg = DiffConfig {
            ignore: vec!["wall.".to_string()],
            ..DiffConfig::default()
        };
        let r = diff_bench(&slow, &base, &cfg);
        assert!(r.breaches.is_empty(), "{:?}", r.breaches);
        let r = diff_bench(&slow, &base, &DiffConfig::default());
        assert!(r.breaches.iter().any(|b| b == "wall.secs"));

        // A speedup *improvement* never breaches (inverted: a decrease).
        let mut faster = base.clone();
        faster.insert("cases.0.speedup".to_string(), 9.0);
        let r = diff_bench(&faster, &base, &DiffConfig::default());
        assert!(r.breaches.is_empty(), "{:?}", r.breaches);
    }

    #[test]
    fn load_errors_carry_pr8_classes() {
        use tcsl_error::ErrorClass;
        let dir = std::env::temp_dir().join("tcsl_trace_tool_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        let e = load_summary(missing.to_str().unwrap()).unwrap_err();
        assert_eq!(e.class(), ErrorClass::Io);
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "this is not json {").unwrap();
        let e = load_summary(garbage.to_str().unwrap()).unwrap_err();
        assert_eq!(e.class(), ErrorClass::Parse);
        let wrong = dir.join("wrong_schema.json");
        std::fs::write(
            &wrong,
            r#"{"schema":"something-else","run":"x","counters":{},"sched_counters":{},"spans":{}}"#,
        )
        .unwrap();
        let e = load_summary(wrong.to_str().unwrap()).unwrap_err();
        assert_eq!(e.class(), ErrorClass::ModelFormat);
        let truncated = dir.join("truncated.json");
        std::fs::write(&truncated, &FIXTURE[..FIXTURE.len() / 2]).unwrap();
        let e = load_summary(truncated.to_str().unwrap()).unwrap_err();
        assert_eq!(e.class(), ErrorClass::Parse);
    }

    #[test]
    fn v1_summaries_load_with_empty_histograms() {
        let dir = std::env::temp_dir().join("tcsl_trace_tool_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("v1.json");
        std::fs::write(
            &p,
            r#"{"schema":"tcsl-run-trace-v1","run":"old","counters":{"a":1},"sched_counters":{},"gauges":{},"spans":{"x":{"count":1,"total_ns":10,"min_ns":10,"max_ns":10}}}"#,
        )
        .unwrap();
        let s = load_summary(p.to_str().unwrap()).unwrap();
        assert!(s.histograms.is_empty() && s.host_histograms.is_empty());
        assert_eq!(s.spans["x"].count, 1);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999.0), "999ns");
        assert_eq!(fmt_ns(12_300.0), "12.3µs");
        assert_eq!(fmt_ns(4_560_000.0), "4.56ms");
        assert_eq!(fmt_ns(7_890_000_000.0), "7.89s");
        assert_eq!(fmt_ns(f64::NAN), "-");
    }
}

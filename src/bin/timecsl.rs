//! `timecsl` — command-line front end to the TimeCSL pipeline, mirroring
//! the demo's four steps headlessly on CSV datasets (see
//! `tcsl_data::io` for the format: `series,label,variable,t,value`).
//!
//! ```text
//! timecsl pretrain  <train.csv> <model.tcsl> [epochs]   # steps 1–2
//! timecsl quantize  <model.tcsl> <f16|i16> [out.tcsl]   # half-width taps
//! timecsl transform <model.tcsl> <data.csv> <out.csv>   # features to CSV
//! timecsl classify  <model.tcsl> <train.csv> <test.csv> # freeze-mode SVM
//! timecsl cluster   <model.tcsl> <data.csv> <k>         # freeze-mode k-means
//! timecsl match     <model.tcsl> <data.csv> <series> <feature> <out.svg>
//! timecsl info      <data.csv|data.ts>                  # dataset summary
//! timecsl report    <model.tcsl> <data.csv> <out.html>  # Fig.3-style report
//! timecsl demo                                          # synthetic end-to-end run
//! timecsl trace     <RUN_trace.json> [--collapsed] [--diff <baseline.json>]
//!                   [--bench-diff <baseline.json>] [--threshold <pct>]
//!                   [--ignore <prefix>]...              # trace report / perf gate
//! ```
//!
//! Datasets are loaded by extension: `.ts` (sktime/UEA) or CSV (long format).
//!
//! **Errors.** Every failure is a typed [`TcslError`]: one line on stderr,
//! and a process exit code pinned to the error class (see the README's
//! exit-code table — `Config`=2, `Io`=3, `Parse`=4, `ModelFormat`=5,
//! `ShapeMismatch`=6, `EmptyInput`=7, `NonFiniteInput`=8, `Internal`=9).
//! With `TCSL_TRACE=1` a failed run still writes a valid `RUN_trace.json`:
//! an `error` event carrying the class and message, plus an
//! `error.<class>` counter in the summary.

use std::process::ExitCode;
use timecsl::data::archive;
use timecsl::data::io;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::eval::metrics::clustering::nmi;
use timecsl::explore::ExploreSession;
use timecsl::obs::alloc_track::CountingAlloc;
use timecsl::prelude::*;

// Counting allocator so trace events (`peak_alloc_mb`) and the run summary
// report real high-water marks; a few relaxed atomics per allocation.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The dispatch table: every subcommand name next to its handler, in the
/// order the usage line lists them. [`usage`] is generated from this
/// table, so a new verb can never silently drift out of the usage string
/// (pinned by the `usage_lists_every_subcommand` test below).
type Command = (&'static str, fn(&[String]) -> CliResult);

const COMMANDS: &[Command] = &[
    ("pretrain", cmd_pretrain),
    ("quantize", cmd_quantize),
    ("transform", cmd_transform),
    ("classify", cmd_classify),
    ("cluster", cmd_cluster),
    ("match", cmd_match),
    ("info", cmd_info),
    ("report", cmd_report),
    ("demo", cmd_demo),
    ("trace", cmd_trace),
];

fn usage() -> String {
    let names: Vec<&str> = COMMANDS.iter().map(|&(name, _)| name).collect();
    format!("usage: timecsl <{}> ... (see crate docs)", names.join("|"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().cloned().unwrap_or_default();
    // With TCSL_TRACE=1 this opens the JSONL stream up front, so every
    // command — even one that emits no events of its own — gets a run
    // summary at exit.
    timecsl::obs::trace::emit(timecsl::obs::trace::Event::new("run_start").str("cmd", cmd.clone()));
    let result = match COMMANDS.iter().find(|&&(name, _)| name == cmd) {
        Some(&(_, handler)) => handler(&args[1..]),
        None => Err(TcslError::config(usage())),
    };
    // A failed run still produces a complete, attributed trace: the error
    // event and the error.<class> counter land *before* finish_run seals
    // the summary.
    if let Err(e) = &result {
        timecsl::obs::counters::error_counter(e.class().name()).add(1);
        timecsl::obs::trace::emit(
            timecsl::obs::trace::Event::new("error")
                .str("class", e.class().name())
                .str("message", e.to_string()),
        );
    }
    // With TCSL_TRACE=1 the run streamed JSONL events as it went; close
    // the stream and write the aggregated counter/span summary next to it.
    if let Some(path) = timecsl::obs::trace::finish_run(&format!("timecsl {cmd}")) {
        eprintln!("wrote run summary to {}", path.display());
    }
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Handlers return the process exit code on success so the perf gate
/// (`trace --diff`) can exit non-zero on a regression breach (code 1 —
/// distinct from the error-class codes 2–9) without inventing an error.
type CliResult = TcslResult<ExitCode>;

/// The all-good return for commands with no exit-code semantics.
const OK: CliResult = Ok(ExitCode::SUCCESS);

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> TcslResult<&'a str> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| TcslError::config(format!("missing argument: {what}")))
}

/// Parses a numeric CLI argument; a non-numeric value is a `Config`
/// (usage) error naming the argument and the offending text.
fn parse_arg<T: std::str::FromStr>(value: &str, what: &str) -> TcslResult<T> {
    value
        .parse()
        .map_err(|_| TcslError::config(format!("{what} must be a number, got '{value}'")))
}

/// Loads a dataset, dispatching on extension: `.ts` (sktime/UEA format)
/// or CSV (this crate's long format).
fn load(name: &str, path: &str) -> TcslResult<Dataset> {
    if path.ends_with(".ts") {
        timecsl::data::io_ts::load_ts(name, path).map(|f| f.dataset)
    } else {
        io::load_csv(name, path)
    }
}

fn cmd_pretrain(args: &[String]) -> CliResult {
    let train_path = arg(args, 0, "train.csv")?;
    let model_path = arg(args, 1, "model.tcsl")?;
    let epochs: usize = match args.get(2) {
        Some(s) => parse_arg(s, "epochs")?,
        None => 20,
    };
    if epochs == 0 {
        return Err(TcslError::config("epochs must be at least 1"));
    }
    let train = load("train", train_path)?;
    println!(
        "pre-training on {} series (D={})...",
        train.len(),
        train.n_vars()
    );
    let cfg = CslConfig {
        epochs,
        ..Default::default()
    };
    let (model, report) = TimeCsl::pretrain(&train, None, &cfg);
    print!("{}", report.learning_curve_ascii());
    model.save(model_path)?;
    println!("saved {} shapelets to {model_path}", model.repr_dim());
    OK
}

fn cmd_quantize(args: &[String]) -> CliResult {
    use timecsl::shapelet::BankPrecision;
    let model_path = arg(args, 0, "model.tcsl")?;
    let precision_arg = arg(args, 1, "precision (f16|i16)")?;
    let out_path = args.get(2).map(String::as_str).unwrap_or(model_path);
    let scheme = BankPrecision::parse(precision_arg)
        .and_then(BankPrecision::scheme)
        .ok_or_else(|| {
            TcslError::config(format!(
                "precision must be f16 or i16, got '{precision_arg}'"
            ))
        })?;
    let mut model = TimeCsl::load(model_path)?;
    let before = model.precision();
    model.quantize(scheme)?;
    model.save(out_path)?;
    println!(
        "quantized {} shapelets {} -> {}, saved to {out_path}",
        model.repr_dim(),
        before.name(),
        model.precision().name()
    );
    OK
}

fn cmd_transform(args: &[String]) -> CliResult {
    let model = TimeCsl::load(arg(args, 0, "model.tcsl")?)?;
    let data = load("data", arg(args, 1, "data.csv")?)?;
    let out_path = arg(args, 2, "out.csv")?;
    let feats = model.transform(&data)?;
    let csv = io::matrix_to_csv(&feats, &model.feature_names());
    tcsl_error::write_file(out_path, &csv)?;
    println!(
        "wrote {}×{} features to {out_path}",
        feats.rows(),
        feats.cols()
    );
    OK
}

fn cmd_classify(args: &[String]) -> CliResult {
    let model = TimeCsl::load(arg(args, 0, "model.tcsl")?)?;
    let train = load("train", arg(args, 1, "train.csv")?)?;
    let test = load("test", arg(args, 2, "test.csv")?)?;
    let ytr = train
        .labels()
        .ok_or_else(|| TcslError::config("training csv has no labels"))?;
    let mut svm = LinearSvm::new();
    svm.fit(&model.transform(&train)?, ytr)?;
    let pred = svm.predict(&model.transform(&test)?)?;
    match test.labels() {
        Some(yte) => println!("accuracy = {:.4}", accuracy(&pred, yte)),
        None => println!("predictions: {pred:?}"),
    }
    OK
}

fn cmd_cluster(args: &[String]) -> CliResult {
    let model = TimeCsl::load(arg(args, 0, "model.tcsl")?)?;
    let data = load("data", arg(args, 1, "data.csv")?)?;
    let k: usize = parse_arg(arg(args, 2, "k")?, "k")?;
    if k == 0 {
        return Err(TcslError::config("k must be at least 1"));
    }
    let mut km = KMeans::new(k);
    let assign = km.fit_predict(&model.transform(&data)?)?;
    println!("assignments: {assign:?}");
    if let Some(labels) = data.labels() {
        println!("NMI vs labels = {:.4}", nmi(&assign, labels));
    }
    OK
}

fn cmd_match(args: &[String]) -> CliResult {
    let model = TimeCsl::load(arg(args, 0, "model.tcsl")?)?;
    let data = load("data", arg(args, 1, "data.csv")?)?;
    let series: usize = parse_arg(arg(args, 2, "series")?, "series")?;
    let feature: usize = parse_arg(arg(args, 3, "feature")?, "feature")?;
    let out = arg(args, 4, "out.svg")?;
    // Out-of-range indices are typed Config errors from the session.
    let session = ExploreSession::new(model, data)?;
    let m = session.match_shapelet(series, feature)?;
    println!(
        "best match at t={}..{} ({} score {:.4})",
        m.start,
        m.start + m.len,
        m.measure.name(),
        m.score
    );
    tcsl_error::write_file(out, &session.render_match(series, feature)?)?;
    println!("wrote {out}");
    OK
}

fn cmd_info(args: &[String]) -> CliResult {
    let path = arg(args, 0, "data.csv|data.ts")?;
    let data = load("data", path)?;
    print!("{}", timecsl::data::describe::describe(&data));
    OK
}

fn cmd_report(args: &[String]) -> CliResult {
    let model = TimeCsl::load(arg(args, 0, "model.tcsl")?)?;
    let data = load("data", arg(args, 1, "data.csv")?)?;
    let out = arg(args, 2, "out.html")?;
    let session = ExploreSession::new(model, data)?;
    let shapelets = session.suggest_shapelets(4);
    let html = timecsl::explore::html_report(
        &session,
        &timecsl::explore::ReportConfig {
            series: vec![0],
            shapelets: shapelets.clone(),
            table_columns: shapelets,
            ..Default::default()
        },
    )?;
    tcsl_error::write_file(out, &html)?;
    println!("wrote {out}");
    OK
}

/// A self-contained synthetic run: generate → save CSVs → pretrain →
/// classify, exercising every CLI path.
fn cmd_demo(_args: &[String]) -> CliResult {
    let dir = std::env::temp_dir().join("timecsl_cli_demo");
    std::fs::create_dir_all(&dir)
        .map_err(|e| TcslError::io(dir.to_string_lossy().into_owned(), e))?;
    // `require` lists every available dataset on a typo — same error a
    // user-supplied name would get.
    let entry = archive::require("MotifEasy")?;
    let (train, test) = archive::generate_split(&entry, 1);
    let train_csv = dir.join("train.csv");
    let test_csv = dir.join("test.csv");
    io::save_csv(&train, &train_csv)?;
    io::save_csv(&test, &test_csv)?;
    let model_path = dir.join("model.tcsl");
    cmd_pretrain(&[
        train_csv.to_string_lossy().into_owned(),
        model_path.to_string_lossy().into_owned(),
        "8".into(),
    ])?;
    cmd_classify(&[
        model_path.to_string_lossy().into_owned(),
        train_csv.to_string_lossy().into_owned(),
        test_csv.to_string_lossy().into_owned(),
    ])?;
    println!("demo artifacts in {}", dir.display());
    OK
}

/// `timecsl trace` — render, export, or gate on a `RUN_trace.json`
/// summary (see `timecsl::trace_tool` for the formats and the error
/// taxonomy). In `--diff`/`--bench-diff` mode a regression breach exits
/// with code 1; load failures exit with their error-class codes.
fn cmd_trace(args: &[String]) -> CliResult {
    let path = arg(args, 0, "RUN_trace.json")?;
    let mut collapsed = false;
    let mut diff_base: Option<&str> = None;
    let mut bench_base: Option<&str> = None;
    let mut cfg = timecsl::trace_tool::DiffConfig::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--collapsed" => collapsed = true,
            "--diff" => {
                i += 1;
                diff_base = Some(arg(args, i, "--diff <baseline.json>")?);
            }
            "--bench-diff" => {
                i += 1;
                bench_base = Some(arg(args, i, "--bench-diff <baseline.json>")?);
            }
            "--threshold" => {
                i += 1;
                cfg.threshold_pct = parse_arg(arg(args, i, "--threshold <pct>")?, "--threshold")?;
            }
            "--ignore" => {
                i += 1;
                cfg.ignore
                    .push(arg(args, i, "--ignore <prefix>")?.to_string());
            }
            other => {
                return Err(TcslError::config(format!(
                    "unknown trace option '{other}' (flags: --collapsed --diff --bench-diff \
                     --threshold --ignore)"
                )))
            }
        }
        i += 1;
    }
    if let Some(base) = bench_base {
        let cur = timecsl::trace_tool::load_bench_metrics(path)?;
        let baseline = timecsl::trace_tool::load_bench_metrics(base)?;
        return finish_diff(timecsl::trace_tool::diff_bench(&cur, &baseline, &cfg));
    }
    let summary = timecsl::trace_tool::load_summary(path)?;
    if collapsed {
        print!("{}", timecsl::trace_tool::render_collapsed(&summary));
        return OK;
    }
    if let Some(base) = diff_base {
        let baseline = timecsl::trace_tool::load_summary(base)?;
        return finish_diff(timecsl::trace_tool::diff(&summary, &baseline, &cfg));
    }
    print!("{}", timecsl::trace_tool::render_report(&summary));
    OK
}

/// Prints a diff report and maps breaches to the gate's exit code.
fn finish_diff(report: timecsl::trace_tool::DiffReport) -> CliResult {
    for line in &report.lines {
        println!("{line}");
    }
    if report.breaches.is_empty() {
        println!(
            "perf gate: OK ({} delta(s) within tolerance)",
            report.lines.len()
        );
        OK
    } else {
        eprintln!(
            "perf gate: {} regression(s): {}",
            report.breaches.len(),
            report.breaches.join(", ")
        );
        Ok(ExitCode::from(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite drift guard: with `trace` the CLI dispatches ten
    /// subcommands, and the generated usage string must name every one.
    #[test]
    fn usage_lists_every_subcommand() {
        let expected = [
            "pretrain",
            "quantize",
            "transform",
            "classify",
            "cluster",
            "match",
            "info",
            "report",
            "demo",
            "trace",
        ];
        assert_eq!(COMMANDS.len(), expected.len(), "dispatch table drifted");
        let names: Vec<&str> = COMMANDS.iter().map(|&(name, _)| name).collect();
        assert_eq!(names, expected);
        let u = usage();
        for name in expected {
            assert!(u.contains(name), "usage string is missing '{name}': {u}");
        }
        // And the module doc (the long-form usage block) mentions each verb
        // too — the doc text is compiled into the binary's crate docs, so
        // this pins the human-readable listing as well.
        for name in expected {
            assert!(
                include_str!("timecsl.rs").contains(&format!("timecsl {name}")),
                "crate-docs usage block is missing 'timecsl {name}'"
            );
        }
    }
}

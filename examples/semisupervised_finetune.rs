//! The semi-supervised scenario of §2.2: when few labels exist, pre-train
//! the Shapelet Transformer on *all* series, then fine-tune `f` + a linear
//! head `g` on the labeled fraction. Compared against a supervised CNN
//! trained from scratch on the same labeled fraction (the paper reports a
//! 7–10% gap below 20% labels).
//!
//! Run with: `cargo run --release --example semisupervised_finetune`

use timecsl::baselines::fcn::FcnConfig;
use timecsl::baselines::{CnnArch, SupervisedCnn};
use timecsl::data::archive;
use timecsl::data::split::label_fraction_split;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::prelude::*;
use timecsl::tensor::rng::seeded;

fn main() -> TcslResult<()> {
    let entry = archive::require("GestureSmall")?;
    let (train, test) = archive::generate_split(&entry, 11);
    println!(
        "gesture data: {} train / {} test, {} classes\n",
        train.len(),
        test.len(),
        train.n_classes()
    );

    // Pre-train once on all (unlabeled) training series.
    let csl_cfg = CslConfig {
        epochs: 10,
        batch_size: 16,
        seed: 4,
        ..Default::default()
    };
    let (pretrained, _) = TimeCsl::pretrain(&train, None, &csl_cfg);

    println!("labels   fine-tuned CSL   supervised CNN");
    for frac in [0.1f32, 0.2, 0.5, 1.0] {
        let mut rng = seeded(42 + (frac * 100.0) as u64);
        let (labeled, _) = label_fraction_split(&train, frac, &mut rng);

        // Fine-tuning mode: shapelets warm-started by pre-training.
        let mut model = pretrained.clone();
        let ft_cfg = FineTuneConfig {
            epochs: 25,
            seed: 4,
            ..Default::default()
        };
        let (head, _) = model.fine_tune(&labeled, &ft_cfg);
        let csl_acc = accuracy(
            &head.predict(&model.transform(&test)?),
            test.labels().unwrap(),
        );

        // Supervised CNN from scratch on the same labeled set.
        let arch = CnnArch::default();
        let fcn_cfg = FcnConfig {
            epochs: 25,
            seed: 4,
            ..Default::default()
        };
        let mut fcn = SupervisedCnn::new(train.n_vars(), train.n_classes(), arch, fcn_cfg);
        fcn.fit(&labeled.znormed());
        let fcn_acc = accuracy(&fcn.predict(&test.znormed()), test.labels().unwrap());

        println!("{:>5.0}%   {csl_acc:>14.3}   {fcn_acc:>14.3}", frac * 100.0);
    }
    println!(
        "\nWith few labels, the pre-trained + fine-tuned pipeline retains most of\n\
         its accuracy while the from-scratch supervised model degrades (§2.2)."
    );
    Ok(())
}

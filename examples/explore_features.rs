//! Explorable analysis (paper §3 step 4 / Fig. 3, headless): renders every
//! GUI panel to `target/explore_output/` — raw series, learned shapelets,
//! a shapelet↔subsequence match, the sortable tabular feature view, and the
//! t-SNE embedding — then redoes the analysis with a selected shapelet
//! subset.
//!
//! Run with: `cargo run --release --example explore_features`

use std::fs;
use std::path::PathBuf;
use timecsl::data::archive;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::prelude::*;

fn main() -> TcslResult<()> {
    let out_dir = PathBuf::from("target/explore_output");
    fs::create_dir_all(&out_dir).map_err(|e| TcslError::io(&out_dir, e))?;

    let entry = archive::require("GestureSmall")?;
    let (train, test) = archive::generate_split(&entry, 5);
    let csl_cfg = CslConfig {
        epochs: 8,
        batch_size: 16,
        seed: 2,
        ..Default::default()
    };
    let (model, report) = TimeCsl::pretrain(&train, None, &csl_cfg);

    // The learning-curve diagnostic the GUI plots during step 2.
    timecsl::error::write_file(
        out_dir.join("learning_curve.svg"),
        timecsl::explore::svg::learning_curve_chart(&report.epoch_total, "CSL training loss"),
    )?;

    let session = ExploreSession::new(model, test.clone())?;

    // Fig. 3a — a raw series; Fig. 3c — a learned shapelet.
    timecsl::error::write_file(out_dir.join("series_0.svg"), session.render_series(0)?)?;
    timecsl::error::write_file(out_dir.join("shapelet_0.svg"), session.render_shapelet(0)?)?;

    // Fig. 3b — the "Match" button.
    let m = session.match_shapelet(0, 0)?;
    println!(
        "shapelet 0 best matches series 0 at t={}..{} with {} score {:.4}",
        m.start,
        m.start + m.len,
        m.measure.name(),
        m.score
    );
    timecsl::error::write_file(out_dir.join("match_0x0.svg"), session.render_match(0, 0)?)?;

    // Fig. 3d — tabular view, sorted by the first shapelet.
    let table = session.tabular(Some(&[0, 1, 2, 3]))?;
    let order = table.sort_by(0, true);
    timecsl::error::write_file(out_dir.join("tabular.txt"), table.render(Some(&order)))?;
    println!("tabular view (4 shapelets, sorted) written; first rows:");
    for line in table.render(Some(&order)).lines().take(4) {
        println!("  {line}");
    }

    // Fig. 3e — t-SNE of the representation.
    let tsne_cfg = TsneConfig {
        iterations: 250,
        ..Default::default()
    };
    timecsl::error::write_file(
        out_dir.join("tsne.svg"),
        session.render_tsne(None, &tsne_cfg)?,
    )?;

    // Which shapelets are worth looking at? (ANOVA-F against the labels.)
    let suggested = session.suggest_shapelets(5);
    let names = session.model().feature_names();
    println!("\nsuggested shapelets to explore:");
    for &col in &suggested {
        println!("  {}", names[col]);
    }

    // One self-contained HTML page with all panels (the GUI screen).
    let report = timecsl::explore::html_report(
        &session,
        &timecsl::explore::ReportConfig {
            series: vec![0, 1],
            shapelets: suggested.clone(),
            table_columns: suggested,
            ..Default::default()
        },
    )?;
    timecsl::error::write_file(out_dir.join("report.html"), report)?;

    // Step-4 loop: redo the analysis with only the longest-scale shapelets.
    let scales = session.model().bank().scales();
    let longest = *scales.last().unwrap();
    let reduced = session.with_scale(longest)?;
    let mut svm = LinearSvm::new();
    svm.fit(&reduced.model().transform(&train)?, train.labels().unwrap())?;
    let pred = svm.predict(reduced.features())?;
    println!(
        "redo with only length-{longest} shapelets: accuracy = {:.3}",
        accuracy(&pred, test.labels().unwrap())
    );

    println!("\nall panels written to {}", out_dir.display());
    Ok(())
}

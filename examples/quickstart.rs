//! Quickstart: the TimeCSL unified pipeline (paper Fig. 2) on one dataset —
//! pre-train once, solve classification, clustering and anomaly scoring
//! from the same representation.
//!
//! Run with: `cargo run --release --example quickstart`

use timecsl::data::archive;
use timecsl::eval::metrics::{classification::accuracy, clustering::nmi};
use timecsl::prelude::*;

fn main() -> TcslResult<()> {
    // The synthetic archive stands in for the UEA datasets the demo ships;
    // a typo'd name is a typed Config error listing the alternatives.
    let entry = archive::require("MotifMulti")?;
    let (train, test) = archive::generate_split(&entry, 2024);
    println!(
        "dataset {}: {} train / {} test series, D={}, {} classes",
        entry.name,
        train.len(),
        test.len(),
        train.n_vars(),
        train.n_classes()
    );

    // Steps 1–2: unsupervised contrastive shapelet learning. `None` uses
    // the recommended adaptive configuration (§4.2-style).
    let csl_cfg = CslConfig {
        epochs: 10,
        batch_size: 16,
        seed: 0,
        ..Default::default()
    };
    let (model, report) = TimeCsl::pretrain(&train, None, &csl_cfg);
    println!(
        "\nlearned {} shapelets over scales {:?} in {:.2?}",
        model.repr_dim(),
        model.bank().scales(),
        report.wall_time
    );
    println!("{}", report.learning_curve_ascii());

    // Step 3 (freezing mode): the same features feed any analyzer.
    let ztr = model.transform(&train)?;
    let zte = model.transform(&test)?;

    let mut svm = LinearSvm::new();
    svm.fit(&ztr, train.labels().unwrap())?;
    let pred = svm.predict(&zte)?;
    println!(
        "classification: SVM accuracy = {:.3}",
        accuracy(&pred, test.labels().unwrap())
    );

    let mut km = KMeans::new(train.n_classes());
    let assign = km.fit_predict(&zte)?;
    println!(
        "clustering:     k-means NMI  = {:.3}",
        nmi(&assign, test.labels().unwrap())
    );

    let mut forest = IsolationForest::new();
    forest.fit(&ztr)?;
    let scores = forest.score(&zte)?;
    let max_score = scores.iter().copied().fold(f32::MIN, f32::max);
    println!("anomaly:        iforest max score = {max_score:.3} (higher = more anomalous)");

    // Step 3 (fine-tuning mode): a linear head g trained jointly with f.
    let mut tuned = model.clone();
    let ft_cfg = FineTuneConfig {
        epochs: 10,
        ..Default::default()
    };
    let (head, _) = tuned.fine_tune(&train, &ft_cfg);
    let pred = head.predict(&tuned.transform(&test)?);
    println!(
        "fine-tuning:    linear-head accuracy = {:.3}",
        accuracy(&pred, test.labels().unwrap())
    );
    Ok(())
}

//! Bringing your own data (the demo's "users can also analyze and explore
//! their own data"): write a dataset in the standard sktime/UEA `.ts`
//! format, load it back, and push it through the full pipeline. Swap the
//! generated file for any real UEA `.ts` file and the rest is unchanged.
//!
//! Run with: `cargo run --release --example custom_data`

use std::path::PathBuf;
use timecsl::data::describe::describe;
use timecsl::data::io_ts;
use timecsl::data::{archive, split::train_test_split};
use timecsl::eval::metrics::classification::accuracy;
use timecsl::prelude::*;
use timecsl::tensor::rng::seeded;

fn main() -> TcslResult<()> {
    let dir = PathBuf::from("target/custom_data");
    std::fs::create_dir_all(&dir).map_err(|e| TcslError::io(&dir, e))?;
    let path = dir.join("my_dataset.ts");

    // Pretend this came from your own measurement campaign: here we export
    // an archive dataset to `.ts` to produce a realistic file.
    let entry = archive::require("LeadLag3")?;
    let (all, _) = archive::generate_split(&entry, 99);
    let class_names = vec!["alpha".into(), "beta".into(), "gamma".into()];
    timecsl::error::write_file(&path, io_ts::to_ts(&all, Some(&class_names)))?;
    println!("wrote example .ts file: {}", path.display());

    // --- from here on, everything works on any .ts file -----------------
    let loaded = io_ts::load_ts("my_dataset", &path)?;
    println!("class names: {:?}", loaded.class_names);
    print!("{}", describe(&loaded.dataset));

    let mut rng = seeded(7);
    let (train, test) = train_test_split(&loaded.dataset, 0.4, &mut rng);

    let csl_cfg = CslConfig {
        epochs: 10,
        batch_size: 16,
        seed: 7,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train, None, &csl_cfg);

    let mut svm = LinearSvm::new();
    svm.fit(&model.transform(&train)?, train.labels().unwrap())?;
    let pred = svm.predict(&model.transform(&test)?)?;
    println!(
        "\nfreeze-mode SVM accuracy on the held-out 40%: {:.3}",
        accuracy(&pred, test.labels().unwrap())
    );

    // Exploration works on custom data too.
    let session = ExploreSession::new(model, test)?;
    let suggested = session.suggest_shapelets(3);
    println!("suggested shapelets: {:?}", suggested);
    let m = session.match_shapelet(0, suggested[0])?;
    println!(
        "top shapelet best matches series 0 at t={}..{} ({} {:.4})",
        m.start,
        m.start + m.len,
        m.measure.name(),
        m.score
    );
    Ok(())
}

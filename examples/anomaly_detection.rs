//! Segment-level anomaly detection (paper §1/§2.2): pre-train the Shapelet
//! Transformer on unlabeled segments, score test segments with an isolation
//! forest (and a k-NN distance detector) over the representation.
//!
//! Run with: `cargo run --release --example anomaly_detection`

use timecsl::data::archive;
use timecsl::eval::metrics::anomaly::{average_precision, best_f1, roc_auc};
use timecsl::prelude::*;

fn main() -> TcslResult<()> {
    let entry = archive::require("AnomMixed")?;
    let (train, test) = archive::generate_split(&entry, 7);
    let anomalies = test.labels().unwrap().iter().filter(|&&l| l == 1).count();
    println!(
        "anomaly dataset: {} train segments, {} test segments ({anomalies} anomalous)",
        train.len(),
        test.len()
    );

    // Pre-training is fully unsupervised — labels are never consulted.
    let csl_cfg = CslConfig {
        epochs: 10,
        batch_size: 16,
        seed: 0,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train.without_labels(), None, &csl_cfg);

    let ztr = model.transform(&train)?;
    let zte = model.transform(&test)?;
    let truth: Vec<bool> = test.labels().unwrap().iter().map(|&l| l == 1).collect();

    let mut forest = IsolationForest::new();
    forest.fit(&ztr)?;
    let scores = forest.score(&zte)?;
    println!(
        "\nisolation forest: ROC-AUC = {:.3}, AP = {:.3}, best F1 = {:.3}",
        roc_auc(&scores, &truth),
        average_precision(&scores, &truth),
        best_f1(&scores, &truth)
    );

    let mut knn = KnnDistance::new(5);
    knn.fit(&ztr)?;
    let scores = knn.score(&zte)?;
    println!(
        "kNN distance:     ROC-AUC = {:.3}, AP = {:.3}, best F1 = {:.3}",
        roc_auc(&scores, &truth),
        average_precision(&scores, &truth),
        best_f1(&scores, &truth)
    );

    // The interpretable part: which shapelet separates anomalies best?
    let names = model.feature_names();
    let (mut best_col, mut best_auc) = (0, 0.0);
    for col in 0..zte.cols() {
        let col_scores: Vec<f32> = (0..zte.rows()).map(|i| zte.at2(i, col)).collect();
        let auc = roc_auc(&col_scores, &truth).max(1.0 - roc_auc(&col_scores, &truth));
        if auc > best_auc {
            best_auc = auc;
            best_col = col;
        }
    }
    println!(
        "\nmost anomaly-indicative single shapelet feature: {} (AUC {:.3})",
        names[best_col], best_auc
    );
    Ok(())
}

//! The paper's §3 walkthrough on the gesture data (UWaveGestureLibrary
//! stand-in): classify with shapelets restricted to each single length,
//! then with all lengths — accuracy grows with shapelet length, and the
//! full multi-scale bank is best (paper: 0.75 @ 31 → 0.85 @ 97 → 0.89 @ 188
//! → 0.91 all).
//!
//! Run with: `cargo run --release --example gesture_classification`

use timecsl::data::archive;
use timecsl::eval::metrics::classification::accuracy;
use timecsl::prelude::*;

fn main() -> TcslResult<()> {
    let entry = archive::require("GestureFull")?;
    let (train, test) = archive::generate_split(&entry, 31);
    println!(
        "gesture dataset: {} train / {} test, D={}, {} classes, T={}",
        train.len(),
        test.len(),
        train.n_vars(),
        train.n_classes(),
        train.max_len()
    );

    let csl_cfg = CslConfig {
        epochs: 12,
        batch_size: 16,
        seed: 1,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train, None, &csl_cfg);
    println!("scales learned: {:?}\n", model.bank().scales());

    let eval_model = |m: &TimeCsl, label: &str| -> TcslResult<f64> {
        let mut svm = LinearSvm::new();
        svm.fit(&m.transform(&train)?, train.labels().unwrap())?;
        let pred = svm.predict(&m.transform(&test)?)?;
        let acc = accuracy(&pred, test.labels().unwrap());
        println!("SVM on {label:<22} accuracy = {acc:.3}");
        Ok(acc)
    };

    let mut last = 0.0;
    for len in model.bank().scales() {
        last = eval_model(
            &model.with_scale(len)?,
            &format!("shapelets of length {len}"),
        )?;
    }
    let all = eval_model(&model, "ALL shapelets")?;
    println!(
        "\nAs in the demo: longer shapelets separate the gesture classes better,\n\
         and the full multi-scale bank ({all:.3}) is comparable to or better than\n\
         the best single scale ({last:.3})."
    );
    Ok(())
}

//! Steady-state allocation regression for the streaming top-k engine.
//!
//! `knn_into` reshapes the caller's `out` in place — outer vector and every
//! inner heap buffer keep their capacity across calls — so a serving loop
//! that reuses one result buffer must reach a steady state where repeated
//! queries grow the heap **not at all**: live bytes are flat and the only
//! transient allocations are the two per-call norm vectors.
//!
//! This test owns its binary (no other `#[test]` here) so it can safely pin
//! `TCSL_THREADS=1` via the environment before any engine call: the serial
//! path spawns no worker threads, whose stacks would otherwise dominate the
//! allocation profile. Cross-thread determinism of the parallel path is
//! covered by the CI `TCSL_THREADS=7` legs.

use tcsl_obs::alloc_track::{alloc_profile, CountingAlloc};
use tcsl_tensor::pairdist::knn_into;
use tcsl_tensor::Tensor;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn knn_into_has_zero_steady_state_allocation_growth() {
    std::env::set_var("TCSL_THREADS", "1");
    let (n, m, dim, k) = (96, 700, 40, 7);
    let mut rng = tcsl_tensor::rng::seeded(29);
    let queries = Tensor::randn([n, dim], &mut rng);
    let corpus = Tensor::randn([m, dim], &mut rng);

    let mut out = Vec::new();
    // Warm-up: grows `out` to its steady-state shape (n rows × k slots).
    knn_into(&queries, &corpus, k, &mut out);
    let baseline = out.clone();

    let live_before = tcsl_obs::alloc_track::live_bytes();
    let (_, stats) = alloc_profile(|| {
        for _ in 0..25 {
            knn_into(&queries, &corpus, k, &mut out);
        }
    });
    let live_after = tcsl_obs::alloc_track::live_bytes();

    assert_eq!(
        live_before, live_after,
        "steady-state knn_into calls grew live allocation"
    );
    // Transient allocation per call is the two norm vectors, (n + m) f32s.
    // Anything near the per-call result size (n·k pairs ≈ 10.5 KiB) or the
    // old per-block heap churn would blow well past this budget.
    let norms_bytes = (n + m) * std::mem::size_of::<f32>();
    let budget = 25 * (norms_bytes + 256);
    assert!(
        stats.total <= budget,
        "steady-state total allocation {} exceeds norm-vector budget {}",
        stats.total,
        budget
    );
    assert_eq!(baseline, out, "reused buffers changed the results");
}

//! Panic containment contract of the persistent pool, end to end through
//! the environment-driven entry points: a panicking task must re-raise on
//! the calling thread, and the pool must stay fully usable for subsequent
//! dispatches — no poisoned job slot, no dead workers, no wrong results.
//!
//! This file owns its test binary (one `#[test]`) so it can safely pin
//! `TCSL_THREADS` between phases via `std::env::set_var` — the variable is
//! re-read per dispatch, and no other test in this process reads it
//! concurrently. `TCSL_THREADS=1` exercises the serial inline path,
//! `TCSL_THREADS=7` the oversubscribed pooled path (7 contexts on any
//! host, like the CI determinism legs).

use std::panic::{catch_unwind, AssertUnwindSafe};

use tcsl_tensor::parallel::{parallel_chunks_mut, parallel_map};

fn payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string payload>")
}

#[test]
fn task_panics_propagate_and_the_pool_stays_usable() {
    // Expected panics would spew one backtrace per failing task; silence
    // the hook for the duration (safe: this test owns the process).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    for threads in ["1", "7"] {
        std::env::set_var("TCSL_THREADS", threads);

        // A panicking map task re-raises on the caller with its payload.
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(64, |i| {
                if i == 13 {
                    panic!("map boom at {i}");
                }
                i * 2
            })
        }));
        let payload = r.expect_err("map panic must reach the caller");
        assert!(
            payload_message(payload.as_ref()).contains("map boom"),
            "TCSL_THREADS={threads}: wrong payload: {}",
            payload_message(payload.as_ref())
        );

        // The pool is not poisoned: the very next dispatch computes
        // correct, complete results.
        let got = parallel_map(100, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(
            got, want,
            "TCSL_THREADS={threads}: pool unusable after panic"
        );

        // Same contract for the in-place chunk variant.
        let r = catch_unwind(AssertUnwindSafe(|| {
            let mut buf = vec![0u32; 64];
            parallel_chunks_mut(&mut buf, 8, |c, chunk| {
                if c == 3 {
                    panic!("chunk boom at {c}");
                }
                chunk.fill(c as u32);
            });
        }));
        let payload = r.expect_err("chunks panic must reach the caller");
        assert!(payload_message(payload.as_ref()).contains("chunk boom"));

        let mut buf = vec![usize::MAX; 103];
        parallel_chunks_mut(&mut buf, 10, |c, chunk| chunk.fill(c));
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(
                v,
                i / 10,
                "TCSL_THREADS={threads}: chunks wrong after panic"
            );
        }

        // Repeated panics don't accumulate poison either: every failed
        // dispatch fails cleanly, every healthy one still succeeds.
        for round in 0..3 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                parallel_map(16, |i| {
                    if i % 2 == 0 {
                        panic!("round {round} boom");
                    }
                    i
                })
            }));
            assert!(r.is_err(), "round {round} must panic");
        }
        assert_eq!(parallel_map(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    std::env::remove_var("TCSL_THREADS");
    std::panic::set_hook(hook);
}

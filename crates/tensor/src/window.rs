//! Sliding-window unfolding of (multivariate) time series.
//!
//! The shapelet transform compares every learnable shapelet against every
//! length-`L` window of a series. `unfold` materializes those windows as the
//! rows of a matrix so the comparison becomes one `matmul_transb` against the
//! shapelet bank.

use crate::tensor::Tensor;

/// Number of stride-`stride` windows of length `len` in a series of length
/// `t` (0 if the series is shorter than the window).
pub fn count_windows(t: usize, len: usize, stride: usize) -> usize {
    count_windows_dilated(t, len, stride, 1)
}

/// Window count when taps are spread `dilation` samples apart: a dilated
/// window of length `len` spans `(len − 1)·dilation + 1` samples.
pub fn count_windows_dilated(t: usize, len: usize, stride: usize, dilation: usize) -> usize {
    assert!(
        len > 0 && stride > 0 && dilation > 0,
        "window length, stride and dilation must be positive"
    );
    let span = (len - 1) * dilation + 1;
    if t < span {
        0
    } else {
        (t - span) / stride + 1
    }
}

/// Unfolds a multivariate series stored as a rank-2 tensor `(D, T)` into a
/// window matrix `(N_w, D·len)`.
///
/// Row `w` holds the window starting at time `w·stride`, with the `D`
/// variables concatenated channel-major: `[var0[t..t+len], var1[..], ...]` —
/// the same layout shapelets are stored in, so a dot product between a row
/// and a flattened shapelet compares corresponding samples.
pub fn unfold(series: &Tensor, len: usize, stride: usize) -> Tensor {
    unfold_dilated(series, len, stride, 1)
}

/// [`unfold`] with dilated taps: window `w`, variable `v`, tap `i` reads the
/// sample at time `w·stride + i·dilation`. Used by the dilated causal CNN
/// baselines.
pub fn unfold_dilated(series: &Tensor, len: usize, stride: usize, dilation: usize) -> Tensor {
    let (d, t) = (series.rows(), series.cols());
    let n = count_windows_dilated(t, len, stride, dilation);
    assert!(
        n > 0,
        "series of length {t} has no windows of length {len} (dilation {dilation})"
    );
    let mut out = Tensor::zeros([n, d * len]);
    let src = series.as_slice();
    let dst = out.as_mut_slice();
    for w in 0..n {
        let start = w * stride;
        for v in 0..d {
            let src_off = v * t + start;
            let dst_off = w * d * len + v * len;
            if dilation == 1 {
                dst[dst_off..dst_off + len].copy_from_slice(&src[src_off..src_off + len]);
            } else {
                for i in 0..len {
                    dst[dst_off + i] = src[src_off + i * dilation];
                }
            }
        }
    }
    out
}

/// Scatters gradients flowing into the unfolded window matrix back onto the
/// original `(D, T)` layout (the adjoint of [`unfold`]). Overlapping windows
/// accumulate.
pub fn unfold_backward(
    grad_windows: &Tensor,
    d: usize,
    t: usize,
    len: usize,
    stride: usize,
) -> Tensor {
    unfold_dilated_backward(grad_windows, d, t, len, stride, 1)
}

/// Adjoint of [`unfold_dilated`]; overlapping taps accumulate.
pub fn unfold_dilated_backward(
    grad_windows: &Tensor,
    d: usize,
    t: usize,
    len: usize,
    stride: usize,
    dilation: usize,
) -> Tensor {
    let n = count_windows_dilated(t, len, stride, dilation);
    assert_eq!(
        grad_windows.rows(),
        n,
        "window-count mismatch in unfold_backward"
    );
    assert_eq!(
        grad_windows.cols(),
        d * len,
        "window-width mismatch in unfold_backward"
    );
    let mut out = Tensor::zeros([d, t]);
    let src = grad_windows.as_slice();
    let dst = out.as_mut_slice();
    for w in 0..n {
        let start = w * stride;
        for v in 0..d {
            let src_off = w * d * len + v * len;
            let dst_off = v * t + start;
            for i in 0..len {
                dst[dst_off + i * dilation] += src[src_off + i];
            }
        }
    }
    out
}

/// Squared Euclidean norm `‖w‖²` of every stride-`stride` window of length
/// `len`, without materializing the windows: one O(T) prefix-sum-of-squares
/// pass per variable (f64 accumulators, see
/// [`crate::stats::prefix_sq_sums`]), then O(1) per window. All measures of
/// a scale share this vector — it is the backbone of the fused shapelet
/// transform.
pub fn window_sq_norms(series: &Tensor, len: usize, stride: usize) -> Vec<f32> {
    let (d, t) = (series.rows(), series.cols());
    let n = count_windows(t, len, stride);
    let mut acc = vec![0.0f64; n];
    for v in 0..d {
        let ps = crate::stats::prefix_sq_sums(series.row(v));
        for (w, a) in acc.iter_mut().enumerate() {
            let start = w * stride;
            *a += ps[start + len] - ps[start];
        }
    }
    acc.into_iter().map(|x| x as f32).collect()
}

/// Dot product of a flattened channel-major shapelet (layout
/// `[var0[0..len], var1[0..len], ...]`, matching [`unfold`] rows) against
/// the window starting at `start`, reading the series in place.
///
/// Dispatch telemetry is the caller's job (batch one
/// [`crate::matmul::count_dot_dispatch`] per window loop): this kernel runs
/// once per window, and even a disabled gate check here would be measurable.
#[inline]
pub fn window_dot(series: &Tensor, shapelet: &[f32], start: usize, len: usize) -> f32 {
    let d = series.rows();
    debug_assert_eq!(shapelet.len(), d * len, "shapelet width mismatch");
    let mut cross = 0.0f32;
    for v in 0..d {
        let row = series.row(v);
        cross += crate::matmul::dot(&row[start..start + len], &shapelet[v * len..(v + 1) * len]);
    }
    cross
}

/// [`window_dot`] for four shapelets at once, via the load-sharing
/// [`crate::matmul::dot4`] kernel: the window is streamed through the
/// registers once and FMA-ed against all four tap rows. Backbone of the
/// fused transform's shapelet-blocked inner loop.
#[inline]
pub fn window_dot4(series: &Tensor, taps: [&[f32]; 4], start: usize, len: usize) -> [f32; 4] {
    let d = series.rows();
    debug_assert!(
        taps.iter().all(|t| t.len() == d * len),
        "shapelet width mismatch"
    );
    let mut cross = [0.0f32; 4];
    for v in 0..d {
        let row = &series.row(v)[start..start + len];
        let span = v * len..(v + 1) * len;
        let r = crate::matmul::dot4(
            row,
            &taps[0][span.clone()],
            &taps[1][span.clone()],
            &taps[2][span.clone()],
            &taps[3][span],
        );
        for (c, x) in cross.iter_mut().zip(r) {
            *c += x;
        }
    }
    cross
}

/// Dot products of a flattened channel-major shapelet against **every**
/// stride-`stride` window, streaming over the original series buffer — the
/// zero-materialization replacement for `unfold` + one `matmul_transb`
/// column. Appends `count_windows` values to `out`.
pub fn sliding_dots(
    series: &Tensor,
    shapelet: &[f32],
    len: usize,
    stride: usize,
    out: &mut Vec<f32>,
) {
    let (d, t) = (series.rows(), series.cols());
    assert_eq!(shapelet.len(), d * len, "shapelet width mismatch");
    let n = count_windows(t, len, stride);
    crate::matmul::count_dot_dispatch(len, (d * n) as u64);
    let base = out.len();
    out.resize(base + n, 0.0);
    let dst = &mut out[base..];
    for v in 0..d {
        let row = series.row(v);
        let taps = &shapelet[v * len..(v + 1) * len];
        for (w, o) in dst.iter_mut().enumerate() {
            let start = w * stride;
            *o += crate::matmul::dot(&row[start..start + len], taps);
        }
    }
}

/// Extracts a single window `(D, len)` starting at `start` from a `(D, T)`
/// series.
pub fn window_at(series: &Tensor, start: usize, len: usize) -> Tensor {
    let (d, t) = (series.rows(), series.cols());
    assert!(
        start + len <= t,
        "window [{start}, {}) exceeds series length {t}",
        start + len
    );
    let mut out = Tensor::zeros([d, len]);
    for v in 0..d {
        let row = series.row(v);
        out.row_mut(v).copy_from_slice(&row[start..start + len]);
    }
    out
}

/// Writes one window's values channel-major (`[var0 | var1 | ...]` — the
/// flattened shapelet-row layout) into `dst`, which must have length
/// `D·len`. The no-allocation sibling of [`window_at`]: analytic backward
/// passes call it once per shapelet into a reused scratch row.
pub fn window_row_into(series: &Tensor, start: usize, len: usize, dst: &mut [f32]) {
    let (d, t) = (series.rows(), series.cols());
    assert!(
        start + len <= t,
        "window [{start}, {}) exceeds series length {t}",
        start + len
    );
    assert_eq!(dst.len(), d * len, "dst must hold D·len values");
    for v in 0..d {
        dst[v * len..(v + 1) * len].copy_from_slice(&series.row(v)[start..start + len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(count_windows(10, 3, 1), 8);
        assert_eq!(count_windows(10, 3, 2), 4);
        assert_eq!(count_windows(10, 10, 1), 1);
        assert_eq!(count_windows(5, 6, 1), 0);
    }

    #[test]
    fn unfold_univariate() {
        let s = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0], [1, 5]);
        let w = unfold(&s, 3, 1);
        assert_eq!(w.shape().dims(), &[3, 3]);
        assert_eq!(w.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(w.row(2), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn unfold_multivariate_channel_major() {
        let s = Tensor::from_vec(vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0], [2, 3]);
        let w = unfold(&s, 2, 1);
        assert_eq!(w.shape().dims(), &[2, 4]);
        assert_eq!(w.row(0), &[0.0, 1.0, 10.0, 11.0]);
        assert_eq!(w.row(1), &[1.0, 2.0, 11.0, 12.0]);
    }

    #[test]
    fn unfold_with_stride() {
        let s = Tensor::from_vec((0..8).map(|x| x as f32).collect(), [1, 8]);
        let w = unfold(&s, 2, 3);
        assert_eq!(w.shape().dims(), &[3, 2]);
        assert_eq!(w.row(1), &[3.0, 4.0]);
        assert_eq!(w.row(2), &[6.0, 7.0]);
    }

    #[test]
    fn backward_accumulates_overlaps() {
        // Series length 4, windows of length 2, stride 1 → 3 windows.
        // Put gradient 1 on every window element; interior timesteps are
        // covered twice, the ends once.
        let g = Tensor::ones([3, 2]);
        let back = unfold_backward(&g, 1, 4, 2, 1);
        assert_eq!(back.as_slice(), &[1.0, 2.0, 2.0, 1.0]);
    }

    #[test]
    fn backward_is_adjoint_of_forward() {
        // <unfold(x), g> == <x, unfold_backward(g)> for random x, g.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = Tensor::randn([2, 9], &mut rng);
        let (len, stride) = (3, 2);
        let w = unfold(&x, len, stride);
        let g = Tensor::randn([w.rows(), w.cols()], &mut rng);
        let lhs: f32 = w.dot(&g);
        let back = unfold_backward(&g, 2, 9, len, stride);
        let rhs: f32 = x.dot(&back);
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn dilated_unfold_and_adjoint() {
        let s = Tensor::from_vec((0..8).map(|x| x as f32).collect(), [1, 8]);
        let w = unfold_dilated(&s, 3, 1, 2); // taps at offsets 0, 2, 4
        assert_eq!(w.shape().dims(), &[4, 3]);
        assert_eq!(w.row(0), &[0.0, 2.0, 4.0]);
        assert_eq!(w.row(3), &[3.0, 5.0, 7.0]);

        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = Tensor::randn([4, 3], &mut rng);
        let lhs = w.dot(&g);
        let rhs = s.dot(&unfold_dilated_backward(&g, 1, 8, 3, 1, 2));
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn window_sq_norms_match_materialized_rows() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for &(d, t, len, stride) in &[
            (1usize, 16usize, 4usize, 1usize),
            (3, 33, 5, 2),
            (2, 8, 8, 3),
        ] {
            let s = Tensor::randn([d, t], &mut rng);
            let norms = window_sq_norms(&s, len, stride);
            let w = unfold(&s, len, stride);
            assert_eq!(norms.len(), w.rows());
            for (i, &norm) in norms.iter().enumerate() {
                let direct: f32 = w.row(i).iter().map(|&x| x * x).sum();
                assert!(
                    (norm - direct).abs() < 1e-4 * (1.0 + direct),
                    "window {i}: prefix {norm} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn sliding_dots_match_unfold_matmul() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        for &(d, t, len, stride) in &[(1usize, 20usize, 3usize, 1usize), (2, 17, 4, 2)] {
            let s = Tensor::randn([d, t], &mut rng);
            let shapelet = Tensor::randn([1, d * len], &mut rng);
            let mut got = Vec::new();
            sliding_dots(&s, shapelet.as_slice(), len, stride, &mut got);
            let w = unfold(&s, len, stride);
            let want = crate::matmul::matmul_transb(&w, &shapelet);
            assert_eq!(got.len(), want.rows());
            for (i, &g) in got.iter().enumerate() {
                assert!((g - want.at2(i, 0)).abs() < 1e-4, "window {i}");
            }
            // window_dot agrees with the vectorized variant bit-for-bit.
            for (i, &g) in got.iter().enumerate() {
                assert_eq!(g, window_dot(&s, shapelet.as_slice(), i * stride, len));
            }
        }
    }

    #[test]
    fn window_dot4_matches_single_window_dots() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for &(d, t, len, stride) in &[(1usize, 30usize, 5usize, 1usize), (3, 90, 70, 2)] {
            let s = Tensor::randn([d, t], &mut rng);
            let bank = Tensor::randn([4, d * len], &mut rng);
            let taps = [bank.row(0), bank.row(1), bank.row(2), bank.row(3)];
            for w in 0..count_windows(t, len, stride) {
                let got = window_dot4(&s, taps, w * stride, len);
                for (j, &tap_row) in taps.iter().enumerate() {
                    let want = window_dot(&s, tap_row, w * stride, len);
                    assert!(
                        (got[j] - want).abs() < 1e-4 * (1.0 + want.abs()),
                        "w={w} j={j}: {} vs {want}",
                        got[j]
                    );
                }
            }
        }
    }

    #[test]
    fn window_extraction() {
        let s = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0], [2, 4]);
        let w = window_at(&s, 1, 2);
        assert_eq!(w.shape().dims(), &[2, 2]);
        assert_eq!(w.row(0), &[1.0, 2.0]);
        assert_eq!(w.row(1), &[11.0, 12.0]);
    }

    #[test]
    fn window_row_matches_window_at_flattened() {
        let s = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0], [2, 4]);
        let mut row = [0.0f32; 4];
        window_row_into(&s, 1, 2, &mut row);
        assert_eq!(row, [1.0, 2.0, 11.0, 12.0]);
        assert_eq!(window_at(&s, 1, 2).as_slice(), &row);
    }

    #[test]
    #[should_panic(expected = "D·len")]
    fn window_row_rejects_wrong_dst_length() {
        let s = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], [1, 4]);
        let mut row = [0.0f32; 3];
        window_row_into(&s, 0, 2, &mut row);
    }
}

//! Half-precision / fixed-point tap storage and mixed-precision dot kernels.
//!
//! The fused shapelet transform is memory-traffic-bound at serving shapes:
//! the hot stream is the repacked tap rows, re-read once per window. Storing
//! those taps at half width (IEEE 754 binary16, or i16 fixed-point with a
//! per-shapelet scale) halves the bytes streamed; the kernels here dequantize
//! **in-register** and accumulate in f32, so precision is only lost at the
//! one rounding step when the bank is quantized — never in the accumulation.
//!
//! Two invariants every kernel in this module maintains:
//!
//! * **f32 accumulation.** Products and sums are computed in f32 exactly like
//!   the [`crate::matmul`] kernels; only the stored taps are narrow.
//! * **Length-only dispatch.** Like [`crate::matmul::dot`], the SIMD/scalar
//!   decision depends only on the operand length and the host CPU, so the
//!   same operands give bit-identical results at every call site and for any
//!   `TCSL_THREADS`.
//!
//! The i16 kernels return the **unscaled** integer-weighted sum `Σ w·q` (in
//! f32); the caller multiplies by the per-shapelet scale once per dot
//! product, after summing across variables. This keeps the hot loop free of
//! per-element scale multiplies and makes the scale exactly one rounding.

use crate::tensor::Tensor;

/// How a quantized tap row is stored. Both schemes use 2 bytes per tap —
/// half the f32 stream — and differ in where the dynamic range lives:
/// `F16` keeps a per-value exponent, `I16` spends all 15 magnitude bits on
/// mantissa and shares one scale across the shapelet row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuantScheme {
    /// IEEE 754 binary16 (1 sign, 5 exponent, 10 mantissa bits). Relative
    /// error ≤ 2⁻¹¹ per tap over the normal range; values of magnitude
    /// above [`F16_MAX`] are not representable.
    F16,
    /// Fixed-point i16 with a per-shapelet-row scale `s = max|x| / 32767`;
    /// stored value `q = round(x / s)`. Absolute error ≤ s/2 per tap.
    I16,
}

impl QuantScheme {
    /// Stable lowercase name used by the model format and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            QuantScheme::F16 => "f16",
            QuantScheme::I16 => "i16",
        }
    }

    /// Parses [`Self::name`] output; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f16" => Some(QuantScheme::F16),
            "i16" => Some(QuantScheme::I16),
            _ => None,
        }
    }

    /// Bytes each stored tap occupies (2 for both schemes).
    pub fn bytes_per_tap(self) -> usize {
        2
    }
}

/// Largest finite value representable in IEEE 754 binary16.
pub const F16_MAX: f32 = 65504.0;

/// Below this length the call into the runtime-detected intrinsics path
/// costs more than it saves (same rationale and value as the f32 kernels'
/// `FMA_MIN_LEN`, so the quantized and full-precision paths flip between
/// SIMD and scalar at the same operand length). Callers holding half-width
/// taps should prefer a dequantized f32 row below this length: the scalar
/// fallbacks here pay a per-element software conversion that the f32
/// scalar kernel does not, and a sub-64-element row is cache-resident
/// anyway, so storing it at half width saves no memory traffic.
pub const QUANT_MIN_LEN: usize = 64;

/// Operand length above which the 512-bit f16 kernel takes over from the
/// AVX2+F16C one. The wide kernel has the lowest µop count per element but
/// 512-bit FMAs run at reduced throughput on single-FMA-unit hosts, which
/// makes it a net loss while the operands are L1-resident and the kernel is
/// FMA-bound; as the tap rows grow past L1 the kernels turn load-bound and
/// the wide path's halved load/convert µop count wins decisively (measured
/// crossover between 820 and 1639 elements on an AVX-512 Xeon).
pub const QUANT_AVX512_F16_MIN_LEN: usize = 1024;

// ---------------------------------------------------------------------------
// binary16 conversions
// ---------------------------------------------------------------------------

/// Converts an f32 to IEEE 754 binary16 bits with round-to-nearest-even.
///
/// Overflow (finite `|x| > 65504`) rounds to signed infinity and NaN maps to
/// a quiet NaN — callers that need to *reject* those cases (bank
/// quantization does) must validate before converting. Subnormal halves are
/// produced exactly, with the same tie-to-even rule.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;
    if exp == 0xff {
        // Inf stays inf; every NaN maps to one quiet NaN payload.
        return sign | 0x7c00 | if frac != 0 { 0x200 } else { 0 };
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow → inf
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflow → signed zero
        }
        // Subnormal half: shift the (implicit-1) mantissa into place and
        // round the dropped bits to nearest, ties to even.
        let m = frac | 0x80_0000;
        let shift = (14 - e) as u32;
        let half = m >> shift;
        let rem = m & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = if rem > halfway || (rem == halfway && half & 1 == 1) {
            half + 1
        } else {
            half
        };
        return sign | rounded as u16;
    }
    let half = (frac >> 13) | ((e as u32) << 10);
    let rem = frac & 0x1fff;
    let rounded = if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
        half + 1
    } else {
        half
    };
    sign | rounded as u16
}

/// Converts IEEE 754 binary16 bits to f32. Exact: every binary16 value
/// (including subnormals) is representable in f32.
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = (bits >> 15) as u32;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let frac = (bits & 0x3ff) as u32;
    let out = if exp == 0 {
        if frac == 0 {
            sign << 31
        } else {
            // Subnormal half: renormalize the mantissa into an f32 normal.
            let mut e: i32 = 127 - 15 + 1;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            (sign << 31) | ((e as u32) << 23) | ((f & 0x3ff) << 13)
        }
    } else if exp == 0x1f {
        (sign << 31) | 0x7f80_0000 | (frac << 13)
    } else {
        (sign << 31) | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// [`f32_to_f16`] over a slice.
pub fn quantize_f16(src: &[f32]) -> Vec<u16> {
    src.iter().map(|&x| f32_to_f16(x)).collect()
}

/// [`f16_to_f32`] over a slice.
pub fn dequantize_f16(src: &[u16]) -> Vec<f32> {
    src.iter().map(|&b| f16_to_f32(b)).collect()
}

// ---------------------------------------------------------------------------
// i16 fixed-point quantization
// ---------------------------------------------------------------------------

/// Per-row scale for i16 quantization: `max|x| / 32767`, or `1.0` for an
/// all-zero row (any positive scale represents zeros exactly; 1.0 keeps the
/// text format canonical).
pub fn i16_scale(src: &[f32]) -> f32 {
    let max_abs = src.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / 32767.0
    }
}

/// Quantizes a row to i16 with the given scale: `q = round(x / scale)`.
/// With `scale = `[`i16_scale`]`(src)` every quotient lands in
/// `[-32767, 32767]`, so the cast never saturates.
pub fn quantize_i16(src: &[f32], scale: f32) -> Vec<i16> {
    src.iter().map(|&x| (x / scale).round() as i16).collect()
}

/// Dequantizes an i16 row: `x ≈ q · scale`.
pub fn dequantize_i16(src: &[i16], scale: f32) -> Vec<f32> {
    src.iter().map(|&q| q as f32 * scale).collect()
}

// ---------------------------------------------------------------------------
// mixed-precision dot kernels
// ---------------------------------------------------------------------------

/// Dot product of an f32 window against a binary16 tap row, dequantizing
/// in-register and accumulating in f32.
///
/// Dispatches to the AVX-512F `vcvtph2ps`-to-16-lanes kernel first (one
/// 32-byte load + one convert + one FMA per 16 taps — the lowest µop count
/// per element of any path), then the AVX2+F16C kernel (one 32-byte load
/// carries 16 taps — half the tap load µops of the f32 path), else to
/// [`dot_f16_scalar`].
#[inline]
pub fn dot_f16(a: &[f32], b: &[u16]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if a.len() >= QUANT_AVX512_F16_MIN_LEN && x86::avx512_f16_available() {
            // SAFETY: gated on runtime detection of avx512f+f16c.
            return unsafe { x86::dot_f16_avx512(a, b) };
        }
        if a.len() >= QUANT_MIN_LEN && x86::f16c_available() {
            // SAFETY: gated on runtime detection of avx2+fma+f16c.
            return unsafe { x86::dot_f16_f16c(a, b) };
        }
    }
    dot_f16_scalar(a, b)
}

/// Portable f16 dot product mirroring [`crate::matmul::dot_scalar`]'s
/// eight-accumulator shape, so for short operands the quantized path
/// produces **bit-identical** results to `dot_scalar` run on the
/// dequantized taps.
#[inline]
pub fn dot_f16_scalar(a: &[f32], b: &[u16]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let (x, y) = (&a[c * 8..c * 8 + 8], &b[c * 8..c * 8 + 8]);
        for l in 0..8 {
            acc[l] += x[l] * f16_to_f32(y[l]);
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * f16_to_f32(b[i]);
    }
    acc.iter().sum::<f32>() + tail
}

/// Four binary16 dot products sharing the `w` operand — the quantized
/// sibling of [`crate::matmul::dot4`].
#[inline]
pub fn dot4_f16(w: &[f32], t0: &[u16], t1: &[u16], t2: &[u16], t3: &[u16]) -> [f32; 4] {
    debug_assert!(
        t0.len() == w.len() && t1.len() == w.len() && t2.len() == w.len() && t3.len() == w.len()
    );
    #[cfg(target_arch = "x86_64")]
    {
        if w.len() >= QUANT_AVX512_F16_MIN_LEN && x86::avx512_f16_available() {
            // SAFETY: gated on runtime detection of avx512f+f16c.
            return unsafe { x86::dot4_f16_avx512(w, t0, t1, t2, t3) };
        }
        if w.len() >= QUANT_MIN_LEN && x86::f16c_available() {
            // SAFETY: gated on runtime detection of avx2+fma+f16c.
            return unsafe { x86::dot4_f16_f16c(w, t0, t1, t2, t3) };
        }
    }
    [
        dot_f16_scalar(w, t0),
        dot_f16_scalar(w, t1),
        dot_f16_scalar(w, t2),
        dot_f16_scalar(w, t3),
    ]
}

/// Two binary16 dot products sharing the `w` operand — the narrow block
/// used when a 4-row half-width block would no longer be L1-resident
/// alongside the series (the caller decides; see
/// `tcsl_shapelet::quant`). Per-row accumulation structure matches
/// [`dot4_f16`]'s AVX-512 path exactly, so a row's dot product is
/// bit-identical whichever block width streams it.
#[inline]
pub fn dot2_f16(w: &[f32], t0: &[u16], t1: &[u16]) -> [f32; 2] {
    debug_assert!(t0.len() == w.len() && t1.len() == w.len());
    #[cfg(target_arch = "x86_64")]
    if w.len() >= QUANT_AVX512_F16_MIN_LEN && x86::avx512_f16_available() {
        // SAFETY: gated on runtime detection of avx512f+f16c.
        return unsafe { x86::dot2_f16_avx512(w, t0, t1) };
    }
    [dot_f16(w, t0), dot_f16(w, t1)]
}

/// **Unscaled** dot product of an f32 window against an i16 tap row:
/// returns `Σ wᵢ·qᵢ` in f32; the caller multiplies by the per-shapelet
/// scale once (after summing variables).
///
/// Dispatches AVX-512F/BW first (converts 32 taps per two loads), then
/// AVX2+FMA (widening converts), then scalar.
#[inline]
pub fn dot_i16(a: &[f32], b: &[i16]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if a.len() >= QUANT_MIN_LEN && x86::avx512_i16_available() {
            // SAFETY: gated on runtime detection of avx512f+avx512bw.
            return unsafe { x86::dot_i16_avx512(a, b) };
        }
        if a.len() >= QUANT_MIN_LEN && x86::fma_available() {
            // SAFETY: gated on runtime detection of avx2+fma.
            return unsafe { x86::dot_i16_avx2(a, b) };
        }
    }
    dot_i16_scalar(a, b)
}

/// Portable unscaled i16 dot product (same eight-accumulator shape as
/// [`crate::matmul::dot_scalar`]).
#[inline]
pub fn dot_i16_scalar(a: &[f32], b: &[i16]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let (x, y) = (&a[c * 8..c * 8 + 8], &b[c * 8..c * 8 + 8]);
        for l in 0..8 {
            acc[l] += x[l] * y[l] as f32;
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i] as f32;
    }
    acc.iter().sum::<f32>() + tail
}

/// Four unscaled i16 dot products sharing the `w` operand.
#[inline]
pub fn dot4_i16(w: &[f32], t0: &[i16], t1: &[i16], t2: &[i16], t3: &[i16]) -> [f32; 4] {
    debug_assert!(
        t0.len() == w.len() && t1.len() == w.len() && t2.len() == w.len() && t3.len() == w.len()
    );
    #[cfg(target_arch = "x86_64")]
    {
        if w.len() >= QUANT_MIN_LEN && x86::avx512_i16_available() {
            // SAFETY: gated on runtime detection of avx512f+avx512bw.
            return unsafe { x86::dot4_i16_avx512(w, t0, t1, t2, t3) };
        }
        if w.len() >= QUANT_MIN_LEN && x86::fma_available() {
            // SAFETY: gated on runtime detection of avx2+fma.
            return unsafe { x86::dot4_i16_avx2(w, t0, t1, t2, t3) };
        }
    }
    [
        dot_i16_scalar(w, t0),
        dot_i16_scalar(w, t1),
        dot_i16_scalar(w, t2),
        dot_i16_scalar(w, t3),
    ]
}

/// Two unscaled i16 dot products sharing the `w` operand — the narrow
/// block sibling of [`dot2_f16`]; per-row accumulation matches
/// [`dot4_i16`]'s AVX-512 path exactly.
#[inline]
pub fn dot2_i16(w: &[f32], t0: &[i16], t1: &[i16]) -> [f32; 2] {
    debug_assert!(t0.len() == w.len() && t1.len() == w.len());
    #[cfg(target_arch = "x86_64")]
    if w.len() >= QUANT_MIN_LEN && x86::avx512_i16_available() {
        // SAFETY: gated on runtime detection of avx512f+avx512bw.
        return unsafe { x86::dot2_i16_avx512(w, t0, t1) };
    }
    [dot_i16(w, t0), dot_i16(w, t1)]
}

/// [`dot2_f16`] against **four** windows at once: shares every tap load and
/// f16→f32 conversion across the windows, cutting the non-FMA µop count per
/// MAC to a quarter — the lever that matters once the tap set is
/// L1-resident and the kernel is µop-throughput-bound. Each of the eight
/// (window, row) dots keeps the exact accumulation order of [`dot2_f16`]'s
/// AVX-512 path (two 512-bit chains, 32 elements per iteration, scalar
/// tail), so values are bit-identical to per-window [`dot2_f16`] calls.
/// Returns `out[w][row]`.
#[inline]
pub fn dot2x4_f16(ws: [&[f32]; 4], t0: &[u16], t1: &[u16]) -> [[f32; 2]; 4] {
    debug_assert!(ws.iter().all(|w| w.len() == t0.len()) && t1.len() == t0.len());
    #[cfg(target_arch = "x86_64")]
    if t0.len() >= QUANT_AVX512_F16_MIN_LEN && x86::avx512_f16_available() {
        // SAFETY: gated on runtime detection of avx512f+f16c.
        return unsafe { x86::dot2x4_f16_avx512(ws, t0, t1) };
    }
    [
        dot2_f16(ws[0], t0, t1),
        dot2_f16(ws[1], t0, t1),
        dot2_f16(ws[2], t0, t1),
        dot2_f16(ws[3], t0, t1),
    ]
}

/// [`dot2_i16`] against four windows at once (unscaled sums); the i16
/// sibling of [`dot2x4_f16`]. Sharing the widening-convert chain across
/// four windows matters more here than for f16: `vcvtdq2ps` competes with
/// the FMA port, so conversions are the i16 kernel's scarcest resource.
/// Returns `out[w][row]`.
#[inline]
pub fn dot2x4_i16(ws: [&[f32]; 4], t0: &[i16], t1: &[i16]) -> [[f32; 2]; 4] {
    debug_assert!(ws.iter().all(|w| w.len() == t0.len()) && t1.len() == t0.len());
    #[cfg(target_arch = "x86_64")]
    if t0.len() >= QUANT_MIN_LEN && x86::avx512_i16_available() {
        // SAFETY: gated on runtime detection of avx512f+avx512bw.
        return unsafe { x86::dot2x4_i16_avx512(ws, t0, t1) };
    }
    [
        dot2_i16(ws[0], t0, t1),
        dot2_i16(ws[1], t0, t1),
        dot2_i16(ws[2], t0, t1),
        dot2_i16(ws[3], t0, t1),
    ]
}

/// Whether [`dot2_f16`] / [`dot2_i16`] have a fused shared-load kernel for
/// per-variable spans of `len` on this machine. Narrow (2-row) tap blocking
/// only pays when the pair kernel still shares every window load across both
/// rows — otherwise it degenerates to two single-row dots, which re-stream
/// the window and lose to the 4-row block. Callers must derive their block
/// width from this once per group, so pooling and localization agree.
#[inline]
pub fn paired_kernel_available(scheme: QuantScheme, len: usize) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match scheme {
            QuantScheme::F16 => len >= QUANT_AVX512_F16_MIN_LEN && x86::avx512_f16_available(),
            QuantScheme::I16 => len >= QUANT_MIN_LEN && x86::avx512_i16_available(),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (scheme, len);
        false
    }
}

/// Records `n` quantized dot products of operand length `len` against the
/// `dot.dispatch.*` counters — the same length-only decision the kernels
/// above make, hoisted out so hot loops pay one enabled-gate check per
/// batch (the quantized sibling of [`crate::matmul::count_dot_dispatch`]).
#[inline]
pub fn count_quant_dot_dispatch(scheme: QuantScheme, len: usize, n: u64) {
    if n == 0 {
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = len;
    match scheme {
        QuantScheme::F16 => {
            #[cfg(target_arch = "x86_64")]
            {
                if len >= QUANT_AVX512_F16_MIN_LEN && x86::avx512_f16_available() {
                    tcsl_obs::counters::DOT_DISPATCH_F16_AVX512.add(n);
                    return;
                }
                if len >= QUANT_MIN_LEN && x86::f16c_available() {
                    tcsl_obs::counters::DOT_DISPATCH_F16C.add(n);
                    return;
                }
            }
            tcsl_obs::counters::DOT_DISPATCH_F16_SCALAR.add(n);
        }
        QuantScheme::I16 => {
            #[cfg(target_arch = "x86_64")]
            {
                if len >= QUANT_MIN_LEN && x86::avx512_i16_available() {
                    tcsl_obs::counters::DOT_DISPATCH_I16_AVX512.add(n);
                    return;
                }
                if len >= QUANT_MIN_LEN && x86::fma_available() {
                    tcsl_obs::counters::DOT_DISPATCH_I16_AVX2.add(n);
                    return;
                }
            }
            tcsl_obs::counters::DOT_DISPATCH_I16_SCALAR.add(n);
        }
    }
}

// ---------------------------------------------------------------------------
// window-level wrappers (quantized siblings of crate::window::window_dot*)
// ---------------------------------------------------------------------------

/// [`crate::window::window_dot`] with binary16 taps: dot of a flattened
/// channel-major f16 shapelet row against the window starting at `start`.
/// Dispatch telemetry is the caller's job ([`count_quant_dot_dispatch`]).
#[inline]
pub fn window_dot_f16(series: &Tensor, taps: &[u16], start: usize, len: usize) -> f32 {
    let d = series.rows();
    debug_assert_eq!(taps.len(), d * len, "shapelet width mismatch");
    let mut cross = 0.0f32;
    for v in 0..d {
        let row = series.row(v);
        cross += dot_f16(&row[start..start + len], &taps[v * len..(v + 1) * len]);
    }
    cross
}

/// [`crate::window::window_dot4`] with binary16 taps.
#[inline]
pub fn window_dot4_f16(series: &Tensor, taps: [&[u16]; 4], start: usize, len: usize) -> [f32; 4] {
    let d = series.rows();
    debug_assert!(
        taps.iter().all(|t| t.len() == d * len),
        "shapelet width mismatch"
    );
    let mut cross = [0.0f32; 4];
    for v in 0..d {
        let row = &series.row(v)[start..start + len];
        let span = v * len..(v + 1) * len;
        let r = dot4_f16(
            row,
            &taps[0][span.clone()],
            &taps[1][span.clone()],
            &taps[2][span.clone()],
            &taps[3][span],
        );
        for (c, x) in cross.iter_mut().zip(r) {
            *c += x;
        }
    }
    cross
}

/// [`crate::window::window_dot`] with i16 taps — returns the **unscaled**
/// sum across all variables; multiply by the shapelet's scale once.
#[inline]
pub fn window_dot_i16(series: &Tensor, taps: &[i16], start: usize, len: usize) -> f32 {
    let d = series.rows();
    debug_assert_eq!(taps.len(), d * len, "shapelet width mismatch");
    let mut cross = 0.0f32;
    for v in 0..d {
        let row = series.row(v);
        cross += dot_i16(&row[start..start + len], &taps[v * len..(v + 1) * len]);
    }
    cross
}

/// [`crate::window::window_dot4`] with i16 taps (unscaled sums).
#[inline]
pub fn window_dot4_i16(series: &Tensor, taps: [&[i16]; 4], start: usize, len: usize) -> [f32; 4] {
    let d = series.rows();
    debug_assert!(
        taps.iter().all(|t| t.len() == d * len),
        "shapelet width mismatch"
    );
    let mut cross = [0.0f32; 4];
    for v in 0..d {
        let row = &series.row(v)[start..start + len];
        let span = v * len..(v + 1) * len;
        let r = dot4_i16(
            row,
            &taps[0][span.clone()],
            &taps[1][span.clone()],
            &taps[2][span.clone()],
            &taps[3][span],
        );
        for (c, x) in cross.iter_mut().zip(r) {
            *c += x;
        }
    }
    cross
}

/// [`window_dot4_f16`] with a 2-row tap block.
#[inline]
pub fn window_dot2_f16(series: &Tensor, taps: [&[u16]; 2], start: usize, len: usize) -> [f32; 2] {
    let d = series.rows();
    debug_assert!(
        taps.iter().all(|t| t.len() == d * len),
        "shapelet width mismatch"
    );
    let mut cross = [0.0f32; 2];
    for v in 0..d {
        let row = &series.row(v)[start..start + len];
        let span = v * len..(v + 1) * len;
        let r = dot2_f16(row, &taps[0][span.clone()], &taps[1][span]);
        for (c, x) in cross.iter_mut().zip(r) {
            *c += x;
        }
    }
    cross
}

/// [`window_dot4_i16`] with a 2-row tap block (unscaled sums).
#[inline]
pub fn window_dot2_i16(series: &Tensor, taps: [&[i16]; 2], start: usize, len: usize) -> [f32; 2] {
    let d = series.rows();
    debug_assert!(
        taps.iter().all(|t| t.len() == d * len),
        "shapelet width mismatch"
    );
    let mut cross = [0.0f32; 2];
    for v in 0..d {
        let row = &series.row(v)[start..start + len];
        let span = v * len..(v + 1) * len;
        let r = dot2_i16(row, &taps[0][span.clone()], &taps[1][span]);
        for (c, x) in cross.iter_mut().zip(r) {
            *c += x;
        }
    }
    cross
}

/// [`window_dot2_f16`] against four window positions at once, sharing every
/// tap load and conversion across them ([`dot2x4_f16`]). Returns
/// `cross[w][row]`; each entry is bit-identical to the corresponding
/// single-window [`window_dot2_f16`] value on the AVX-512 path.
#[inline]
pub fn window_dot2x4_f16(
    series: &Tensor,
    taps: [&[u16]; 2],
    starts: [usize; 4],
    len: usize,
) -> [[f32; 2]; 4] {
    let d = series.rows();
    debug_assert!(
        taps.iter().all(|t| t.len() == d * len),
        "shapelet width mismatch"
    );
    let mut cross = [[0.0f32; 2]; 4];
    for v in 0..d {
        let row = series.row(v);
        let span = v * len..(v + 1) * len;
        let ws = [
            &row[starts[0]..starts[0] + len],
            &row[starts[1]..starts[1] + len],
            &row[starts[2]..starts[2] + len],
            &row[starts[3]..starts[3] + len],
        ];
        let r = dot2x4_f16(ws, &taps[0][span.clone()], &taps[1][span]);
        for (c, x) in cross.iter_mut().zip(r) {
            for (cc, xx) in c.iter_mut().zip(x) {
                *cc += xx;
            }
        }
    }
    cross
}

/// [`window_dot2_i16`] against four window positions at once (unscaled
/// sums); the i16 sibling of [`window_dot2x4_f16`].
#[inline]
pub fn window_dot2x4_i16(
    series: &Tensor,
    taps: [&[i16]; 2],
    starts: [usize; 4],
    len: usize,
) -> [[f32; 2]; 4] {
    let d = series.rows();
    debug_assert!(
        taps.iter().all(|t| t.len() == d * len),
        "shapelet width mismatch"
    );
    let mut cross = [[0.0f32; 2]; 4];
    for v in 0..d {
        let row = series.row(v);
        let span = v * len..(v + 1) * len;
        let ws = [
            &row[starts[0]..starts[0] + len],
            &row[starts[1]..starts[1] + len],
            &row[starts[2]..starts[2] + len],
            &row[starts[3]..starts[3] + len],
        ];
        let r = dot2x4_i16(ws, &taps[0][span.clone()], &taps[1][span]);
        for (c, x) in cross.iter_mut().zip(r) {
            for (cc, xx) in c.iter_mut().zip(x) {
                *cc += xx;
            }
        }
    }
    cross
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::f16_to_f32;
    use std::arch::x86_64::*;

    /// Cached runtime check for the avx2+fma+f16c f16 path.
    #[inline]
    pub fn f16c_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
            && std::arch::is_x86_feature_detected!("f16c")
    }

    /// Cached runtime check for the avx2+fma i16 fallback path.
    #[inline]
    pub fn fma_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// Cached runtime check for the avx512f+avx512bw i16 path.
    #[inline]
    pub fn avx512_i16_available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
    }

    /// Cached runtime check for the avx512f+f16c f16 path (`vcvtph2ps`
    /// with a 512-bit destination needs AVX-512F; the scalar tail uses the
    /// same bit-exact software conversion as every other path).
    #[inline]
    pub fn avx512_f16_available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("f16c")
    }

    /// AVX2+F16C f16 dot product: four 8-lane chains; each 32-byte tap load
    /// carries 16 halves, converted in-register with `vcvtph2ps`.
    ///
    /// # Safety
    ///
    /// Requires the `avx2`, `fma` and `f16c` target features at runtime
    /// ([`f16c_available`]); `a` and `b` must be the same length.
    #[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
    pub unsafe fn dot_f16_f16c(a: &[f32], b: &[u16]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        unsafe {
            let mut acc = [_mm256_setzero_ps(); 4];
            let mut i = 0usize;
            while i + 32 <= n {
                for c in 0..2 {
                    let off = i + c * 16;
                    let h = _mm256_loadu_si256(pb.add(off) as *const __m256i);
                    let lo = _mm256_cvtph_ps(_mm256_castsi256_si128(h));
                    let hi = _mm256_cvtph_ps(_mm256_extracti128_si256(h, 1));
                    acc[c * 2] = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(off)), lo, acc[c * 2]);
                    acc[c * 2 + 1] =
                        _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(off + 8)), hi, acc[c * 2 + 1]);
                }
                i += 32;
            }
            while i + 16 <= n {
                let h = _mm256_loadu_si256(pb.add(i) as *const __m256i);
                let lo = _mm256_cvtph_ps(_mm256_castsi256_si128(h));
                let hi = _mm256_cvtph_ps(_mm256_extracti128_si256(h, 1));
                acc[0] = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), lo, acc[0]);
                acc[1] = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i + 8)), hi, acc[1]);
                i += 16;
            }
            let sum = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), sum);
            let mut s: f32 = lanes.iter().sum();
            while i < n {
                s += *pa.add(i) * f16_to_f32(*pb.add(i));
                i += 1;
            }
            s
        }
    }

    /// Four AVX2+F16C f16 dot products sharing the `w` operand: the window
    /// chunk is loaded once and FMA-ed against all four tap rows (two
    /// 8-lane chains per row).
    ///
    /// # Safety
    ///
    /// Requires the `avx2`, `fma` and `f16c` target features at runtime
    /// ([`f16c_available`]); all five slices must be the same length.
    #[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
    pub unsafe fn dot4_f16_f16c(
        w: &[f32],
        t0: &[u16],
        t1: &[u16],
        t2: &[u16],
        t3: &[u16],
    ) -> [f32; 4] {
        let n = w.len();
        let pw = w.as_ptr();
        let pts = [t0.as_ptr(), t1.as_ptr(), t2.as_ptr(), t3.as_ptr()];
        unsafe {
            let mut acc = [[_mm256_setzero_ps(); 2]; 4];
            let mut i = 0usize;
            while i + 16 <= n {
                let w0 = _mm256_loadu_ps(pw.add(i));
                let w1 = _mm256_loadu_ps(pw.add(i + 8));
                for (j, a) in acc.iter_mut().enumerate() {
                    // One 32-byte load carries 16 taps; halves convert
                    // in-register instead of through a second load port µop.
                    let h = _mm256_loadu_si256(pts[j].add(i) as *const __m256i);
                    let lo = _mm256_cvtph_ps(_mm256_castsi256_si128(h));
                    let hi = _mm256_cvtph_ps(_mm256_extracti128_si256(h, 1));
                    a[0] = _mm256_fmadd_ps(w0, lo, a[0]);
                    a[1] = _mm256_fmadd_ps(w1, hi, a[1]);
                }
                i += 16;
            }
            let mut out = [0.0f32; 4];
            for (j, a) in acc.iter().enumerate() {
                let s8 = _mm256_add_ps(a[0], a[1]);
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), s8);
                let mut s: f32 = lanes.iter().sum();
                let mut k = i;
                while k < n {
                    s += *pw.add(k) * f16_to_f32(*pts[j].add(k));
                    k += 1;
                }
                out[j] = s;
            }
            out
        }
    }

    /// AVX-512F f16 dot product: one 32-byte tap load + one `vcvtph2ps` to
    /// a full 512-bit lane + one FMA per 16 taps — the lowest µop count per
    /// element of any f16 path, which is what lets it beat the f32 kernel
    /// even when the taps are cache resident.
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` target feature at runtime
    /// ([`avx512_f16_available`]); `a` and `b` must be the same length.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot_f16_avx512(a: &[f32], b: &[u16]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        unsafe {
            let mut acc = [_mm512_setzero_ps(); 2];
            let mut i = 0usize;
            while i + 32 <= n {
                let h0 = _mm256_loadu_si256(pb.add(i) as *const __m256i);
                let h1 = _mm256_loadu_si256(pb.add(i + 16) as *const __m256i);
                acc[0] = _mm512_fmadd_ps(_mm512_loadu_ps(pa.add(i)), _mm512_cvtph_ps(h0), acc[0]);
                acc[1] =
                    _mm512_fmadd_ps(_mm512_loadu_ps(pa.add(i + 16)), _mm512_cvtph_ps(h1), acc[1]);
                i += 32;
            }
            let mut s = _mm512_reduce_add_ps(_mm512_add_ps(acc[0], acc[1]));
            while i < n {
                s += *pa.add(i) * f16_to_f32(*pb.add(i));
                i += 1;
            }
            s
        }
    }

    /// Four AVX-512F f16 dot products sharing the `w` operand.
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` target feature at runtime
    /// ([`avx512_f16_available`]); all five slices must be the same length.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot4_f16_avx512(
        w: &[f32],
        t0: &[u16],
        t1: &[u16],
        t2: &[u16],
        t3: &[u16],
    ) -> [f32; 4] {
        let n = w.len();
        let pw = w.as_ptr();
        let pts = [t0.as_ptr(), t1.as_ptr(), t2.as_ptr(), t3.as_ptr()];
        unsafe {
            let mut acc = [[_mm512_setzero_ps(); 2]; 4];
            let mut i = 0usize;
            while i + 32 <= n {
                let w0 = _mm512_loadu_ps(pw.add(i));
                let w1 = _mm512_loadu_ps(pw.add(i + 16));
                for (j, a) in acc.iter_mut().enumerate() {
                    let h0 = _mm256_loadu_si256(pts[j].add(i) as *const __m256i);
                    let h1 = _mm256_loadu_si256(pts[j].add(i + 16) as *const __m256i);
                    a[0] = _mm512_fmadd_ps(w0, _mm512_cvtph_ps(h0), a[0]);
                    a[1] = _mm512_fmadd_ps(w1, _mm512_cvtph_ps(h1), a[1]);
                }
                i += 32;
            }
            let mut out = [0.0f32; 4];
            for (j, a) in acc.iter().enumerate() {
                let mut s = _mm512_reduce_add_ps(_mm512_add_ps(a[0], a[1]));
                let mut k = i;
                while k < n {
                    s += *pw.add(k) * f16_to_f32(*pts[j].add(k));
                    k += 1;
                }
                out[j] = s;
            }
            out
        }
    }

    /// Two AVX-512F f16 dot products sharing the `w` operand. Same per-row
    /// accumulation structure as [`dot4_f16_avx512`] (two 512-bit chains,
    /// 32 elements per iteration, scalar tail) so a row's dot value is
    /// bit-identical regardless of the block width the caller picked.
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` target feature at runtime
    /// ([`avx512_f16_available`]); all three slices must be the same length.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot2_f16_avx512(w: &[f32], t0: &[u16], t1: &[u16]) -> [f32; 2] {
        let n = w.len();
        let pw = w.as_ptr();
        let pts = [t0.as_ptr(), t1.as_ptr()];
        unsafe {
            let mut acc = [[_mm512_setzero_ps(); 2]; 2];
            let mut i = 0usize;
            while i + 32 <= n {
                let w0 = _mm512_loadu_ps(pw.add(i));
                let w1 = _mm512_loadu_ps(pw.add(i + 16));
                for (j, a) in acc.iter_mut().enumerate() {
                    let h0 = _mm256_loadu_si256(pts[j].add(i) as *const __m256i);
                    let h1 = _mm256_loadu_si256(pts[j].add(i + 16) as *const __m256i);
                    a[0] = _mm512_fmadd_ps(w0, _mm512_cvtph_ps(h0), a[0]);
                    a[1] = _mm512_fmadd_ps(w1, _mm512_cvtph_ps(h1), a[1]);
                }
                i += 32;
            }
            let mut out = [0.0f32; 2];
            for (j, a) in acc.iter().enumerate() {
                let mut s = _mm512_reduce_add_ps(_mm512_add_ps(a[0], a[1]));
                let mut k = i;
                while k < n {
                    s += *pw.add(k) * f16_to_f32(*pts[j].add(k));
                    k += 1;
                }
                out[j] = s;
            }
            out
        }
    }

    /// Two AVX-512F f16 tap rows against four windows: one tap load + one
    /// `vcvtph2ps` feeds four FMAs (one per window), and the sixteen
    /// accumulator chains fully hide FMA latency on a single-FMA-unit core.
    /// Per (window, row) accumulation structure matches [`dot2_f16_avx512`].
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` target feature at runtime
    /// ([`avx512_f16_available`]); all six slices must be the same length.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot2x4_f16_avx512(ws: [&[f32]; 4], t0: &[u16], t1: &[u16]) -> [[f32; 2]; 4] {
        let n = t0.len();
        let pws = [
            ws[0].as_ptr(),
            ws[1].as_ptr(),
            ws[2].as_ptr(),
            ws[3].as_ptr(),
        ];
        let pts = [t0.as_ptr(), t1.as_ptr()];
        unsafe {
            let mut acc = [[[_mm512_setzero_ps(); 2]; 2]; 4]; // [window][row][chain]
            let mut i = 0usize;
            while i + 32 <= n {
                for (j, pt) in pts.iter().enumerate() {
                    let f0 = _mm512_cvtph_ps(_mm256_loadu_si256(pt.add(i) as *const __m256i));
                    let f1 = _mm512_cvtph_ps(_mm256_loadu_si256(pt.add(i + 16) as *const __m256i));
                    for (wi, pw) in pws.iter().enumerate() {
                        let a0 = _mm512_loadu_ps(pw.add(i));
                        let a1 = _mm512_loadu_ps(pw.add(i + 16));
                        acc[wi][j][0] = _mm512_fmadd_ps(a0, f0, acc[wi][j][0]);
                        acc[wi][j][1] = _mm512_fmadd_ps(a1, f1, acc[wi][j][1]);
                    }
                }
                i += 32;
            }
            let mut out = [[0.0f32; 2]; 4];
            for (wi, aw) in acc.iter().enumerate() {
                for (j, chains) in aw.iter().enumerate() {
                    let mut s = _mm512_reduce_add_ps(_mm512_add_ps(chains[0], chains[1]));
                    let mut k = i;
                    while k < n {
                        s += *pws[wi].add(k) * f16_to_f32(*pts[j].add(k));
                        k += 1;
                    }
                    out[wi][j] = s;
                }
            }
            out
        }
    }

    /// AVX-512F/BW unscaled i16 dot product: each 32-byte tap load carries
    /// 16 values, widened to i32 then converted to f32 in-register.
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` and `avx512bw` target features at runtime
    /// ([`avx512_i16_available`]); `a` and `b` must be the same length.
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    pub unsafe fn dot_i16_avx512(a: &[f32], b: &[i16]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        unsafe {
            let mut acc = [_mm512_setzero_ps(); 2];
            let mut i = 0usize;
            while i + 32 <= n {
                let h0 = _mm256_loadu_si256(pb.add(i) as *const __m256i);
                let h1 = _mm256_loadu_si256(pb.add(i + 16) as *const __m256i);
                let f0 = _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(h0));
                let f1 = _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(h1));
                acc[0] = _mm512_fmadd_ps(_mm512_loadu_ps(pa.add(i)), f0, acc[0]);
                acc[1] = _mm512_fmadd_ps(_mm512_loadu_ps(pa.add(i + 16)), f1, acc[1]);
                i += 32;
            }
            let mut s = _mm512_reduce_add_ps(_mm512_add_ps(acc[0], acc[1]));
            while i < n {
                s += *pa.add(i) * (*pb.add(i) as f32);
                i += 1;
            }
            s
        }
    }

    /// Four AVX-512F/BW unscaled i16 dot products sharing the `w` operand.
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` and `avx512bw` target features at runtime
    /// ([`avx512_i16_available`]); all five slices must be the same length.
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    pub unsafe fn dot4_i16_avx512(
        w: &[f32],
        t0: &[i16],
        t1: &[i16],
        t2: &[i16],
        t3: &[i16],
    ) -> [f32; 4] {
        let n = w.len();
        let pw = w.as_ptr();
        let pts = [t0.as_ptr(), t1.as_ptr(), t2.as_ptr(), t3.as_ptr()];
        unsafe {
            let mut acc = [[_mm512_setzero_ps(); 2]; 4];
            let mut i = 0usize;
            while i + 32 <= n {
                let w0 = _mm512_loadu_ps(pw.add(i));
                let w1 = _mm512_loadu_ps(pw.add(i + 16));
                for (j, a) in acc.iter_mut().enumerate() {
                    let h0 = _mm256_loadu_si256(pts[j].add(i) as *const __m256i);
                    let h1 = _mm256_loadu_si256(pts[j].add(i + 16) as *const __m256i);
                    let f0 = _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(h0));
                    let f1 = _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(h1));
                    a[0] = _mm512_fmadd_ps(w0, f0, a[0]);
                    a[1] = _mm512_fmadd_ps(w1, f1, a[1]);
                }
                i += 32;
            }
            let mut out = [0.0f32; 4];
            for (j, a) in acc.iter().enumerate() {
                let mut s = _mm512_reduce_add_ps(_mm512_add_ps(a[0], a[1]));
                let mut k = i;
                while k < n {
                    s += *pw.add(k) * (*pts[j].add(k) as f32);
                    k += 1;
                }
                out[j] = s;
            }
            out
        }
    }

    /// Two AVX-512F/BW unscaled i16 dot products sharing the `w` operand.
    /// Same per-row accumulation structure as [`dot4_i16_avx512`] so a row's
    /// dot value is bit-identical regardless of the block width.
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` and `avx512bw` target features at runtime
    /// ([`avx512_i16_available`]); all three slices must be the same length.
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    pub unsafe fn dot2_i16_avx512(w: &[f32], t0: &[i16], t1: &[i16]) -> [f32; 2] {
        let n = w.len();
        let pw = w.as_ptr();
        let pts = [t0.as_ptr(), t1.as_ptr()];
        unsafe {
            let mut acc = [[_mm512_setzero_ps(); 2]; 2];
            let mut i = 0usize;
            while i + 32 <= n {
                let w0 = _mm512_loadu_ps(pw.add(i));
                let w1 = _mm512_loadu_ps(pw.add(i + 16));
                for (j, a) in acc.iter_mut().enumerate() {
                    let h0 = _mm256_loadu_si256(pts[j].add(i) as *const __m256i);
                    let h1 = _mm256_loadu_si256(pts[j].add(i + 16) as *const __m256i);
                    let f0 = _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(h0));
                    let f1 = _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(h1));
                    a[0] = _mm512_fmadd_ps(w0, f0, a[0]);
                    a[1] = _mm512_fmadd_ps(w1, f1, a[1]);
                }
                i += 32;
            }
            let mut out = [0.0f32; 2];
            for (j, a) in acc.iter().enumerate() {
                let mut s = _mm512_reduce_add_ps(_mm512_add_ps(a[0], a[1]));
                let mut k = i;
                while k < n {
                    s += *pw.add(k) * (*pts[j].add(k) as f32);
                    k += 1;
                }
                out[j] = s;
            }
            out
        }
    }

    /// Two AVX-512F/BW unscaled i16 tap rows against four windows; the i16
    /// sibling of [`dot2x4_f16_avx512`], sharing the widening conversion
    /// chain across all four windows. Per (window, row) accumulation
    /// structure matches [`dot2_i16_avx512`].
    ///
    /// # Safety
    ///
    /// Requires the `avx512f` and `avx512bw` target features at runtime
    /// ([`avx512_i16_available`]); all six slices must be the same length.
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    pub unsafe fn dot2x4_i16_avx512(ws: [&[f32]; 4], t0: &[i16], t1: &[i16]) -> [[f32; 2]; 4] {
        let n = t0.len();
        let pws = [
            ws[0].as_ptr(),
            ws[1].as_ptr(),
            ws[2].as_ptr(),
            ws[3].as_ptr(),
        ];
        let pts = [t0.as_ptr(), t1.as_ptr()];
        unsafe {
            let mut acc = [[[_mm512_setzero_ps(); 2]; 2]; 4]; // [window][row][chain]
            let mut i = 0usize;
            while i + 32 <= n {
                for (j, pt) in pts.iter().enumerate() {
                    let h0 = _mm256_loadu_si256(pt.add(i) as *const __m256i);
                    let h1 = _mm256_loadu_si256(pt.add(i + 16) as *const __m256i);
                    let f0 = _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(h0));
                    let f1 = _mm512_cvtepi32_ps(_mm512_cvtepi16_epi32(h1));
                    for (wi, pw) in pws.iter().enumerate() {
                        let a0 = _mm512_loadu_ps(pw.add(i));
                        let a1 = _mm512_loadu_ps(pw.add(i + 16));
                        acc[wi][j][0] = _mm512_fmadd_ps(a0, f0, acc[wi][j][0]);
                        acc[wi][j][1] = _mm512_fmadd_ps(a1, f1, acc[wi][j][1]);
                    }
                }
                i += 32;
            }
            let mut out = [[0.0f32; 2]; 4];
            for (wi, aw) in acc.iter().enumerate() {
                for (j, chains) in aw.iter().enumerate() {
                    let mut s = _mm512_reduce_add_ps(_mm512_add_ps(chains[0], chains[1]));
                    let mut k = i;
                    while k < n {
                        s += *pws[wi].add(k) * (*pts[j].add(k) as f32);
                        k += 1;
                    }
                    out[wi][j] = s;
                }
            }
            out
        }
    }

    /// AVX2+FMA unscaled i16 dot product (fallback when AVX-512 is absent):
    /// widening converts via `vpmovsxwd` + `vcvtdq2ps`.
    ///
    /// # Safety
    ///
    /// Requires the `avx2` and `fma` target features at runtime
    /// ([`fma_available`]); `a` and `b` must be the same length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_i16_avx2(a: &[f32], b: &[i16]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        unsafe {
            let mut acc = [_mm256_setzero_ps(); 4];
            let mut i = 0usize;
            while i + 32 <= n {
                for c in 0..2 {
                    let off = i + c * 16;
                    let h = _mm256_loadu_si256(pb.add(off) as *const __m256i);
                    let lo = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm256_castsi256_si128(h)));
                    let hi =
                        _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm256_extracti128_si256(h, 1)));
                    acc[c * 2] = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(off)), lo, acc[c * 2]);
                    acc[c * 2 + 1] =
                        _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(off + 8)), hi, acc[c * 2 + 1]);
                }
                i += 32;
            }
            while i + 16 <= n {
                let h = _mm256_loadu_si256(pb.add(i) as *const __m256i);
                let lo = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm256_castsi256_si128(h)));
                let hi = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm256_extracti128_si256(h, 1)));
                acc[0] = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), lo, acc[0]);
                acc[1] = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i + 8)), hi, acc[1]);
                i += 16;
            }
            let sum = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), sum);
            let mut s: f32 = lanes.iter().sum();
            while i < n {
                s += *pa.add(i) * (*pb.add(i) as f32);
                i += 1;
            }
            s
        }
    }

    /// Four AVX2+FMA unscaled i16 dot products sharing the `w` operand.
    ///
    /// # Safety
    ///
    /// Requires the `avx2` and `fma` target features at runtime
    /// ([`fma_available`]); all five slices must be the same length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot4_i16_avx2(
        w: &[f32],
        t0: &[i16],
        t1: &[i16],
        t2: &[i16],
        t3: &[i16],
    ) -> [f32; 4] {
        let n = w.len();
        let pw = w.as_ptr();
        let pts = [t0.as_ptr(), t1.as_ptr(), t2.as_ptr(), t3.as_ptr()];
        unsafe {
            let mut acc = [[_mm256_setzero_ps(); 2]; 4];
            let mut i = 0usize;
            while i + 16 <= n {
                let w0 = _mm256_loadu_ps(pw.add(i));
                let w1 = _mm256_loadu_ps(pw.add(i + 8));
                for (j, a) in acc.iter_mut().enumerate() {
                    let h = _mm256_loadu_si256(pts[j].add(i) as *const __m256i);
                    let lo = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm256_castsi256_si128(h)));
                    let hi =
                        _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm256_extracti128_si256(h, 1)));
                    a[0] = _mm256_fmadd_ps(w0, lo, a[0]);
                    a[1] = _mm256_fmadd_ps(w1, hi, a[1]);
                }
                i += 16;
            }
            let mut out = [0.0f32; 4];
            for (j, a) in acc.iter().enumerate() {
                let s8 = _mm256_add_ps(a[0], a[1]);
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), s8);
                let mut s: f32 = lanes.iter().sum();
                let mut k = i;
                while k < n {
                    s += *pw.add(k) * (*pts[j].add(k) as f32);
                    k += 1;
                }
                out[j] = s;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::dot_scalar;
    use rand::{Rng, SeedableRng};

    #[test]
    fn scheme_name_parse_round_trip() {
        for s in [QuantScheme::F16, QuantScheme::I16] {
            assert_eq!(QuantScheme::parse(s.name()), Some(s));
            assert_eq!(s.bytes_per_tap(), 2);
        }
        assert_eq!(QuantScheme::parse("f32"), None);
        assert_eq!(QuantScheme::parse(""), None);
    }

    #[test]
    fn f16_known_values_round_trip_exactly() {
        // Values exactly representable in binary16 must survive unchanged.
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.25,
            1.5,
            1024.0,
            6.103_515_6e-5, // smallest normal half
            5.960_464_5e-8, // smallest subnormal half
            6.097_555e-5,   // largest subnormal half
        ] {
            let back = f16_to_f32(f32_to_f16(x));
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {back}");
        }
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 and the next half
        // (1 + 2⁻¹⁰); ties go to the even mantissa, i.e. down to 1.0.
        assert_eq!(f16_to_f32(f32_to_f16(1.0 + 0.000_488_281_25)), 1.0);
        // 1 + 3·2⁻¹¹ is halfway between 1+2⁻¹⁰ and 1+2·2⁻¹⁰; even is up.
        let up = f16_to_f32(f32_to_f16(1.0 + 3.0 * 0.000_488_281_25));
        assert_eq!(up, 1.0 + 2.0 * 0.000_976_562_5);
    }

    #[test]
    fn f16_overflow_and_nan() {
        assert_eq!(f16_to_f32(f32_to_f16(1e6)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(-1e6)), f32::NEG_INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Tiny values flush to signed zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e-10)), 0.0);
        assert_eq!(
            f16_to_f32(f32_to_f16(-1e-10)).to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    fn f16_relative_error_within_budget() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = (rng.gen::<f32>() - 0.5) * 100.0;
            let back = f16_to_f32(f32_to_f16(x));
            // RTNE over the normal range: relative error ≤ 2⁻¹¹.
            assert!(
                (back - x).abs() <= x.abs() * 4.883e-4 + 1e-9,
                "{x} → {back}"
            );
        }
    }

    #[test]
    fn i16_quantization_error_within_half_step() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let row: Vec<f32> = (0..513).map(|_| (rng.gen::<f32>() - 0.5) * 3.0).collect();
        let scale = i16_scale(&row);
        let q = quantize_i16(&row, scale);
        let back = dequantize_i16(&q, scale);
        for (&x, &b) in row.iter().zip(&back) {
            assert!((x - b).abs() <= scale * 0.5 + 1e-9, "{x} vs {b}");
        }
        // The max-|x| element quantizes to exactly ±32767.
        assert_eq!(q.iter().map(|&v| v.abs()).max(), Some(32767));
    }

    #[test]
    fn i16_scale_of_zero_row_is_one() {
        assert_eq!(i16_scale(&[0.0, -0.0, 0.0]), 1.0);
        assert_eq!(quantize_i16(&[0.0, 0.0], 1.0), vec![0, 0]);
    }

    #[test]
    fn dot_f16_matches_dequantized_scalar() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for n in [0usize, 1, 3, 7, 8, 9, 31, 32, 33, 63, 64, 65, 100, 1023] {
            let a: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
            let b: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
            let bq = quantize_f16(&b);
            let deq = dequantize_f16(&bq);
            let want = dot_scalar(&a, &deq);
            let got = dot_f16(&a, &bq);
            let scale = 1.0f32.max(want.abs());
            assert!(
                (got - want).abs() / scale < 1e-5,
                "n={n}: dot_f16 {got} vs dequantized scalar {want}"
            );
            // Below the SIMD threshold the scalar path is bit-identical to
            // dot_scalar on the dequantized taps.
            if n < 64 {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn dot4_f16_matches_four_dots() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for n in [0usize, 3, 15, 16, 17, 63, 64, 65, 200, 1031] {
            let w: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
            let ts: Vec<Vec<u16>> = (0..4)
                .map(|_| quantize_f16(&(0..n).map(|_| rng.gen::<f32>() - 0.5).collect::<Vec<_>>()))
                .collect();
            let got = dot4_f16(&w, &ts[0], &ts[1], &ts[2], &ts[3]);
            for j in 0..4 {
                let want = dot_f16_scalar(&w, &ts[j]);
                let scale = 1.0f32.max(want.abs());
                assert!(
                    (got[j] - want).abs() / scale < 1e-5,
                    "n={n} j={j}: dot4_f16 {} vs scalar {want}",
                    got[j]
                );
            }
        }
    }

    #[test]
    fn dot_i16_matches_dequantized_scalar() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for n in [1usize, 7, 8, 31, 33, 63, 64, 65, 100, 1023] {
            let a: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
            let b: Vec<f32> = (0..n).map(|_| (rng.gen::<f32>() - 0.5) * 2.0).collect();
            let scale = i16_scale(&b);
            let q = quantize_i16(&b, scale);
            let deq = dequantize_i16(&q, scale);
            let want = dot_scalar(&a, &deq);
            let got = dot_i16(&a, &q) * scale;
            // The unscaled sum is huge (|q| ≤ 32767); compare relative to
            // the magnitudes involved.
            let tol = 1e-5 * (1.0 + a.iter().map(|x| x.abs()).sum::<f32>() * scale * 32767.0);
            assert!(
                (got - want).abs() < tol,
                "n={n}: dot_i16·scale {got} vs dequantized scalar {want}"
            );
        }
    }

    #[test]
    fn dot4_i16_matches_four_dots() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for n in [0usize, 3, 16, 63, 64, 65, 200, 1031] {
            let w: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
            let rows: Vec<Vec<f32>> = (0..4)
                .map(|_| (0..n).map(|_| rng.gen::<f32>() - 0.5).collect())
                .collect();
            let qs: Vec<Vec<i16>> = rows.iter().map(|r| quantize_i16(r, i16_scale(r))).collect();
            let got = dot4_i16(&w, &qs[0], &qs[1], &qs[2], &qs[3]);
            for j in 0..4 {
                let want = dot_i16_scalar(&w, &qs[j]);
                let scale = 1.0f32.max(want.abs());
                assert!(
                    (got[j] - want).abs() / scale < 1e-5,
                    "n={n} j={j}: dot4_i16 {} vs scalar {want}",
                    got[j]
                );
            }
        }
    }

    #[test]
    fn window_wrappers_match_plain_window_dot_on_dequantized_taps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for &(d, t, len) in &[(1usize, 40usize, 5usize), (3, 300, 80)] {
            let s = Tensor::randn([d, t], &mut rng);
            let bank = Tensor::randn([4, d * len], &mut rng);
            let f16_rows: Vec<Vec<u16>> = (0..4).map(|j| quantize_f16(bank.row(j))).collect();
            let scales: Vec<f32> = (0..4).map(|j| i16_scale(bank.row(j))).collect();
            let i16_rows: Vec<Vec<i16>> = (0..4)
                .map(|j| quantize_i16(bank.row(j), scales[j]))
                .collect();
            for w in 0..(t - len + 1) {
                let g4f = window_dot4_f16(
                    &s,
                    [&f16_rows[0], &f16_rows[1], &f16_rows[2], &f16_rows[3]],
                    w,
                    len,
                );
                let g4i = window_dot4_i16(
                    &s,
                    [&i16_rows[0], &i16_rows[1], &i16_rows[2], &i16_rows[3]],
                    w,
                    len,
                );
                for j in 0..4 {
                    let deq_f = dequantize_f16(&f16_rows[j]);
                    let want_f = crate::window::window_dot(&s, &deq_f, w, len);
                    assert!(
                        (g4f[j] - want_f).abs() < 1e-4 * (1.0 + want_f.abs()),
                        "f16 w={w} j={j}"
                    );
                    assert!(
                        (window_dot_f16(&s, &f16_rows[j], w, len) - want_f).abs()
                            < 1e-4 * (1.0 + want_f.abs()),
                        "f16 single w={w} j={j}"
                    );
                    let deq_i = dequantize_i16(&i16_rows[j], scales[j]);
                    let want_i = crate::window::window_dot(&s, &deq_i, w, len);
                    let tol = 1e-4 * (1.0 + want_i.abs());
                    assert!((g4i[j] * scales[j] - want_i).abs() < tol, "i16 w={w} j={j}");
                    assert!(
                        (window_dot_i16(&s, &i16_rows[j], w, len) * scales[j] - want_i).abs() < tol,
                        "i16 single w={w} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_and_quad_kernels_are_bit_identical_to_single_dots() {
        // The 2-row and 2-row×4-window kernels keep each (window, row)
        // dot's accumulation order identical to the single-dot kernels, so
        // narrow blocking must never change a value — the shapelet engines
        // rely on this to keep pooling and localization bit-consistent
        // whatever block width they pick. Lengths straddle both the i16
        // (64) and AVX-512 f16 (1024) dispatch thresholds.
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for n in [64usize, 1023, 1024, 1100, 3277] {
            let rows: Vec<Vec<f32>> = (0..2)
                .map(|_| (0..n).map(|_| rng.gen::<f32>() - 0.5).collect())
                .collect();
            let f16s: Vec<Vec<u16>> = rows.iter().map(|r| quantize_f16(r)).collect();
            let i16s: Vec<Vec<i16>> = rows.iter().map(|r| quantize_i16(r, i16_scale(r))).collect();
            let wins: Vec<Vec<f32>> = (0..4)
                .map(|_| (0..n).map(|_| rng.gen::<f32>() - 0.5).collect())
                .collect();
            for w in &wins {
                let pf = dot2_f16(w, &f16s[0], &f16s[1]);
                assert_eq!(pf[0].to_bits(), dot_f16(w, &f16s[0]).to_bits(), "n={n}");
                assert_eq!(pf[1].to_bits(), dot_f16(w, &f16s[1]).to_bits(), "n={n}");
                let pi = dot2_i16(w, &i16s[0], &i16s[1]);
                assert_eq!(pi[0].to_bits(), dot_i16(w, &i16s[0]).to_bits(), "n={n}");
                assert_eq!(pi[1].to_bits(), dot_i16(w, &i16s[1]).to_bits(), "n={n}");
            }
            let ws = [&wins[0][..], &wins[1][..], &wins[2][..], &wins[3][..]];
            let qf = dot2x4_f16(ws, &f16s[0], &f16s[1]);
            let qi = dot2x4_i16(ws, &i16s[0], &i16s[1]);
            for (wi, w) in ws.iter().enumerate() {
                let pf = dot2_f16(w, &f16s[0], &f16s[1]);
                let pi = dot2_i16(w, &i16s[0], &i16s[1]);
                for j in 0..2 {
                    assert_eq!(
                        qf[wi][j].to_bits(),
                        pf[j].to_bits(),
                        "f16 n={n} w={wi} j={j}"
                    );
                    assert_eq!(
                        qi[wi][j].to_bits(),
                        pi[j].to_bits(),
                        "i16 n={n} w={wi} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn paired_kernel_availability_is_length_monotone() {
        // Whatever this machine supports, a longer span never *loses* the
        // fused pair kernel once a shorter one has it.
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            let mut seen = false;
            for len in [8usize, 64, 1024, 4096] {
                let avail = paired_kernel_available(scheme, len);
                assert!(avail || !seen, "{scheme:?} lost pair kernel at {len}");
                seen = avail;
            }
        }
    }

    #[test]
    fn dispatch_counting_smoke() {
        // Just exercise both schemes at both sides of the threshold; the
        // counters are process-global so we only check it doesn't panic.
        for scheme in [QuantScheme::F16, QuantScheme::I16] {
            count_quant_dot_dispatch(scheme, 8, 3);
            count_quant_dot_dispatch(scheme, 4096, 3);
            count_quant_dot_dispatch(scheme, 4096, 0);
        }
    }
}

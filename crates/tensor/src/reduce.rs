//! Global and per-axis reductions for rank-2 tensors.
//!
//! The min/max variants also report the arg-extreme indices because the
//! shapelet transform's pooling backward pass routes gradients to exactly the
//! extreme window (the standard subgradient of min/max pooling).

use crate::tensor::Tensor;

/// Sum of all elements.
pub fn sum(t: &Tensor) -> f32 {
    t.as_slice().iter().sum()
}

/// Mean of all elements (0 for an empty tensor).
pub fn mean(t: &Tensor) -> f32 {
    if t.numel() == 0 {
        0.0
    } else {
        sum(t) / t.numel() as f32
    }
}

/// Global minimum. Panics on empty input.
pub fn min(t: &Tensor) -> f32 {
    t.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
}

/// Global maximum. Panics on empty input.
pub fn max(t: &Tensor) -> f32 {
    t.as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
}

/// Index of the global maximum (first occurrence).
pub fn argmax(t: &Tensor) -> usize {
    let mut best = 0;
    let s = t.as_slice();
    for (i, &v) in s.iter().enumerate() {
        if v > s[best] {
            best = i;
        }
    }
    best
}

/// Index of the global minimum (first occurrence).
pub fn argmin(t: &Tensor) -> usize {
    let mut best = 0;
    let s = t.as_slice();
    for (i, &v) in s.iter().enumerate() {
        if v < s[best] {
            best = i;
        }
    }
    best
}

/// Which axis of a rank-2 tensor a reduction collapses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Collapse rows: output has one entry per column.
    Rows,
    /// Collapse columns: output has one entry per row.
    Cols,
}

/// Per-axis sum of a rank-2 tensor.
pub fn sum_axis(t: &Tensor, axis: Axis) -> Tensor {
    let (r, c) = (t.rows(), t.cols());
    match axis {
        Axis::Rows => {
            let mut out = Tensor::zeros([c]);
            for i in 0..r {
                let row = t.row(i);
                for (o, &v) in out.as_mut_slice().iter_mut().zip(row.iter()) {
                    *o += v;
                }
            }
            out
        }
        Axis::Cols => {
            let mut out = Tensor::zeros([r]);
            for i in 0..r {
                out.as_mut_slice()[i] = t.row(i).iter().sum();
            }
            out
        }
    }
}

/// Per-axis mean of a rank-2 tensor.
pub fn mean_axis(t: &Tensor, axis: Axis) -> Tensor {
    let n = match axis {
        Axis::Rows => t.rows(),
        Axis::Cols => t.cols(),
    } as f32;
    sum_axis(t, axis).scale(1.0 / n)
}

/// Per-axis minimum with arg indices: `(values, argmin)`.
///
/// For `Axis::Rows` the outputs have one entry per column (the minimizing
/// row index); for `Axis::Cols` one entry per row (the minimizing column).
pub fn min_axis(t: &Tensor, axis: Axis) -> (Tensor, Vec<usize>) {
    extreme_axis(t, axis, |a, b| a < b)
}

/// Per-axis maximum with arg indices: `(values, argmax)`.
pub fn max_axis(t: &Tensor, axis: Axis) -> (Tensor, Vec<usize>) {
    extreme_axis(t, axis, |a, b| a > b)
}

fn extreme_axis(t: &Tensor, axis: Axis, better: impl Fn(f32, f32) -> bool) -> (Tensor, Vec<usize>) {
    let (r, c) = (t.rows(), t.cols());
    match axis {
        Axis::Rows => {
            assert!(r > 0, "cannot reduce an empty axis");
            let mut vals = t.row(0).to_vec();
            let mut args = vec![0usize; c];
            for i in 1..r {
                for (j, &v) in t.row(i).iter().enumerate() {
                    if better(v, vals[j]) {
                        vals[j] = v;
                        args[j] = i;
                    }
                }
            }
            (Tensor::from_vec(vals, [c]), args)
        }
        Axis::Cols => {
            assert!(c > 0, "cannot reduce an empty axis");
            let mut vals = vec![0.0f32; r];
            let mut args = vec![0usize; r];
            for i in 0..r {
                let row = t.row(i);
                let (mut bv, mut bj) = (row[0], 0usize);
                for (j, &v) in row.iter().enumerate().skip(1) {
                    if better(v, bv) {
                        bv = v;
                        bj = j;
                    }
                }
                vals[i] = bv;
                args[i] = bj;
            }
            (Tensor::from_vec(vals, [r]), args)
        }
    }
}

/// Population variance of all elements.
pub fn variance(t: &Tensor) -> f32 {
    let m = mean(t);
    if t.numel() == 0 {
        return 0.0;
    }
    t.as_slice().iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / t.numel() as f32
}

/// Population standard deviation of all elements.
pub fn std_dev(t: &Tensor) -> f32 {
    variance(t).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t23() -> Tensor {
        Tensor::from_vec(vec![1.0, -2.0, 3.0, 4.0, 0.5, -6.0], [2, 3])
    }

    #[test]
    fn global_reductions() {
        let t = t23();
        assert!((sum(&t) - 0.5).abs() < 1e-6);
        assert!((mean(&t) - 0.5 / 6.0).abs() < 1e-6);
        assert_eq!(min(&t), -6.0);
        assert_eq!(max(&t), 4.0);
        assert_eq!(argmin(&t), 5);
        assert_eq!(argmax(&t), 3);
    }

    #[test]
    fn axis_sums() {
        let t = t23();
        let rows = sum_axis(&t, Axis::Rows);
        assert_eq!(rows.as_slice(), &[5.0, -1.5, -3.0]);
        let cols = sum_axis(&t, Axis::Cols);
        assert_eq!(cols.as_slice(), &[2.0, -1.5]);
        let mc = mean_axis(&t, Axis::Cols);
        assert!((mc.as_slice()[0] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn axis_extremes_track_args() {
        let t = t23();
        let (mv, ma) = min_axis(&t, Axis::Cols);
        assert_eq!(mv.as_slice(), &[-2.0, -6.0]);
        assert_eq!(ma, vec![1, 2]);
        let (xv, xa) = max_axis(&t, Axis::Rows);
        assert_eq!(xv.as_slice(), &[4.0, 0.5, 3.0]);
        assert_eq!(xa, vec![1, 1, 0]);
    }

    #[test]
    fn tie_breaks_to_first() {
        let t = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], [2, 2]);
        let (_, args) = min_axis(&t, Axis::Cols);
        assert_eq!(args, vec![0, 0]);
        let (_, args) = max_axis(&t, Axis::Rows);
        assert_eq!(args, vec![0, 0]);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let t = Tensor::full([3, 3], 2.5);
        assert!(variance(&t).abs() < 1e-7);
        assert!(std_dev(&t).abs() < 1e-7);
    }

    #[test]
    fn variance_known_value() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        assert!((variance(&t) - 1.25).abs() < 1e-6);
    }
}

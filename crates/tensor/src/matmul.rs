//! Cache-friendly matrix multiplication kernels.
//!
//! The whole TimeCSL stack funnels its heavy arithmetic through these three
//! kernels (plain product, `A·Bᵀ`, and matrix–vector). They use the i-k-j
//! loop order so the innermost loop streams both the output row and the `B`
//! row sequentially — the standard cache-friendly ordering that lets LLVM
//! auto-vectorize the accumulation.

use crate::tensor::Tensor;

/// `A (m×k) · B (k×n) → (m×n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul inner dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Dot product — the kernel the whole shapelet transform funnels through.
///
/// On x86-64 with AVX2+FMA (detected at runtime, so portable builds still
/// work everywhere) this uses the intrinsics path below; elsewhere it falls
/// back to [`dot_scalar`]. Every scoring engine calls this same function,
/// so fused/blocked/oracle transforms see identical dot-product rounding.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if a.len() >= FMA_MIN_LEN && x86::fma_available() {
        // SAFETY: gated on runtime detection of avx2+fma.
        return unsafe { x86::dot_fma(a, b) };
    }
    dot_scalar(a, b)
}

/// Below this length the call into the (non-inlinable, runtime-detected)
/// intrinsics path costs more than it saves; the scalar kernel inlines
/// into the caller's loop. Dispatch depends only on the length, so every
/// engine sees the same rounding for the same operands.
const FMA_MIN_LEN: usize = 64;

/// Records `n` dot products of operand length `len` against the
/// `dot.dispatch.*` counters — the same length-only decision [`dot`] and
/// [`dot4`] make, hoisted out of their bodies so hot loops pay **one**
/// enabled-gate check per batch instead of one per dot product. The batch
/// kernels (transforms, pairwise distances, the matmul wrappers below)
/// call this; stray singleton `dot` calls on cold paths go uncounted.
#[inline]
pub fn count_dot_dispatch(len: usize, n: u64) {
    if n == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if len >= FMA_MIN_LEN && x86::fma_available() {
        tcsl_obs::counters::DOT_DISPATCH_AVX2_FMA.add(n);
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = len;
    tcsl_obs::counters::DOT_DISPATCH_SCALAR.add(n);
}

/// Portable dot product with eight independent accumulators so LLVM can
/// vectorize the reduction (a single-accumulator loop has a serial
/// dependency chain that blocks SIMD).
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let (x, y) = (&a[c * 8..c * 8 + 8], &b[c * 8..c * 8 + 8]);
        for l in 0..8 {
            acc[l] += x[l] * y[l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// Dot products of one vector against four others in a single pass: the
/// shared side is loaded once per lane instead of four times, which lifts
/// the kernel off the load-port ceiling a lone [`dot`] hits. This is the
/// blocked kernel behind the fused shapelet transform's shapelet-major
/// loop (4 shapelets of a group per streaming pass).
///
/// Dispatch depends only on the length, so any two call sites given the
/// same operands produce bit-identical results.
#[inline]
pub fn dot4(w: &[f32], t0: &[f32], t1: &[f32], t2: &[f32], t3: &[f32]) -> [f32; 4] {
    debug_assert!(
        t0.len() == w.len() && t1.len() == w.len() && t2.len() == w.len() && t3.len() == w.len()
    );
    #[cfg(target_arch = "x86_64")]
    if w.len() >= FMA_MIN_LEN && x86::fma_available() {
        // SAFETY: gated on runtime detection of avx2+fma.
        return unsafe { x86::dot4_fma(w, t0, t1, t2, t3) };
    }
    [dot(w, t0), dot(w, t1), dot(w, t2), dot(w, t3)]
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Cached runtime check for the avx2+fma dot path.
    #[inline]
    pub fn fma_available() -> bool {
        // is_x86_feature_detected caches the CPUID result internally.
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// AVX2+FMA dot product: eight 8-lane accumulator chains (enough
    /// instruction-level parallelism to keep both FMA ports busy across the
    /// ~4-cycle FMA latency), lanes reduced sequentially at the end.
    ///
    /// # Safety
    ///
    /// Requires the `avx2` and `fma` target features at runtime
    /// ([`fma_available`]); `a` and `b` must be the same length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        unsafe {
            let mut acc = [_mm256_setzero_ps(); 8];
            let mut i = 0usize;
            while i + 64 <= n {
                for (c, lane) in acc.iter_mut().enumerate() {
                    let off = i + c * 8;
                    *lane = _mm256_fmadd_ps(
                        _mm256_loadu_ps(pa.add(off)),
                        _mm256_loadu_ps(pb.add(off)),
                        *lane,
                    );
                }
                i += 64;
            }
            while i + 8 <= n {
                acc[0] = _mm256_fmadd_ps(
                    _mm256_loadu_ps(pa.add(i)),
                    _mm256_loadu_ps(pb.add(i)),
                    acc[0],
                );
                i += 8;
            }
            let quad = [
                _mm256_add_ps(acc[0], acc[1]),
                _mm256_add_ps(acc[2], acc[3]),
                _mm256_add_ps(acc[4], acc[5]),
                _mm256_add_ps(acc[6], acc[7]),
            ];
            let sum = _mm256_add_ps(
                _mm256_add_ps(quad[0], quad[1]),
                _mm256_add_ps(quad[2], quad[3]),
            );
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), sum);
            let mut s: f32 = lanes.iter().sum();
            while i < n {
                s += *pa.add(i) * *pb.add(i);
                i += 1;
            }
            s
        }
    }

    /// Four dot products sharing the `w` operand: each window chunk is
    /// loaded once and FMA-ed against all four tap rows (two 8-lane chains
    /// per row for latency cover).
    ///
    /// # Safety
    ///
    /// Requires the `avx2` and `fma` target features at runtime
    /// ([`fma_available`]); all five slices must be the same length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot4_fma(w: &[f32], t0: &[f32], t1: &[f32], t2: &[f32], t3: &[f32]) -> [f32; 4] {
        let n = w.len();
        let pw = w.as_ptr();
        let pts = [t0.as_ptr(), t1.as_ptr(), t2.as_ptr(), t3.as_ptr()];
        unsafe {
            let mut acc = [[_mm256_setzero_ps(); 2]; 4];
            let mut i = 0usize;
            while i + 16 <= n {
                let w0 = _mm256_loadu_ps(pw.add(i));
                let w1 = _mm256_loadu_ps(pw.add(i + 8));
                for (j, a) in acc.iter_mut().enumerate() {
                    a[0] = _mm256_fmadd_ps(w0, _mm256_loadu_ps(pts[j].add(i)), a[0]);
                    a[1] = _mm256_fmadd_ps(w1, _mm256_loadu_ps(pts[j].add(i + 8)), a[1]);
                }
                i += 16;
            }
            let mut out = [0.0f32; 4];
            for (j, a) in acc.iter().enumerate() {
                let s8 = _mm256_add_ps(a[0], a[1]);
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), s8);
                let mut s: f32 = lanes.iter().sum();
                let mut k = i;
                while k < n {
                    s += *pw.add(k) * *pts[j].add(k);
                    k += 1;
                }
                out[j] = s;
            }
            out
        }
    }
}

/// `A (m×k) · Bᵀ where B is (n×k) → (m×n)`.
///
/// Both operands are walked row-wise, so this is the preferred kernel when
/// the right factor is naturally stored row-major (e.g. a bank of shapelets
/// or a batch of embeddings whose pairwise similarities we need).
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_transb inner dimensions differ: {k} vs {kb}");
    count_dot_dispatch(k, (m * n) as u64);
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            od[i * n + j] = dot(arow, &bd[j * k..(j + 1) * k]);
        }
    }
    out
}

/// `Aᵀ (k×m)ᵀ · B (k×n) → (m×n)` computed without materializing `Aᵀ`.
pub fn matmul_transa(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_transa inner dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `A (m×k) · v (k) → (m)`.
pub fn matvec(a: &Tensor, v: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(
        v.numel(),
        k,
        "matvec dimension mismatch: {} vs {k}",
        v.numel()
    );
    count_dot_dispatch(k, m as u64);
    let mut out = Tensor::zeros([m]);
    let (ad, vd) = (a.as_slice(), v.as_slice());
    let od = out.as_mut_slice();
    for i in 0..m {
        od[i] = dot(&ad[i * k..(i + 1) * k], vd);
    }
    out
}

/// Outer product `u (m) ⊗ v (n) → (m×n)`.
pub fn outer(u: &Tensor, v: &Tensor) -> Tensor {
    let (m, n) = (u.numel(), v.numel());
    let mut out = Tensor::zeros([m, n]);
    let od = out.as_mut_slice();
    for (i, &uv) in u.as_slice().iter().enumerate() {
        for (j, &vv) in v.as_slice().iter().enumerate() {
            od[i * n + j] = uv * vv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                out.set(&[i, j], s);
            }
        }
        out
    }

    #[test]
    fn dot_matches_scalar_kernel() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for n in [0usize, 1, 3, 7, 8, 9, 31, 32, 33, 100, 1023] {
            let a: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
            let b: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
            let fast = dot(&a, &b);
            let scalar = dot_scalar(&a, &b);
            let scale = 1.0f32.max(scalar.abs());
            assert!(
                (fast - scalar).abs() / scale < 1e-5,
                "n={n}: dot {fast} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn dot4_matches_four_dots() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for n in [0usize, 3, 15, 16, 17, 63, 64, 65, 200, 1031] {
            let w: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
            let ts: Vec<Vec<f32>> = (0..4)
                .map(|_| (0..n).map(|_| rng.gen::<f32>() - 0.5).collect())
                .collect();
            let got = dot4(&w, &ts[0], &ts[1], &ts[2], &ts[3]);
            for j in 0..4 {
                let want = dot_scalar(&w, &ts[j]);
                let scale = 1.0f32.max(want.abs());
                assert!(
                    (got[j] - want).abs() / scale < 1e-5,
                    "n={n} j={j}: dot4 {} vs scalar {want}",
                    got[j]
                );
            }
        }
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([5, 9], &mut rng);
        let fast = matmul(&a, &b);
        let slow = naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn transb_and_transa_agree_with_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Tensor::randn([4, 6], &mut rng);
        let b = Tensor::randn([3, 6], &mut rng);
        let viaexp = matmul(&a, &b.transpose2());
        let direct = matmul_transb(&a, &b);
        assert!(viaexp.max_abs_diff(&direct) < 1e-5);

        let c = Tensor::randn([6, 4], &mut rng);
        let d = Tensor::randn([6, 3], &mut rng);
        let viaexp = matmul(&c.transpose2(), &d);
        let direct = matmul_transa(&c, &d);
        assert!(viaexp.max_abs_diff(&direct) < 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Tensor::randn([4, 6], &mut rng);
        let v = Tensor::randn([6], &mut rng);
        let got = matvec(&a, &v);
        let want = matmul(&a, &v.clone().reshape([6, 1])).reshape([4]);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn outer_product() {
        let u = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], [3]);
        let o = outer(&u, &v);
        assert_eq!(o.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Tensor::randn([5, 5], &mut rng);
        let i = Tensor::eye(5);
        assert!(matmul(&a, &i).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&i, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        matmul(&a, &b);
    }
}

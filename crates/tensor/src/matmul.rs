//! Cache-friendly matrix multiplication kernels.
//!
//! The whole TimeCSL stack funnels its heavy arithmetic through these three
//! kernels (plain product, `A·Bᵀ`, and matrix–vector). They use the i-k-j
//! loop order so the innermost loop streams both the output row and the `B`
//! row sequentially — the standard cache-friendly ordering that lets LLVM
//! auto-vectorize the accumulation.

use crate::tensor::Tensor;

/// `A (m×k) · B (k×n) → (m×n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul inner dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Dot product with eight independent accumulators so LLVM can vectorize
/// the reduction (a single-accumulator loop has a serial dependency chain
/// that blocks SIMD). This kernel dominates shapelet-transform cost.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let (x, y) = (&a[c * 8..c * 8 + 8], &b[c * 8..c * 8 + 8]);
        for l in 0..8 {
            acc[l] += x[l] * y[l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// `A (m×k) · Bᵀ where B is (n×k) → (m×n)`.
///
/// Both operands are walked row-wise, so this is the preferred kernel when
/// the right factor is naturally stored row-major (e.g. a bank of shapelets
/// or a batch of embeddings whose pairwise similarities we need).
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_transb inner dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            od[i * n + j] = dot(arow, &bd[j * k..(j + 1) * k]);
        }
    }
    out
}

/// `Aᵀ (k×m)ᵀ · B (k×n) → (m×n)` computed without materializing `Aᵀ`.
pub fn matmul_transa(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_transa inner dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `A (m×k) · v (k) → (m)`.
pub fn matvec(a: &Tensor, v: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(
        v.numel(),
        k,
        "matvec dimension mismatch: {} vs {k}",
        v.numel()
    );
    let mut out = Tensor::zeros([m]);
    let (ad, vd) = (a.as_slice(), v.as_slice());
    let od = out.as_mut_slice();
    for i in 0..m {
        od[i] = dot(&ad[i * k..(i + 1) * k], vd);
    }
    out
}

/// Outer product `u (m) ⊗ v (n) → (m×n)`.
pub fn outer(u: &Tensor, v: &Tensor) -> Tensor {
    let (m, n) = (u.numel(), v.numel());
    let mut out = Tensor::zeros([m, n]);
    let od = out.as_mut_slice();
    for (i, &uv) in u.as_slice().iter().enumerate() {
        for (j, &vv) in v.as_slice().iter().enumerate() {
            od[i * n + j] = uv * vv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at2(i, p) * b.at2(p, j);
                }
                out.set(&[i, j], s);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([5, 9], &mut rng);
        let fast = matmul(&a, &b);
        let slow = naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn transb_and_transa_agree_with_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Tensor::randn([4, 6], &mut rng);
        let b = Tensor::randn([3, 6], &mut rng);
        let viaexp = matmul(&a, &b.transpose2());
        let direct = matmul_transb(&a, &b);
        assert!(viaexp.max_abs_diff(&direct) < 1e-5);

        let c = Tensor::randn([6, 4], &mut rng);
        let d = Tensor::randn([6, 3], &mut rng);
        let viaexp = matmul(&c.transpose2(), &d);
        let direct = matmul_transa(&c, &d);
        assert!(viaexp.max_abs_diff(&direct) < 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Tensor::randn([4, 6], &mut rng);
        let v = Tensor::randn([6], &mut rng);
        let got = matvec(&a, &v);
        let want = matmul(&a, &v.clone().reshape([6, 1])).reshape([4]);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn outer_product() {
        let u = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], [3]);
        let o = outer(&u, &v);
        assert_eq!(o.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Tensor::randn([5, 5], &mut rng);
        let i = Tensor::eye(5);
        assert!(matmul(&a, &i).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&i, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        matmul(&a, &b);
    }
}

//! The dense row-major `f32` tensor and its elementwise algebra.

use crate::shape::Shape;
use rand::Rng;
use std::fmt;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is the value type threaded through the whole TimeCSL stack:
/// datasets hand series to the shapelet transformer as tensors, the autodiff
/// graph stores node values and gradients as tensors, and analyzers consume
/// feature matrices as rank-2 tensors.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Builds a tensor from a flat row-major buffer. Panics if the buffer
    /// length does not equal `shape.numel()`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer of length {} cannot be viewed as shape {}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor of the given shape.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Tensor whose flat elements are produced by `f(flat_index)`.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(&mut f).collect();
        Tensor { data, shape }
    }

    /// Standard-normal random tensor.
    pub fn randn(shape: impl Into<Shape>, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| crate::rng::gauss(rng)).collect();
        Tensor { data, shape }
    }

    /// Uniform random tensor on `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape }
    }

    /// Evenly spaced values `start, start+step, ...` of length `n` as a vector.
    pub fn arange(start: f32, step: f32, n: usize) -> Self {
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor {
            data,
            shape: Shape::from([n]),
        }
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Extent along `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Number of rows of a rank-2 tensor.
    pub fn rows(&self) -> usize {
        assert_eq!(
            self.rank(),
            2,
            "rows() requires a rank-2 tensor, got {}",
            self.shape
        );
        self.shape.dim(0)
    }

    /// Number of columns of a rank-2 tensor.
    pub fn cols(&self) -> usize {
        assert_eq!(
            self.rank(),
            2,
            "cols() requires a rank-2 tensor, got {}",
            self.shape
        );
        self.shape.dim(1)
    }

    /// Flat immutable view of the buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Element `(i, j)` of a rank-2 tensor (bounds-checked via shape).
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape.dim(1) + j]
    }

    /// The single value of a scalar or one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires exactly one element, shape is {}",
            self.shape
        );
        self.data[0]
    }

    /// Immutable view of row `i` of a rank-2 tensor.
    pub fn row(&self, i: usize) -> &[f32] {
        let c = self.cols();
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable view of row `i` of a rank-2 tensor.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[i * c..(i + 1) * c]
    }

    // ------------------------------------------------------------- reshapes

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            self.numel(),
            shape.numel(),
            "cannot reshape {} ({} elements) to {} ({} elements)",
            self.shape,
            self.numel(),
            shape,
            shape.numel()
        );
        self.shape = shape;
        self
    }

    /// Transpose of a rank-2 tensor (copies).
    pub fn transpose2(&self) -> Self {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor (one row
    /// per input).
    pub fn stack_rows(rows: &[Tensor]) -> Self {
        assert!(!rows.is_empty(), "stack_rows needs at least one row");
        let width = rows[0].numel();
        let mut data = Vec::with_capacity(rows.len() * width);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.numel(),
                width,
                "row {i} has {} elements, expected {width}",
                r.numel()
            );
            data.extend_from_slice(r.as_slice());
        }
        Tensor::from_vec(data, [rows.len(), width])
    }

    /// Concatenates rank-2 tensors with equal column counts along axis 0.
    pub fn concat_rows(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty());
        let cols = parts[0].cols();
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols(), cols, "column mismatch in concat_rows");
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(data, [rows, cols])
    }

    /// Concatenates rank-2 tensors with equal row counts along axis 1.
    pub fn concat_cols(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty());
        let rows = parts[0].rows();
        let cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Tensor::zeros([rows, cols]);
        let mut col_off = 0;
        for p in parts {
            assert_eq!(p.rows(), rows, "row mismatch in concat_cols");
            let pc = p.cols();
            for i in 0..rows {
                out.data[i * cols + col_off..i * cols + col_off + pc].copy_from_slice(p.row(i));
            }
            col_off += pc;
        }
        out
    }

    // ----------------------------------------------------------- elementwise

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise product.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a / b)
    }

    /// `self + alpha * other`, in place (the axpy of BLAS).
    pub fn add_scaled_inplace(&mut self, other: &Tensor, alpha: f32) {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch in add_scaled_inplace"
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|x| -x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Self {
        self.map(f32::sqrt)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Self {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// Elementwise square.
    pub fn square(&self) -> Self {
        self.map(|x| x * x)
    }

    /// Clamps every element to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Adds a length-`cols` vector to every row of a rank-2 tensor.
    pub fn add_row_vector(&self, v: &Tensor) -> Self {
        let (r, c) = (self.rows(), self.cols());
        assert_eq!(
            v.numel(),
            c,
            "row vector length {} != cols {}",
            v.numel(),
            c
        );
        let mut out = self.clone();
        for i in 0..r {
            for j in 0..c {
                out.data[i * c + j] += v.data[j];
            }
        }
        out
    }

    /// Adds a length-`rows` vector to every column of a rank-2 tensor.
    pub fn add_col_vector(&self, v: &Tensor) -> Self {
        let (r, c) = (self.rows(), self.cols());
        assert_eq!(
            v.numel(),
            r,
            "col vector length {} != rows {}",
            v.numel(),
            r
        );
        let mut out = self.clone();
        for i in 0..r {
            for j in 0..c {
                out.data[i * c + j] += v.data[i];
            }
        }
        out
    }

    /// Squared L2 norm of the whole buffer.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 norm of the whole buffer.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert!(self.shape.same_as(&other.shape), "shape mismatch in dot");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// True iff every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference against another same-shape tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{}, {}, ... {} elements])",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.at2(0, 1), 2.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "cannot be viewed")]
    fn from_vec_bad_shape_panics() {
        Tensor::from_vec(vec![1.0; 5], [2, 3]);
    }

    #[test]
    fn eye_and_arange() {
        let i = Tensor::eye(3);
        assert_eq!(i.at2(0, 0), 1.0);
        assert_eq!(i.at2(0, 1), 0.0);
        let a = Tensor::arange(0.0, 0.5, 4);
        assert_eq!(a.as_slice(), &[0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn elementwise_algebra() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], [2]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(b.div(&a).as_slice(), &[3.0, 2.5]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.square().as_slice(), &[1.0, 4.0]);
        assert_eq!(a.dot(&b), 13.0);
    }

    #[test]
    fn add_scaled_inplace_is_axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], [2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], [2]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let tt = t.transpose2();
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.at2(2, 1), t.at2(1, 2));
        assert_eq!(tt.transpose2(), t);
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [2]);
        let m = Tensor::stack_rows(&[a, b]);
        assert_eq!(m.shape().dims(), &[2, 2]);

        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let y = Tensor::from_vec(vec![5.0, 6.0], [1, 2]);
        let cat = Tensor::concat_rows(&[&x, &y]);
        assert_eq!(cat.shape().dims(), &[3, 2]);
        assert_eq!(cat.row(2), &[5.0, 6.0]);

        let z = Tensor::from_vec(vec![9.0, 8.0], [2, 1]);
        let side = Tensor::concat_cols(&[&x, &z]);
        assert_eq!(side.shape().dims(), &[2, 3]);
        assert_eq!(side.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(side.row(1), &[3.0, 4.0, 8.0]);
    }

    #[test]
    fn row_col_vector_broadcast() {
        let m = Tensor::zeros([2, 3]);
        let rv = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let out = m.add_row_vector(&rv);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);

        let cv = Tensor::from_vec(vec![10.0, 20.0], [2]);
        let out = m.add_col_vector(&cv);
        assert_eq!(out.row(0), &[10.0, 10.0, 10.0]);
        assert_eq!(out.row(1), &[20.0, 20.0, 20.0]);
    }

    #[test]
    fn random_tensors_are_seedable() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        let a = Tensor::randn([4, 4], &mut r1);
        let b = Tensor::randn([4, 4], &mut r2);
        assert_eq!(a, b);
        assert!(a.all_finite());
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![3.0, 4.0], [2]);
        assert_eq!(t.norm_sq(), 25.0);
        assert_eq!(t.norm(), 5.0);
    }
}

//! Data parallelism over index-owned work, on a persistent pool.
//!
//! The batch shapelet transform, the training fan-out, the pairwise-distance
//! engine and the IVF index all map an independent function over many items
//! (series, pairs, row blocks). [`parallel_map`] and [`parallel_chunks_mut`]
//! cover that. Since the persistent-pool refactor they dispatch to the
//! process-wide parked-worker pool in [`crate::pool`] instead of spawning
//! fresh OS threads per call; the per-call `std::thread::scope`
//! implementation survives in [`scoped`] as the benchable reference the
//! pool is measured against (`TCSL_POOL=scoped` routes to it in-process).
//!
//! Determinism contract (unchanged from the scoped era): output ownership
//! is a function of the item/chunk index alone — `parallel_map` writes
//! result `i` into slot `i`, `parallel_chunks_mut` hands chunk `c` exactly
//! the range `buf[c·chunk_len ..]` — so results are bit-identical for any
//! `TCSL_THREADS` setting and either pool mode.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool;

/// Number of worker threads to use: `available_parallelism` capped at the
/// item count (and at least 1).
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(items).max(1)
}

/// Worker count after applying the `TCSL_THREADS` environment override.
///
/// When `TCSL_THREADS` is set to a positive integer, that many workers are
/// used (capped at the item count, *not* at the hardware parallelism — an
/// oversubscribed setting still exercises the multi-threaded code path,
/// which CI uses to cover cross-thread determinism on small runners).
/// Unset, empty, `0`, or unparsable values fall back to
/// [`default_threads`]. The variable is re-read on every call — it caps how
/// many parked pool workers a dispatch wakes, so tests and benchmarks can
/// flip between serial and parallel execution in-process without touching
/// the pool itself.
pub fn configured_threads(items: usize) -> usize {
    threads_from_override(std::env::var("TCSL_THREADS").ok().as_deref(), items)
}

/// Pure parsing core of [`configured_threads`], split out so tests can
/// exercise the override logic without `std::env::set_var` — mutating the
/// process environment would race with concurrent tests in the same binary
/// that read `TCSL_THREADS` through [`configured_threads`].
fn threads_from_override(raw: Option<&str>, items: usize) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(items).max(1),
        _ => default_threads(items),
    }
}

/// Whether `TCSL_POOL=scoped` routes dispatches to the per-call
/// scoped-spawn reference implementation. Re-read per call, like
/// `TCSL_THREADS`, so benchmarks can compare both modes in-process.
fn scoped_mode() -> bool {
    scoped_from_override(std::env::var("TCSL_POOL").ok().as_deref())
}

/// Pure parsing core of [`scoped_mode`].
fn scoped_from_override(raw: Option<&str>) -> bool {
    matches!(raw.map(str::trim), Some("scoped"))
}

/// Maps `f` over `0..n` on multiple threads, returning results in index
/// order. `f` must be `Sync` (it is shared by reference across workers).
///
/// Work is claimed dynamically in small blocks via an atomic cursor, so
/// uneven per-item cost (e.g. variable-length series) balances well; the
/// result still lands in slot `i` whatever thread computed it.
///
/// A panicking `f` re-raises on the calling thread after the dispatch has
/// drained — and the pool stays usable for the next call.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(configured_threads(n.max(1)), n, f)
}

/// [`parallel_map`] with an explicit worker count instead of the
/// `TCSL_THREADS` override — the env-free entry point tests and callers
/// that already resolved a thread count use.
pub fn parallel_map_with<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    // Nested parallel sections (a body that itself calls parallel_*) run
    // serially: the pool has one job slot, and index-owned outputs make
    // the serial result bit-identical anyway.
    if threads <= 1 || n == 1 || pool::in_parallel_region() {
        return (0..n).map(f).collect();
    }
    if scoped_mode() {
        return scoped::parallel_map_with(threads, n, f);
    }

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let block = (n / (threads * 4)).max(1);

    // Hand each execution context a disjoint set of &mut slots via raw
    // pointer + index discipline: every index is claimed exactly once from
    // the atomic cursor. Accessed through a method so the closure captures
    // the `Sync` wrapper, not the raw pointer field (2021 disjoint capture
    // would otherwise grab the non-`Sync` pointer itself).
    struct Slots<T>(*mut Option<T>);
    unsafe impl<T: Send> Sync for Slots<T> {}
    impl<T> Slots<T> {
        fn ptr(&self) -> *mut Option<T> {
            self.0
        }
    }
    let slots = Slots(out.as_mut_ptr());

    let body = || {
        loop {
            let start = cursor.fetch_add(block, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + block).min(n);
            for i in start..end {
                let v = f(i);
                // SAFETY: `i` is claimed exactly once across all contexts
                // (fetch_add hands out disjoint ranges), so no two threads
                // ever write the same slot, and `out` outlives the
                // dispatch (dispatch blocks until every worker finished).
                unsafe { *slots.ptr().add(i) = Some(v) };
            }
        }
    };
    // The caller participates, so `threads` contexts need `threads - 1`
    // pool workers.
    pool::dispatch(threads - 1, &body);

    out.into_iter()
        .map(|v| v.expect("parallel_map: worker failed to fill slot"))
        .collect()
}

/// Applies `f` in parallel to disjoint contiguous chunks of `buf`, each
/// `chunk_len` elements (the last may be shorter). Chunk `c` always covers
/// `buf[c·chunk_len .. (c+1)·chunk_len]` regardless of the worker count, so
/// output ownership is a function of the index alone and results are
/// bit-identical for any `TCSL_THREADS` setting. This is the in-place
/// sibling of [`parallel_map`] for kernels that fill one large buffer
/// (e.g. the pairwise-distance engine) without a gather copy.
pub fn parallel_chunks_mut<T, F>(buf: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = buf.len().div_ceil(chunk_len);
    parallel_chunks_mut_with(configured_threads(n_chunks.max(1)), buf, chunk_len, f)
}

/// [`parallel_chunks_mut`] with an explicit worker count instead of the
/// `TCSL_THREADS` override.
pub fn parallel_chunks_mut_with<T, F>(threads: usize, buf: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if buf.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = buf.len();
    let n_chunks = len.div_ceil(chunk_len);
    if threads <= 1 || n_chunks == 1 || pool::in_parallel_region() {
        for (c, chunk) in buf.chunks_mut(chunk_len).enumerate() {
            f(c, chunk);
        }
        return;
    }
    if scoped_mode() {
        return scoped::parallel_chunks_mut_with(threads, buf, chunk_len, f);
    }

    // Same raw-pointer + index discipline as `parallel_map`: every chunk
    // index is claimed exactly once from the atomic cursor, and distinct
    // indices map to disjoint ranges of `buf`. Method access keeps the
    // closure capturing the `Sync` wrapper (see `Slots` above).
    struct Base<T>(*mut T);
    unsafe impl<T: Send> Sync for Base<T> {}
    impl<T> Base<T> {
        fn ptr(&self) -> *mut T {
            self.0
        }
    }
    let base = Base(buf.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let body = || {
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: `c` is claimed exactly once across all contexts and
            // chunk ranges are pairwise disjoint; `buf` outlives the
            // dispatch.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
            f(c, chunk);
        }
    };
    pool::dispatch(threads - 1, &body);
}

/// The pre-pool implementations: one `std::thread::scope` spawn per call.
///
/// Kept as the measurement baseline for the persistent pool (the
/// `TCSL_POOL=scoped` escape hatch and the spawn-overhead legs of
/// `bench_pretrain`/`bench_analyze` route here) — not as a recommended
/// path. Results are bit-identical to the pooled path for any thread
/// count: both sides share the index-owned output discipline; only *who*
/// executes a claim differs, never *where its result lands*.
pub mod scoped {
    use super::*;

    /// Per-call scoped-spawn [`parallel_map`](super::parallel_map).
    pub fn parallel_map_with<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if threads <= 1 || n == 1 {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let cursor = AtomicUsize::new(0);
        let block = (n / (threads * 4)).max(1);
        struct Slots<T>(*mut Option<T>);
        unsafe impl<T: Send> Sync for Slots<T> {}
        let slots = Slots(out.as_mut_ptr());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let f = &f;
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || {
                    // Freshly spawned per call: worker lifetime == dispatch
                    // lifetime here, unlike the pool's per-dispatch spans.
                    let _w = tcsl_obs::spans::span("parallel_scoped.worker");
                    loop {
                        let start = cursor.fetch_add(block, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + block).min(n);
                        for i in start..end {
                            let v = f(i);
                            // SAFETY: `i` is claimed exactly once across all
                            // workers; `out` outlives the scope.
                            unsafe { *slots.0.add(i) = Some(v) };
                        }
                    }
                });
            }
        });
        out.into_iter()
            .map(|v| v.expect("parallel_map: worker failed to fill slot"))
            .collect()
    }

    /// Per-call scoped-spawn
    /// [`parallel_chunks_mut`](super::parallel_chunks_mut).
    pub fn parallel_chunks_mut_with<T, F>(threads: usize, buf: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if buf.is_empty() {
            return;
        }
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = buf.len();
        let n_chunks = len.div_ceil(chunk_len);
        if threads <= 1 || n_chunks == 1 {
            for (c, chunk) in buf.chunks_mut(chunk_len).enumerate() {
                f(c, chunk);
            }
            return;
        }
        struct Base<T>(*mut T);
        unsafe impl<T: Send> Sync for Base<T> {}
        let base = Base(buf.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let f = &f;
                let cursor = &cursor;
                let base = &base;
                scope.spawn(move || {
                    let _w = tcsl_obs::spans::span("parallel_scoped.worker");
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let start = c * chunk_len;
                        let end = (start + chunk_len).min(len);
                        // SAFETY: `c` is claimed exactly once across all
                        // workers and chunk ranges are pairwise disjoint;
                        // `buf` outlives the scope.
                        let chunk = unsafe {
                            std::slice::from_raw_parts_mut(base.0.add(start), end - start)
                        };
                        f(c, chunk);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let got = parallel_map(100, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn pooled_map_matches_serial_at_any_thread_count() {
        // Explicit thread counts exercise the pool without touching the
        // process environment (set_var would race with concurrent tests).
        let want: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [2, 3, 7, 16] {
            let got = parallel_map_with(threads, 257, |i| i * 3 + 1);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete correctly.
        let got = parallel_map_with(4, 64, |i| {
            let mut acc = 0u64;
            for k in 0..(i * 1000) as u64 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (idx, _)) in got.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn chunks_mut_fills_every_chunk_with_its_index() {
        let mut buf = vec![usize::MAX; 103]; // deliberately not a multiple of 10
        parallel_chunks_mut(&mut buf, 10, |c, chunk| {
            assert!(chunk.len() == 10 || (c == 10 && chunk.len() == 3));
            chunk.fill(c);
        });
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, i / 10);
        }
    }

    #[test]
    fn pooled_chunks_match_serial_at_any_thread_count() {
        let mut want = vec![0usize; 509];
        parallel_chunks_mut_with(1, &mut want, 16, |c, chunk| {
            for (o, v) in chunk.iter_mut().enumerate() {
                *v = c * 1000 + o;
            }
        });
        for threads in [2, 5, 11] {
            let mut got = vec![usize::MAX; 509];
            parallel_chunks_mut_with(threads, &mut got, 16, |c, chunk| {
                for (o, v) in chunk.iter_mut().enumerate() {
                    *v = c * 1000 + o;
                }
            });
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn chunks_mut_handles_empty_and_single_chunk() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut empty, 4, |_, _| panic!("no chunks expected"));
        let mut one = vec![0u8; 3];
        parallel_chunks_mut(&mut one, 8, |c, chunk| {
            assert_eq!(c, 0);
            chunk.fill(7);
        });
        assert_eq!(one, vec![7, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "chunk_len")]
    fn chunks_mut_rejects_zero_chunk_len() {
        parallel_chunks_mut(&mut [0u8; 2], 0, |_, _| {});
    }

    #[test]
    fn nested_parallel_sections_run_serially_without_deadlock() {
        // A pooled body that itself calls parallel_map must not wait on the
        // pool's single job slot — the inner call detects the region flag
        // and runs inline, producing the same index-owned results.
        let got = parallel_map_with(4, 8, |i| {
            let inner = parallel_map_with(4, 5, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..8)
            .map(|i| (0..5).map(|j| i * 10 + j).sum::<usize>())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn scoped_reference_path_matches_pooled_results() {
        let want: Vec<usize> = (0..100).map(|i| i ^ 0x5a).collect();
        assert_eq!(scoped::parallel_map_with(4, 100, |i| i ^ 0x5a), want);
        let mut pooled = vec![0u32; 100];
        let mut scoped_buf = vec![0u32; 100];
        parallel_chunks_mut_with(4, &mut pooled, 7, |c, chunk| {
            chunk.fill(c as u32);
        });
        scoped::parallel_chunks_mut_with(4, &mut scoped_buf, 7, |c, chunk| {
            chunk.fill(c as u32);
        });
        assert_eq!(pooled, scoped_buf);
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1) == 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    fn env_override_controls_thread_count() {
        // Exercised through the pure parsing core rather than
        // std::env::set_var: mutating the process-global variable here
        // would race with the other tests in this binary that read it
        // concurrently through configured_threads. End-to-end routing of
        // the real variable is covered by the CI legs that set
        // TCSL_THREADS before the test process starts.
        assert_eq!(threads_from_override(Some("3"), 100), 3);
        // Capped at the item count; whitespace is trimmed before parsing.
        assert_eq!(threads_from_override(Some("3"), 2), 2);
        assert_eq!(threads_from_override(Some(" 3 "), 100), 3);
        // Oversubscription beyond the hardware is allowed on purpose.
        assert_eq!(threads_from_override(Some("3"), 1000), 3);
        // Unset, zero, and unparsable all fall back to the default.
        assert_eq!(threads_from_override(Some("0"), 100), default_threads(100));
        assert_eq!(
            threads_from_override(Some("garbage"), 100),
            default_threads(100)
        );
        assert_eq!(threads_from_override(None, 100), default_threads(100));
        assert_eq!(
            configured_threads(100),
            threads_from_override(std::env::var("TCSL_THREADS").ok().as_deref(), 100)
        );
    }

    #[test]
    fn pool_mode_override_parses() {
        assert!(scoped_from_override(Some("scoped")));
        assert!(scoped_from_override(Some(" scoped ")));
        assert!(!scoped_from_override(Some("persistent")));
        assert!(!scoped_from_override(Some("")));
        assert!(!scoped_from_override(None));
        assert_eq!(
            scoped_mode(),
            scoped_from_override(std::env::var("TCSL_POOL").ok().as_deref())
        );
    }
}

//! Minimal scoped-thread data parallelism.
//!
//! The batch shapelet transform and the experiment harnesses map an
//! independent function over many items (series, datasets, parameter
//! settings). `parallel_map` covers that with `std::thread::scope` — no
//! external thread-pool dependency, work split into contiguous chunks, and
//! results returned in input order.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: `available_parallelism` capped at the
/// item count (and at least 1).
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(items).max(1)
}

/// Worker count after applying the `TCSL_THREADS` environment override.
///
/// When `TCSL_THREADS` is set to a positive integer, that many workers are
/// used (capped at the item count, *not* at the hardware parallelism — an
/// oversubscribed setting still exercises the multi-threaded code path,
/// which CI uses to cover cross-thread determinism on small runners).
/// Unset, empty, `0`, or unparsable values fall back to
/// [`default_threads`]. The variable is re-read on every call so tests and
/// benchmarks can flip between serial and parallel execution in-process.
pub fn configured_threads(items: usize) -> usize {
    match std::env::var("TCSL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n.min(items).max(1),
        _ => default_threads(items),
    }
}

/// Maps `f` over `0..n` on multiple threads, returning results in index
/// order. `f` must be `Sync` (it is shared by reference across workers).
///
/// Work is claimed dynamically in small blocks via an atomic cursor, so
/// uneven per-item cost (e.g. variable-length series) balances well.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = configured_threads(n);
    if threads <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let block = (n / (threads * 4)).max(1);

    // Hand each worker a disjoint set of &mut slots via raw pointer + index
    // discipline: every index is claimed exactly once from the atomic cursor.
    struct Slots<T>(*mut Option<T>);
    unsafe impl<T: Send> Sync for Slots<T> {}
    let slots = Slots(out.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let cursor = &cursor;
            let slots = &slots;
            scope.spawn(move || loop {
                let start = cursor.fetch_add(block, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + block).min(n);
                for i in start..end {
                    let v = f(i);
                    // SAFETY: `i` is claimed exactly once across all workers
                    // (fetch_add hands out disjoint ranges), so no two threads
                    // ever write the same slot, and `out` outlives the scope.
                    unsafe { *slots.0.add(i) = Some(v) };
                }
            });
        }
    });

    out.into_iter()
        .map(|v| v.expect("parallel_map: worker failed to fill slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let got = parallel_map(100, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete correctly.
        let got = parallel_map(64, |i| {
            let mut acc = 0u64;
            for k in 0..(i * 1000) as u64 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (idx, _)) in got.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1) == 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    fn env_override_controls_thread_count() {
        // Results of parallel_map never depend on the thread count, so a
        // transiently visible override cannot perturb concurrent tests.
        std::env::set_var("TCSL_THREADS", "3");
        assert_eq!(configured_threads(100), 3);
        assert_eq!(configured_threads(2), 2); // capped at item count
                                              // Oversubscription beyond the hardware is allowed on purpose.
        assert_eq!(configured_threads(1000), 3);
        let got = parallel_map(50, |i| i * 2);
        assert_eq!(got, (0..50).map(|i| i * 2).collect::<Vec<_>>());

        std::env::set_var("TCSL_THREADS", "0");
        assert_eq!(configured_threads(100), default_threads(100));
        std::env::set_var("TCSL_THREADS", "garbage");
        assert_eq!(configured_threads(100), default_threads(100));
        std::env::remove_var("TCSL_THREADS");
        assert_eq!(configured_threads(100), default_threads(100));
    }
}

//! Minimal scoped-thread data parallelism.
//!
//! The batch shapelet transform and the experiment harnesses map an
//! independent function over many items (series, datasets, parameter
//! settings). `parallel_map` covers that with `std::thread::scope` — no
//! external thread-pool dependency, work split into contiguous chunks, and
//! results returned in input order.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: `available_parallelism` capped at the
/// item count (and at least 1).
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(items).max(1)
}

/// Worker count after applying the `TCSL_THREADS` environment override.
///
/// When `TCSL_THREADS` is set to a positive integer, that many workers are
/// used (capped at the item count, *not* at the hardware parallelism — an
/// oversubscribed setting still exercises the multi-threaded code path,
/// which CI uses to cover cross-thread determinism on small runners).
/// Unset, empty, `0`, or unparsable values fall back to
/// [`default_threads`]. The variable is re-read on every call so tests and
/// benchmarks can flip between serial and parallel execution in-process.
pub fn configured_threads(items: usize) -> usize {
    threads_from_override(std::env::var("TCSL_THREADS").ok().as_deref(), items)
}

/// Pure parsing core of [`configured_threads`], split out so tests can
/// exercise the override logic without `std::env::set_var` — mutating the
/// process environment would race with concurrent tests in the same binary
/// that read `TCSL_THREADS` through [`configured_threads`].
fn threads_from_override(raw: Option<&str>, items: usize) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(items).max(1),
        _ => default_threads(items),
    }
}

/// Maps `f` over `0..n` on multiple threads, returning results in index
/// order. `f` must be `Sync` (it is shared by reference across workers).
///
/// Work is claimed dynamically in small blocks via an atomic cursor, so
/// uneven per-item cost (e.g. variable-length series) balances well.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = configured_threads(n);
    tcsl_obs::counters::PARALLEL_THREADS.set(threads as u64);
    if threads <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let block = (n / (threads * 4)).max(1);

    // Hand each worker a disjoint set of &mut slots via raw pointer + index
    // discipline: every index is claimed exactly once from the atomic cursor.
    struct Slots<T>(*mut Option<T>);
    unsafe impl<T: Send> Sync for Slots<T> {}
    let slots = Slots(out.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let cursor = &cursor;
            let slots = &slots;
            scope.spawn(move || {
                // Workers start with a fresh span stack, so this aggregates
                // under its own path: per-worker lifetime timings (count =
                // workers, min/max = fastest/slowest worker). Timings are
                // wall-clock — excluded from the determinism contract.
                let _w = tcsl_obs::spans::span("parallel_map.worker");
                loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + block).min(n);
                    for i in start..end {
                        let v = f(i);
                        // SAFETY: `i` is claimed exactly once across all
                        // workers (fetch_add hands out disjoint ranges), so no
                        // two threads ever write the same slot, and `out`
                        // outlives the scope.
                        unsafe { *slots.0.add(i) = Some(v) };
                    }
                }
            });
        }
    });

    out.into_iter()
        .map(|v| v.expect("parallel_map: worker failed to fill slot"))
        .collect()
}

/// Applies `f` in parallel to disjoint contiguous chunks of `buf`, each
/// `chunk_len` elements (the last may be shorter). Chunk `c` always covers
/// `buf[c·chunk_len .. (c+1)·chunk_len]` regardless of the worker count, so
/// output ownership is a function of the index alone and results are
/// bit-identical for any `TCSL_THREADS` setting. This is the in-place
/// sibling of [`parallel_map`] for kernels that fill one large buffer
/// (e.g. the pairwise-distance engine) without a gather copy.
pub fn parallel_chunks_mut<T, F>(buf: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if buf.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = buf.len();
    let n_chunks = len.div_ceil(chunk_len);
    let threads = configured_threads(n_chunks);
    tcsl_obs::counters::PARALLEL_THREADS.set(threads as u64);
    if threads <= 1 || n_chunks == 1 {
        for (c, chunk) in buf.chunks_mut(chunk_len).enumerate() {
            f(c, chunk);
        }
        return;
    }

    // Same raw-pointer + index discipline as `parallel_map`: every chunk
    // index is claimed exactly once from the atomic cursor, and distinct
    // indices map to disjoint ranges of `buf`.
    struct Base<T>(*mut T);
    unsafe impl<T: Send> Sync for Base<T> {}
    let base = Base(buf.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let cursor = &cursor;
            let base = &base;
            scope.spawn(move || {
                // See parallel_map: per-worker lifetime span, own path.
                let _w = tcsl_obs::spans::span("parallel_chunks_mut.worker");
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * chunk_len;
                    let end = (start + chunk_len).min(len);
                    // SAFETY: `c` is claimed exactly once across all workers
                    // and chunk ranges are pairwise disjoint; `buf` outlives
                    // the scope.
                    let chunk =
                        unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
                    f(c, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let got = parallel_map(100, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete correctly.
        let got = parallel_map(64, |i| {
            let mut acc = 0u64;
            for k in 0..(i * 1000) as u64 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (idx, _)) in got.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn chunks_mut_fills_every_chunk_with_its_index() {
        let mut buf = vec![usize::MAX; 103]; // deliberately not a multiple of 10
        parallel_chunks_mut(&mut buf, 10, |c, chunk| {
            assert!(chunk.len() == 10 || (c == 10 && chunk.len() == 3));
            chunk.fill(c);
        });
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, i / 10);
        }
    }

    #[test]
    fn chunks_mut_handles_empty_and_single_chunk() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut empty, 4, |_, _| panic!("no chunks expected"));
        let mut one = vec![0u8; 3];
        parallel_chunks_mut(&mut one, 8, |c, chunk| {
            assert_eq!(c, 0);
            chunk.fill(7);
        });
        assert_eq!(one, vec![7, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "chunk_len")]
    fn chunks_mut_rejects_zero_chunk_len() {
        parallel_chunks_mut(&mut [0u8; 2], 0, |_, _| {});
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1) == 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    fn env_override_controls_thread_count() {
        // Exercised through the pure parsing core rather than
        // std::env::set_var: mutating the process-global variable here
        // would race with the other tests in this binary that read it
        // concurrently through configured_threads. End-to-end routing of
        // the real variable is covered by the CI legs that set
        // TCSL_THREADS before the test process starts.
        assert_eq!(threads_from_override(Some("3"), 100), 3);
        // Capped at the item count; whitespace is trimmed before parsing.
        assert_eq!(threads_from_override(Some("3"), 2), 2);
        assert_eq!(threads_from_override(Some(" 3 "), 100), 3);
        // Oversubscription beyond the hardware is allowed on purpose.
        assert_eq!(threads_from_override(Some("3"), 1000), 3);
        // Unset, zero, and unparsable all fall back to the default.
        assert_eq!(threads_from_override(Some("0"), 100), default_threads(100));
        assert_eq!(
            threads_from_override(Some("garbage"), 100),
            default_threads(100)
        );
        assert_eq!(threads_from_override(None, 100), default_threads(100));
        assert_eq!(
            configured_threads(100),
            threads_from_override(std::env::var("TCSL_THREADS").ok().as_deref(), 100)
        );
    }
}

#![warn(missing_docs)]

//! # tcsl-tensor
//!
//! Dense `f32` tensor substrate for the TimeCSL workspace.
//!
//! This crate provides the numeric foundation that every other TimeCSL crate
//! builds on: an n-dimensional row-major [`Tensor`], shape/stride arithmetic,
//! cache-friendly matrix multiplication, axis reductions with argument
//! tracking (needed by the min/max-pooling backward pass of the autodiff
//! crate), sliding-window unfolding for time series, descriptive statistics,
//! a blocked pairwise-distance engine for the representation space, and a
//! small data-parallel map running on a persistent process-wide worker
//! pool (`parallel`).
//!
//! Design notes:
//!
//! * Values are `f32` — the same precision the paper's PyTorch stack trains
//!   in. Metrics and evaluation code upcast to `f64` where it matters.
//! * Shape mismatches are programmer errors and panic with a descriptive
//!   message (the convention of `ndarray` and friends); fallible APIs are
//!   reserved for I/O-facing layers.
//! * All randomness is injected via `rand::Rng` so experiments are seedable.

pub mod matmul;
pub mod pairdist;
pub mod parallel;
mod pool;
pub mod quant;
pub mod reduce;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod window;

pub use shape::Shape;
pub use tensor::Tensor;

#[cfg(test)]
mod proptests;

//! Descriptive statistics over slices — the primitives behind dataset
//! normalization, synthetic-data generation and classical feature baselines.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Population variance.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Z-normalizes in place: zero mean, unit variance. Slices with (near-)zero
/// variance are centred only, which keeps constant segments finite.
pub fn znorm_inplace(xs: &mut [f32]) {
    let m = mean(xs);
    let s = std_dev(xs);
    if s > 1e-8 {
        for x in xs.iter_mut() {
            *x = (*x - m) / s;
        }
    } else {
        for x in xs.iter_mut() {
            *x -= m;
        }
    }
}

/// Z-normalized copy of a slice.
pub fn znorm(xs: &[f32]) -> Vec<f32> {
    let mut v = xs.to_vec();
    znorm_inplace(&mut v);
    v
}

/// Exclusive prefix sums of squares in f64: `out[i] = Σ_{j<i} xs[j]²`,
/// `out.len() == xs.len() + 1`. The f64 accumulation keeps the windowed
/// differences `out[b] − out[a]` accurate to f32 round-off even over very
/// long series — this is the O(T) pass behind the O(1)-per-window Euclidean
/// norms of the fused shapelet transform.
pub fn prefix_sq_sums(xs: &[f32]) -> Vec<f64> {
    let mut out = Vec::with_capacity(xs.len() + 1);
    let mut acc = 0.0f64;
    out.push(acc);
    for &x in xs {
        acc += (x as f64) * (x as f64);
        out.push(acc);
    }
    out
}

/// Pearson correlation coefficient of two equal-length slices
/// (0 when either side is constant).
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    let (ma, mb) = (mean(a), mean(b));
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    let den = (da * db).sqrt();
    if den < 1e-12 {
        0.0
    } else {
        num / den
    }
}

/// Skewness (third standardized moment; 0 for constant or empty data).
pub fn skewness(xs: &[f32]) -> f32 {
    let s = std_dev(xs);
    if s < 1e-8 || xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| ((x - m) / s).powi(3)).sum::<f32>() / xs.len() as f32
}

/// Excess kurtosis (fourth standardized moment − 3; 0 for constant data).
pub fn kurtosis(xs: &[f32]) -> f32 {
    let s = std_dev(xs);
    if s < 1e-8 || xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| ((x - m) / s).powi(4)).sum::<f32>() / xs.len() as f32 - 3.0
}

/// Lag-`k` autocorrelation (0 when out of range or constant).
pub fn autocorr(xs: &[f32], k: usize) -> f32 {
    if k >= xs.len() {
        return 0.0;
    }
    let m = mean(xs);
    let var: f32 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    if var < 1e-12 {
        return 0.0;
    }
    let num: f32 = (0..xs.len() - k)
        .map(|i| (xs[i] - m) * (xs[i + k] - m))
        .sum();
    num / var
}

/// `q`-th percentile (linear interpolation, `q ∈ [0, 1]`). Panics on empty
/// input.
pub fn percentile(xs: &[f32], q: f32) -> f32 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "percentile q must be in [0,1], got {q}"
    );
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (v.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f32;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f32]) -> f32 {
    percentile(xs, 0.5)
}

/// Number of mean-crossings in the slice — a cheap shape descriptor used by
/// the classical-feature baseline.
pub fn mean_crossings(xs: &[f32]) -> usize {
    if xs.len() < 2 {
        return 0;
    }
    let m = mean(xs);
    xs.windows(2)
        .filter(|w| (w[0] - m) * (w[1] - m) < 0.0)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-6);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
    }

    #[test]
    fn znorm_properties() {
        let mut xs = vec![2.0, 4.0, 6.0, 8.0];
        znorm_inplace(&mut xs);
        assert!(mean(&xs).abs() < 1e-6);
        assert!((std_dev(&xs) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn znorm_constant_centres_without_nan() {
        let mut xs = vec![5.0; 4];
        znorm_inplace(&mut xs);
        assert!(xs.iter().all(|x| x.abs() < 1e-6 && x.is_finite()));
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
        let d = [7.0, 7.0, 7.0];
        assert_eq!(pearson(&a, &d), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn autocorr_of_periodic_signal() {
        let xs: Vec<f32> = (0..64)
            .map(|i| (i as f32 * std::f32::consts::PI / 4.0).sin())
            .collect();
        // Period 8 → lag-8 autocorrelation near +1, lag-4 near −1.
        assert!(autocorr(&xs, 8) > 0.8);
        assert!(autocorr(&xs, 4) < -0.8);
    }

    #[test]
    fn crossings() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(mean_crossings(&xs), 3);
        assert_eq!(mean_crossings(&[1.0]), 0);
    }

    #[test]
    fn prefix_sq_sums_window_differences() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let ps = prefix_sq_sums(&xs);
        assert_eq!(ps.len(), 5);
        assert_eq!(ps[0], 0.0);
        // Window [1, 3) = 2² + 3² = 13.
        assert!((ps[3] - ps[1] - 13.0).abs() < 1e-9);
        assert!((ps[4] - 30.0).abs() < 1e-9);
        assert!(prefix_sq_sums(&[]).len() == 1);
    }

    #[test]
    fn skew_and_kurt_of_symmetric_data() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-6);
        assert!(kurtosis(&xs) < 0.0); // platykurtic uniform-ish sample
    }
}

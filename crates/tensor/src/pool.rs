//! Process-wide persistent worker pool behind [`crate::parallel`].
//!
//! The old `parallel_map`/`parallel_chunks_mut` spawned fresh OS threads via
//! `std::thread::scope` on *every* call — a per-dispatch spawn/teardown tax
//! paid by every batch of training, every pairdist tile pass and every IVF
//! probe. This module replaces that with one lazily-initialized pool of
//! parked workers shared by the whole process:
//!
//! * **Lazy growth.** No threads exist until the first dispatch that wants
//!   more than one execution context. A dispatch that asks for `h` helpers
//!   grows the pool to `h` workers and reuses them forever after; the pool
//!   never shrinks. `TCSL_THREADS` stays a *per-dispatch* cap — it is
//!   re-read by the caller on every `parallel_*` call and only bounds how
//!   many parked workers are woken, so tests and benchmarks can flip
//!   between serial and parallel execution in-process.
//! * **Determinism is the caller's contract, not the pool's.** The pool
//!   only runs an opaque body on `1 + helpers` threads (the dispatching
//!   caller participates). Output ownership in `parallel_map` /
//!   `parallel_chunks_mut` is a function of the item index alone, so
//!   results are bit-identical for any worker count — the pool adds no
//!   scheduling state of its own that could leak into results.
//! * **Panic containment.** A panicking task unwinds the worker's
//!   `catch_unwind` fence, is recorded as the dispatch's failure payload,
//!   and is re-raised on the calling thread after every engaged worker has
//!   finished — exactly the `std::thread::scope` semantics — but the worker
//!   thread itself survives and parks again, so the pool stays usable for
//!   the next dispatch. Only the first payload is kept; later ones are
//!   dropped (outside the pool lock).
//! * **Observability.** Each engaged worker opens a per-dispatch span under
//!   its own stable name (`pool.worker.NN` — worker threads have fresh
//!   span stacks, so these aggregate as top-level paths and give per-thread
//!   busy-ns timings); the caller's share runs under `pool.caller` nested
//!   in its current span path. `pool.dispatch` / `pool.wake` count
//!   dispatches and woken workers — both are *schedule-class* counters
//!   (they depend on `TCSL_THREADS`, not on the work), reported separately
//!   from the deterministic counter snapshot. The `parallel.threads` gauge
//!   reports the pool's spawned size, written only when the pool grows —
//!   never from the serial fallback path.
//!
//! **Memory ordering.** All job state (the body pointer, the caller's
//! cursor and output buffers reachable through it) is published to workers
//! and collected back through the one pool mutex: the caller stores the job
//! and bumps the epoch under the lock, workers observe it under the lock,
//! and the caller only returns after observing `remaining == 0` under the
//! lock — so every worker-side write to caller-owned memory
//! happens-before the caller reads it. Work-claiming uses relaxed
//! `fetch_add`, which is sufficient because RMW atomicity alone guarantees
//! each index is handed out exactly once.
//!
//! **Nesting.** A body that calls back into `parallel_*` (from a worker or
//! from the dispatching caller) runs that inner call serially on the
//! current thread: the pool has one job slot, and the chunk-owned-by-index
//! discipline makes the serial inner result bit-identical anyway. The
//! thread-local [`in_parallel_region`] flag is how `parallel_*` detects
//! this.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Lifetime-erased pointer to a dispatch body. The dispatch protocol keeps
/// the referent alive: [`dispatch`] does not return until every engaged
/// worker has finished running it.
#[repr(transparent)]
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn() + Sync));

// SAFETY: the referent is `Sync` (shared by reference across workers) and
// outlives all use per the dispatch protocol above.
unsafe impl Send for Job {}

struct State {
    /// Bumped once per dispatch; a worker that sees a new epoch with its
    /// index below `engaged` picks up the job.
    epoch: u64,
    /// Body of the in-flight dispatch; `None` while the pool is idle.
    job: Option<Job>,
    /// How many workers the in-flight dispatch engages.
    engaged: usize,
    /// Engaged workers that have not yet finished the in-flight dispatch.
    remaining: usize,
    /// First panic payload captured from a worker this dispatch.
    panic: Option<PanicPayload>,
    /// Total workers ever spawned (the pool never shrinks).
    spawned: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Workers park here; notified on every epoch bump.
    work_cv: Condvar,
    /// Callers park here, both to wait out a busy pool and to wait for
    /// their own dispatch to drain.
    done_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            epoch: 0,
            job: None,
            engaged: 0,
            remaining: 0,
            panic: None,
            spawned: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

thread_local! {
    /// True while this thread is executing inside a pool dispatch — either
    /// as a pool worker or as the dispatching caller running its share.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is already inside a parallel region.
/// `parallel_map`/`parallel_chunks_mut` use this to run nested calls
/// serially instead of deadlocking on the single job slot.
pub(crate) fn in_parallel_region() -> bool {
    IN_REGION.with(Cell::get)
}

/// RAII for the thread-local region flag (restores on unwind too).
struct RegionGuard;

impl RegionGuard {
    fn enter() -> RegionGuard {
        IN_REGION.with(|f| f.set(true));
        RegionGuard
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        IN_REGION.with(|f| f.set(false));
    }
}

/// Stable per-worker span name: spans aggregate by path, so giving every
/// worker its own `'static` name is what turns the span registry into a
/// per-thread busy-ns report. The first 16 come from a static table; rarer
/// higher indices leak one small string per worker, once, at spawn.
fn worker_span_name(w: usize) -> &'static str {
    const NAMES: [&str; 16] = [
        "pool.worker.00",
        "pool.worker.01",
        "pool.worker.02",
        "pool.worker.03",
        "pool.worker.04",
        "pool.worker.05",
        "pool.worker.06",
        "pool.worker.07",
        "pool.worker.08",
        "pool.worker.09",
        "pool.worker.10",
        "pool.worker.11",
        "pool.worker.12",
        "pool.worker.13",
        "pool.worker.14",
        "pool.worker.15",
    ];
    if w < NAMES.len() {
        NAMES[w]
    } else {
        Box::leak(format!("pool.worker.{w:02}").into_boxed_str())
    }
}

fn worker_loop(pool: &'static Pool, index: usize, span_name: &'static str, spawn_epoch: u64) {
    // Pool workers execute nothing but dispatch bodies, so the region flag
    // can be set once for the thread's whole life.
    let _region = RegionGuard::enter();
    let mut seen = spawn_epoch;
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if st.epoch != seen {
                    seen = st.epoch;
                    if index < st.engaged {
                        break st.job.expect("pool: epoch advanced without a job");
                    }
                }
                st = pool.work_cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };
        // Per-dispatch worker span: worker threads have fresh span stacks,
        // so this aggregates under the worker's own top-level path.
        let result = {
            let _span = tcsl_obs::spans::span(span_name);
            catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() }))
        };
        let dropped_payload;
        {
            let mut st = pool.state.lock().unwrap_or_else(|p| p.into_inner());
            dropped_payload = match result {
                Err(p) if st.panic.is_none() => {
                    st.panic = Some(p);
                    None
                }
                Err(p) => Some(p),
                Ok(()) => None,
            };
            st.remaining -= 1;
            if st.remaining == 0 {
                pool.done_cv.notify_all();
            }
        }
        // Dropping a secondary panic payload can run arbitrary Drop code;
        // keep that outside the pool lock.
        drop(dropped_payload);
    }
}

/// Spawns workers until the pool holds at least `target`. Caller holds the
/// state lock. Reports the new pool size on the `parallel.threads` gauge —
/// the one place that gauge is written.
fn grow(pool: &'static Pool, st: &mut State, target: usize) {
    while st.spawned < target {
        let index = st.spawned;
        let name = worker_span_name(index);
        let epoch = st.epoch;
        std::thread::Builder::new()
            .name(format!("tcsl-pool-{index:02}"))
            .spawn(move || worker_loop(pool, index, name, epoch))
            .expect("tcsl-pool: failed to spawn worker thread");
        st.spawned += 1;
    }
    tcsl_obs::counters::PARALLEL_THREADS.set(st.spawned as u64);
}

/// Runs `body` on the calling thread *and* on `helpers` pool workers,
/// returning once all `1 + helpers` executions finished. Re-raises the
/// first captured panic (worker or caller) after the dispatch has fully
/// drained, leaving the pool reusable.
///
/// `body` must partition its work internally (the callers use an atomic
/// cursor over index-owned items/chunks) — the pool hands every engaged
/// thread the same closure.
pub(crate) fn dispatch(helpers: usize, body: &(dyn Fn() + Sync)) {
    assert!(helpers >= 1, "dispatch needs at least one helper");
    let pool = pool();
    // SAFETY (lifetime erasure): `body` outlives the dispatch because this
    // function blocks until `remaining == 0` below, and workers only touch
    // the job between those two points.
    let job: Job = unsafe { std::mem::transmute::<&(dyn Fn() + Sync), Job>(body) };
    {
        // Time from wanting the job slot to owning it (lock + any wait for
        // an in-flight dispatch to drain) — the pool's queueing delay.
        // Schedule-class like the pool.* counters; reads the clock only
        // when tracing is on, and the drop that records is pure atomics so
        // it is safe under the state lock.
        let wait = tcsl_obs::hist::POOL_DISPATCH_WAIT_NS.start_timer();
        let mut st = pool.state.lock().unwrap_or_else(|p| p.into_inner());
        // One job slot: concurrent dispatches from different user threads
        // serialize here, each waiting for the pool to go idle.
        while st.job.is_some() {
            st = pool.done_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        drop(wait);
        grow(pool, &mut st, helpers);
        st.epoch += 1;
        st.job = Some(job);
        st.engaged = helpers;
        st.remaining = helpers;
        pool.work_cv.notify_all();
    }
    tcsl_obs::counters::POOL_DISPATCH.add(1);
    tcsl_obs::counters::POOL_WAKE.add(helpers as u64);

    // The caller is a full participant: it runs the same claiming body, so
    // `threads` execution contexts cost only `threads - 1` wakeups.
    let caller_result = {
        let _region = RegionGuard::enter();
        let _span = tcsl_obs::spans::span("pool.caller");
        catch_unwind(AssertUnwindSafe(body))
    };

    let worker_panic = {
        let mut st = pool.state.lock().unwrap_or_else(|p| p.into_inner());
        while st.remaining > 0 {
            st = pool.done_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.job = None;
        // Wake any caller queued on the job slot.
        pool.done_cv.notify_all();
        st.panic.take()
    };

    // Which payload is re-raised when several contexts panic is inherently
    // schedule-dependent; the guarantee is that *a* panic propagates and
    // the pool survives.
    if let Some(p) = worker_panic {
        resume_unwind(p);
    }
    if let Err(p) = caller_result {
        resume_unwind(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn dispatch_runs_body_on_all_contexts() {
        let hits = AtomicUsize::new(0);
        let body = || {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        dispatch(3, &body);
        // 3 helpers + the caller.
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn pool_reuses_workers_across_dispatches() {
        for round in 1..=5 {
            let hits = AtomicUsize::new(0);
            let body = || {
                hits.fetch_add(1, Ordering::Relaxed);
            };
            dispatch(2, &body);
            assert_eq!(hits.load(Ordering::Relaxed), 3, "round {round}");
        }
    }

    #[test]
    fn worker_panic_reraises_and_pool_survives() {
        let fail = || panic!("pool test boom");
        let r = catch_unwind(AssertUnwindSafe(|| dispatch(2, &fail)));
        assert!(r.is_err(), "panic must propagate to the dispatching caller");
        // The next dispatch still works.
        let hits = AtomicUsize::new(0);
        let ok = || {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        dispatch(2, &ok);
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn region_flag_is_set_inside_dispatch() {
        assert!(!in_parallel_region());
        let body = || assert!(in_parallel_region());
        dispatch(1, &body);
        assert!(!in_parallel_region());
    }

    #[test]
    fn worker_span_names_are_stable_and_indexed() {
        assert_eq!(worker_span_name(0), "pool.worker.00");
        assert_eq!(worker_span_name(15), "pool.worker.15");
        assert_eq!(worker_span_name(23), "pool.worker.23");
    }
}

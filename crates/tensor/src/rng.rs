//! Seedable randomness helpers.
//!
//! Every stochastic component in TimeCSL takes a `&mut impl Rng` (or a seed
//! that is turned into one here), so a single `u64` reproduces a whole
//! experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG from a seed — the only way the workspace creates RNGs.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream from a base seed and a stream index, so
/// parallel workers can each own a reproducible RNG.
pub fn substream(seed: u64, stream: u64) -> StdRng {
    // SplitMix64 step decorrelates the derived seeds.
    let mut z = seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// One standard-normal sample via Box–Muller (rejection-free polar form is
/// not needed at this precision).
pub fn gauss(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Samples an index in `0..n` (uniform). Panics if `n == 0`.
pub fn index(rng: &mut impl Rng, n: usize) -> usize {
    assert!(n > 0, "cannot sample from an empty range");
    rng.gen_range(0..n)
}

/// Fisher–Yates shuffles indices `0..n`, returning the permutation.
pub fn permutation(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = seeded(9);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(9);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn substreams_differ() {
        let mut a = substream(9, 0);
        let mut b = substream(9, 1);
        let xs: Vec<u32> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gauss_moments() {
        let mut r = seeded(123);
        let xs: Vec<f32> = (0..20_000).map(|_| gauss(&mut r)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = seeded(5);
        let p = permutation(&mut r, 50);
        let mut seen = [false; 50];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}

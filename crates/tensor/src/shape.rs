//! Shape and stride arithmetic for row-major tensors.

use std::fmt;

/// The extents of a tensor along each axis, in row-major order.
///
/// A `Shape` of `[2, 3]` describes a matrix with 2 rows and 3 columns; an
/// empty shape describes a scalar with one element.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent along `axis`. Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides: the step in flat index space for each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index. Panics on rank mismatch or
    /// out-of-bounds coordinates.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(
                i < d,
                "index {i} out of bounds for axis {axis} with extent {d}"
            );
            off += i * strides[axis];
        }
        off
    }

    /// Whether two shapes are elementwise-compatible (identical).
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn offset_matches_manual() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::from([2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rank_mismatch_panics() {
        Shape::from([2, 2]).offset(&[0]);
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = [1usize, 2].into();
        assert!(a.same_as(&b));
        assert_eq!(format!("{a}"), "[1, 2]");
    }
}

//! Blocked pairwise squared-Euclidean engine for the representation space.
//!
//! Every downstream analyzer (k-NN classification and anomaly scoring, the
//! k-means assignment step, agglomerative clustering's initial matrix) and
//! the t-SNE affinity pass consume the representation matrix `z = f(x)`
//! through pairwise Euclidean distances. This module gives them one shared
//! engine instead of five scalar `zip(..).map(..).sum()` reimplementations:
//!
//! * [`pairdist`] — the full `N×M` squared-distance matrix, computed as
//!   `D[i,j] = |a_i|² + |b_j|² − 2·a_i·b_j` from precomputed row norms plus
//!   the runtime-dispatched AVX2/FMA [`dot`]/[`dot4`] kernels, tiled so the
//!   corpus block stays cache-resident, with a [`parallel_chunks_mut`]
//!   row-block fan-out (persistent-pool workers; row-block ownership is a
//!   function of the chunk index alone) writing the result in place (no
//!   gather copy).
//! * [`knn_into`] / [`knn`] — streaming per-row top-`k` selection through a
//!   bounded binary heap, never materializing the `N×M` matrix (the same
//!   zero-materialization discipline as the fused shapelet transform). The
//!   heaps live directly in the caller's output vectors, so repeated calls
//!   with a reused `out` reach a zero-allocation steady state for results.
//! * [`topk_push`] / [`topk_sort`] / [`scan_cell_into`] — the bounded-heap
//!   and probed-scan primitives underneath [`knn_into`], exported so the
//!   IVF index (`tcsl_analyzers::index`) can merge shortlists from several
//!   repacked corpus cells into one accumulator with *bit-identical*
//!   distances and ordering: [`dot4`]'s rounding depends only on the
//!   operand pair, never on which rows share its group, so a row scanned
//!   from a repacked cell scores exactly as it does in the full corpus.
//! * [`pairdist_oracle`] / [`knn_oracle`] — the naive scalar formulations,
//!   kept as the agreement oracle for proptests and benchmarks.
//!
//! Contracts shared by every entry point:
//!
//! * **Determinism.** The row-block partition is a function of `N` alone
//!   (never of the worker count), and each output block is owned by its
//!   index, so results are bit-identical for any `TCSL_THREADS` setting.
//! * **Tie-breaks.** Equal distances resolve to the *lowest* corpus index —
//!   the order a stable sort over a full scan would produce.
//! * **NaN.** Distances involving NaN features are NaN and order *last*
//!   (via `total_cmp`), matching the analyzers' NaN-tolerant sorting; they
//!   never abort a query.
//! * **Exact self-distance.** `D[i,j]` is exactly `0.0` when the two rows
//!   are bit-identical: norms and cross terms go through the *same*
//!   [`dot4`] lane path (whose rounding depends only on the operand pair,
//!   not the lane), so the norm and the cross term are the same f32 `x` and
//!   `x + x − 2x` cancels exactly in IEEE arithmetic — on the scalar and
//!   the AVX2/FMA dispatch path alike. Self-match detection by `d < eps`
//!   keeps working.
//! * **Magnitude domain.** The norms+dot identity needs `|v|²` to be
//!   representable; once a row's squared norm overflows f32 (entries
//!   around 1e19 at representation dims) it would degenerate to
//!   `inf − inf = NaN`. Pairs where either norm is non-finite therefore
//!   fall back to the scalar `(a−b)²` formulation, which stays finite
//!   whenever the oracle does (and still yields NaN for NaN features,
//!   whose norms are NaN).

use crate::matmul::dot4;
use crate::parallel::parallel_chunks_mut;
use crate::tensor::Tensor;
use std::cmp::Ordering;

/// Query rows per parallel work item: big enough to amortize the fan-out,
/// small enough that dynamic block claiming balances uneven hosts.
const ROW_BLOCK: usize = 64;

/// Corpus rows per inner tile. A tile of `COL_TILE` rows × up to a few
/// hundred features stays L2-resident while every query row of the block
/// streams over it.
const COL_TILE: usize = 256;

/// Squared Euclidean norm of every row of `x`, via the same [`dot4`] lane
/// path the cross terms take. Using plain [`dot`](crate::matmul::dot) here
/// would break the exact-self-distance contract at dims ≥ the FMA dispatch
/// threshold: `dot_fma` accumulates in 8×8 lanes while `dot4_fma` uses
/// 2×8, and the two round differently, so `|a|² + |a|² − 2·a·a` would not
/// cancel for bit-identical rows. `dot4`'s rounding depends only on the
/// operand pair, not the lane, so one lane of `dot4(r, r, r, r, r)` is
/// bit-identical to the cross term the engine computes for that pair.
pub fn row_sq_norms(x: &Tensor) -> Vec<f32> {
    crate::matmul::count_dot_dispatch(x.cols(), 4 * x.rows() as u64);
    (0..x.rows())
        .map(|i| {
            let r = x.row(i);
            dot4(r, r, r, r, r)[0]
        })
        .collect()
}

/// Clamps the tiny negative values the norms-plus-dot identity can produce
/// for near-duplicate rows. Written as a comparison (not `f32::max`) so NaN
/// distances stay NaN instead of silently becoming `0.0`.
#[inline]
fn clamp_non_negative(v: f32) -> f32 {
    if v < 0.0 {
        0.0
    } else {
        v
    }
}

/// Squared distance of one `(query, corpus-row)` pair from its precomputed
/// norms and cross term. When either norm overflowed to `inf` the identity
/// would produce `inf − inf = NaN` for finite data, so such pairs take the
/// scalar `(a−b)²` sum instead — a function of the row values alone, shared
/// verbatim by [`pairdist`] and [`knn_into`] so the two stay bit-identical,
/// and still NaN for rows with NaN features (their norms are NaN).
#[inline]
fn pair_sq_dist(qn: f32, nbj: f32, dv: f32, q: &[f32], r: &[f32]) -> f32 {
    if qn.is_finite() && nbj.is_finite() {
        clamp_non_negative(qn + nbj - 2.0 * dv)
    } else {
        q.iter().zip(r).map(|(&x, &y)| (x - y) * (x - y)).sum()
    }
}

/// Dot products of `q` against corpus rows `j..te` (at most 4), always via
/// [`dot4`] — the tail pads with repeats of the last row so every `(i, j)`
/// pair takes the identical kernel path. `dot4`'s rounding only depends on
/// the operand pair, not the lane, which keeps `pairdist(x, x)` bitwise
/// symmetric and [`knn_into`] bit-identical to [`pairdist`].
#[inline]
fn dot_group(q: &[f32], b: &Tensor, j: usize, te: usize) -> [f32; 4] {
    let r = (te - j).min(4);
    debug_assert!(r >= 1);
    let at = |l: usize| b.row(j + l.min(r - 1));
    dot4(q, at(0), at(1), at(2), at(3))
}

/// Blocked pairwise squared-Euclidean distances: `D (N×M)` with
/// `D[i,j] = |a_i − b_j|²` for `a (N×F)` and `b (M×F)`.
pub fn pairdist(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, m) = (a.rows(), b.rows());
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairdist feature dimensions differ: {} vs {}",
        a.cols(),
        b.cols()
    );
    if n == 0 || m == 0 {
        return Tensor::zeros([n, m]);
    }
    let _span = tcsl_obs::spans::span("pairdist");
    let na = row_sq_norms(a);
    let nb = row_sq_norms(b);
    let mut out = Tensor::zeros([n, m]);
    // Fill the output in place, one ROW_BLOCK of rows per chunk: no gather
    // copy, so peak memory is the result matrix itself plus the two norm
    // vectors.
    parallel_chunks_mut(out.as_mut_slice(), ROW_BLOCK * m, |bi, chunk| {
        let lo = bi * ROW_BLOCK;
        let rows = chunk.len() / m;
        // One count per (row-block, corpus-tile) pair, merged once per
        // chunk: the tile partition depends only on (n, m), so the total is
        // thread-count invariant.
        let mut tiles = tcsl_obs::counters::LocalCounter::new(&tcsl_obs::counters::PAIRDIST_TILES);
        // Per-tile wall time, batched like the tile counter (one atomic
        // merge per chunk). Host-class: the clock is only read while
        // tracing is on, so the disabled path stays a plain tile loop.
        let mut tile_ns = tcsl_obs::hist::LocalHistogram::new(&tcsl_obs::hist::PAIRDIST_TILE_NS);
        let timing = tcsl_obs::enabled();
        // `dot4` doesn't count its own dispatch (it's the innermost hot
        // call); tally the chunk's dot products here and record them once.
        let mut dots = 0u64;
        let mut tile = 0usize;
        while tile < m {
            tiles.add(1);
            let t0 = timing.then(std::time::Instant::now);
            let te = (tile + COL_TILE).min(m);
            dots += 4 * (te - tile).div_ceil(4) as u64 * rows as u64;
            for r in 0..rows {
                let i = lo + r;
                let q = a.row(i);
                let qn = na[i];
                let orow = &mut chunk[r * m..(r + 1) * m];
                let mut j = tile;
                while j < te {
                    let ds = dot_group(q, b, j, te);
                    let take = (te - j).min(4);
                    for (l, &dv) in ds.iter().take(take).enumerate() {
                        orow[j + l] = pair_sq_dist(qn, nb[j + l], dv, q, b.row(j + l));
                    }
                    j += take;
                }
            }
            if let Some(t0) = t0 {
                tile_ns.record(t0.elapsed().as_nanos() as u64);
            }
            tile = te;
        }
        crate::matmul::count_dot_dispatch(a.cols(), dots);
    });
    out
}

/// Naive scalar oracle for [`pairdist`]: per-element `(x−y)²` sums, the
/// formulation the analyzers used before the blocked engine existed.
pub fn pairdist_oracle(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, m) = (a.rows(), b.rows());
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairdist feature dimensions differ: {} vs {}",
        a.cols(),
        b.cols()
    );
    let mut out = Tensor::zeros([n, m]);
    for i in 0..n {
        let q = a.row(i);
        let orow = out.row_mut(i);
        for (j, slot) in orow.iter_mut().enumerate() {
            *slot = b
                .row(j)
                .iter()
                .zip(q)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum();
        }
    }
    out
}

/// `(index, distance)` candidate ordering shared by every top-k surface:
/// `a` ranks strictly *worse* than `b` when its distance is greater under
/// `total_cmp` (NaN last) or, at equal distance, its index is higher —
/// so the max-heap's root is always the one candidate to evict and the
/// final ascending sort puts the lowest index first among ties.
#[inline]
fn cand_gt(a: (usize, f32), b: (usize, f32)) -> bool {
    match a.1.total_cmp(&b.1) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => a.0 > b.0,
    }
}

/// Folds candidate `(idx, d)` into the `k`-bounded max-heap stored in
/// `heap`'s own buffer (classic sift-up/sift-down — no separate heap
/// structure, no allocation beyond growing `heap` to `k` once). The heap
/// invariant is over [`cand_gt`], so the retained set is exactly the `k`
/// smallest candidates under `(total_cmp distance, index)` regardless of
/// arrival order — which is what lets the IVF index merge probed cells in
/// any cell order and still match the exact engine's tie-breaks.
#[inline]
pub fn topk_push(heap: &mut Vec<(usize, f32)>, k: usize, idx: usize, d: f32) {
    debug_assert!(k >= 1);
    let cand = (idx, d);
    if heap.len() < k {
        heap.push(cand);
        let mut i = heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if cand_gt(heap[i], heap[parent]) {
                heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    } else if cand_gt(heap[0], cand) {
        heap[0] = cand;
        let mut i = 0usize;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < heap.len() && cand_gt(heap[l], heap[worst]) {
                worst = l;
            }
            if r < heap.len() && cand_gt(heap[r], heap[worst]) {
                worst = r;
            }
            if worst == i {
                break;
            }
            heap.swap(i, worst);
            i = worst;
        }
    }
}

/// Sorts a finished [`topk_push`] accumulator ascending by
/// `(total_cmp distance, index)` — in place (`sort_unstable_by` allocates
/// nothing; the key is a strict total order, so stability is irrelevant).
pub fn topk_sort(heap: &mut [(usize, f32)]) {
    heap.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
}

/// Streams the rows of one repacked corpus `cell` against a single query,
/// folding candidates into the `k`-bounded accumulator `acc` under the
/// engine's global contract. `norms` are the cell rows' [`row_sq_norms`]
/// and `ids` their *original* corpus indices; `qn` is the query's own
/// `dot4`-path squared norm. Because [`dot4`]'s rounding depends only on
/// the operand pair (not the lane or the group), a row scores bit-identical
/// here to what [`pairdist`]/[`knn_into`] compute for it in the full
/// corpus — so probing every cell reproduces the exact engine's neighbour
/// sets, distances, and tie-breaks verbatim. This is the probe primitive
/// of the IVF index in `tcsl_analyzers::index`.
pub fn scan_cell_into(
    q: &[f32],
    qn: f32,
    cell: &Tensor,
    norms: &[f32],
    ids: &[usize],
    k: usize,
    acc: &mut Vec<(usize, f32)>,
) {
    assert!(k >= 1, "k must be at least 1");
    assert_eq!(
        q.len(),
        cell.cols(),
        "scan_cell feature dimensions differ: {} vs {}",
        q.len(),
        cell.cols()
    );
    let m = cell.rows();
    debug_assert_eq!(norms.len(), m);
    debug_assert_eq!(ids.len(), m);
    if m == 0 {
        return;
    }
    let mut tiles = tcsl_obs::counters::LocalCounter::new(&tcsl_obs::counters::PAIRDIST_TILES);
    tiles.add(m.div_ceil(COL_TILE) as u64);
    crate::matmul::count_dot_dispatch(q.len(), 4 * m.div_ceil(4) as u64);
    let mut j = 0usize;
    while j < m {
        let ds = dot_group(q, cell, j, m);
        let take = (m - j).min(4);
        for (l, &dv) in ds.iter().take(take).enumerate() {
            let d = pair_sq_dist(qn, norms[j + l], dv, q, cell.row(j + l));
            topk_push(acc, k, ids[j + l], d);
        }
        j += take;
    }
}

/// Streaming k-nearest-neighbour selection: for every row of `queries`,
/// the `min(k, M)` nearest rows of `corpus` as `(corpus_index, sq_dist)`,
/// sorted ascending by `(distance, index)`.
///
/// The full `N×M` distance matrix is never materialized: each query row's
/// `k`-bounded heap lives directly in its `out` slot while the corpus
/// streams through in tiles, so peak scratch is the two norm vectors
/// regardless of `M`. `out` is reshaped to `N` rows *reusing* both the
/// outer vector and every surviving inner vector's capacity — repeated
/// calls with the same shapes reach a zero-allocation steady state for
/// results (pinned by the `knn_alloc` regression test).
pub fn knn_into(queries: &Tensor, corpus: &Tensor, k: usize, out: &mut Vec<Vec<(usize, f32)>>) {
    assert!(k >= 1, "k must be at least 1");
    let (n, m) = (queries.rows(), corpus.rows());
    assert_eq!(
        queries.cols(),
        corpus.cols(),
        "knn feature dimensions differ: {} vs {}",
        queries.cols(),
        corpus.cols()
    );
    out.truncate(n);
    for row in out.iter_mut() {
        row.clear();
    }
    while out.len() < n {
        out.push(Vec::new());
    }
    if n == 0 || m == 0 {
        return;
    }
    let k = k.min(m);
    let na = row_sq_norms(queries);
    let nb = row_sq_norms(corpus);
    let _span = tcsl_obs::spans::span("knn");
    // One ROW_BLOCK of query rows per chunk, the chunk owned by its index
    // (bit-identical for any TCSL_THREADS, like `pairdist`), each output
    // row serving as its query's heap storage.
    parallel_chunks_mut(&mut out[..], ROW_BLOCK, |bi, rows_out| {
        let lo = bi * ROW_BLOCK;
        // Same tile accounting as `pairdist`: deterministic in (n, m).
        let mut tiles = tcsl_obs::counters::LocalCounter::new(&tcsl_obs::counters::PAIRDIST_TILES);
        let mut tile_ns = tcsl_obs::hist::LocalHistogram::new(&tcsl_obs::hist::PAIRDIST_TILE_NS);
        let timing = tcsl_obs::enabled();
        let mut dots = 0u64;
        let mut tile = 0usize;
        while tile < m {
            tiles.add(1);
            let t0 = timing.then(std::time::Instant::now);
            let te = (tile + COL_TILE).min(m);
            dots += 4 * (te - tile).div_ceil(4) as u64 * rows_out.len() as u64;
            for (r, heap) in rows_out.iter_mut().enumerate() {
                let i = lo + r;
                let q = queries.row(i);
                let qn = na[i];
                let mut j = tile;
                while j < te {
                    let ds = dot_group(q, corpus, j, te);
                    let take = (te - j).min(4);
                    for (l, &dv) in ds.iter().take(take).enumerate() {
                        let d = pair_sq_dist(qn, nb[j + l], dv, q, corpus.row(j + l));
                        topk_push(heap, k, j + l, d);
                    }
                    j += take;
                }
            }
            if let Some(t0) = t0 {
                tile_ns.record(t0.elapsed().as_nanos() as u64);
            }
            tile = te;
        }
        crate::matmul::count_dot_dispatch(queries.cols(), dots);
        for heap in rows_out.iter_mut() {
            topk_sort(heap);
        }
    });
}

/// Convenience wrapper over [`knn_into`] allocating a fresh result vector.
pub fn knn(queries: &Tensor, corpus: &Tensor, k: usize) -> Vec<Vec<(usize, f32)>> {
    let mut out = Vec::with_capacity(queries.rows());
    knn_into(queries, corpus, k, &mut out);
    out
}

/// Naive oracle for [`knn`]: full [`pairdist_oracle`] matrix, per-row sort
/// by `(distance, index)` under `total_cmp`, truncated to `k`.
pub fn knn_oracle(queries: &Tensor, corpus: &Tensor, k: usize) -> Vec<Vec<(usize, f32)>> {
    assert!(k >= 1, "k must be at least 1");
    let d = pairdist_oracle(queries, corpus);
    (0..queries.rows())
        .map(|i| {
            let mut row: Vec<(usize, f32)> = d.row(i).iter().copied().enumerate().collect();
            row.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            row.truncate(k.min(row.len()));
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matches_oracle_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for (n, m, f) in [
            (1, 1, 1),
            (5, 9, 3),
            (17, 13, 8),
            (70, 70, 67),
            (3, 130, 130),
        ] {
            let a = Tensor::randn([n, f], &mut rng);
            let b = Tensor::randn([m, f], &mut rng);
            let blocked = pairdist(&a, &b);
            let oracle = pairdist_oracle(&a, &b);
            let scale = 1.0f32.max(
                oracle
                    .as_slice()
                    .iter()
                    .fold(0.0f32, |acc, &v| acc.max(v.abs())),
            );
            assert!(
                blocked.max_abs_diff(&oracle) / scale < 1e-4,
                "n={n} m={m} f={f}: {}",
                blocked.max_abs_diff(&oracle)
            );
        }
    }

    #[test]
    fn self_distance_is_exactly_zero() {
        // Continuous (non-grid) values, with dims on both sides of the
        // 64-element FMA dispatch threshold: the diagonal must be exactly
        // 0.0 on the scalar and the AVX2/FMA path alike, which requires
        // norms and cross terms to share one kernel's rounding.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for dim in [1, 33, 63, 64, 65, 128, 200] {
            let a = Tensor::randn([20, dim], &mut rng);
            let d = pairdist(&a, &a);
            for i in 0..20 {
                assert_eq!(d.at2(i, i), 0.0, "dim {dim} diagonal {i}");
            }
            // And the streaming top-k sees the same exact zero, so the
            // analyzers' self-match skip (d < eps) works at every dim.
            let nn = knn(&a, &a, 1);
            for (i, row) in nn.iter().enumerate() {
                assert_eq!(row[0], (i, 0.0), "dim {dim} self-neighbour {i}");
            }
        }
    }

    #[test]
    fn huge_magnitude_rows_fall_back_to_scalar_instead_of_nan() {
        // |v|² overflows f32 at this magnitude, so the norms+dot identity
        // alone would give inf − inf = NaN; the per-pair fallback must
        // reproduce the oracle's finite distance and keep the diagonal at
        // an exact zero.
        let dim = 128;
        let a = Tensor::from_vec(vec![1.0e19; dim], [1, dim]);
        let mut bv = vec![1.0e19; dim];
        bv[0] = 1.5e19;
        let b = Tensor::from_vec(bv, [1, dim]);
        let d = pairdist(&a, &b);
        let oracle = pairdist_oracle(&a, &b);
        assert!(d.at2(0, 0).is_finite(), "got {}", d.at2(0, 0));
        assert_eq!(d.at2(0, 0), oracle.at2(0, 0));
        assert_eq!(pairdist(&a, &a).at2(0, 0), 0.0);
        let nn = knn(&a, &b, 1);
        assert_eq!(nn[0][0], (0, oracle.at2(0, 0)));
    }

    #[test]
    fn symmetric_input_gives_symmetric_output() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = Tensor::randn([37, 70], &mut rng);
        let d = pairdist(&a, &a);
        for i in 0..37 {
            for j in 0..37 {
                assert_eq!(d.at2(i, j).to_bits(), d.at2(j, i).to_bits());
            }
        }
    }

    #[test]
    fn knn_matches_oracle_and_sorts_ascending() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let q = Tensor::randn([30, 12], &mut rng);
        let c = Tensor::randn([50, 12], &mut rng);
        for k in [1, 3, 17, 50, 200] {
            let fast = knn(&q, &c, k);
            let slow = knn_oracle(&q, &c, k);
            for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                let fi: Vec<usize> = f.iter().map(|&(j, _)| j).collect();
                let si: Vec<usize> = s.iter().map(|&(j, _)| j).collect();
                assert_eq!(fi, si, "row {i} k={k}");
                for w in f.windows(2) {
                    assert!(w[0].1.total_cmp(&w[1].1) != Ordering::Greater);
                }
            }
        }
    }

    #[test]
    fn exact_ties_resolve_to_lowest_index() {
        // Corpus rows 1 and 3 are bit-identical and nearest to the query;
        // the reported neighbour must be index 1.
        let q = Tensor::from_vec(vec![0.0, 0.0], [1, 2]);
        let c = Tensor::from_vec(vec![5.0, 5.0, 1.0, 1.0, 9.0, 9.0, 1.0, 1.0], [4, 2]);
        let nn = knn(&q, &c, 1);
        assert_eq!(nn[0][0].0, 1);
        let nn2 = knn(&q, &c, 2);
        assert_eq!(
            nn2[0].iter().map(|&(j, _)| j).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn nan_rows_sort_last_and_do_not_abort() {
        let q = Tensor::from_vec(vec![0.0], [1, 1]);
        let c = Tensor::from_vec(vec![2.0, f32::NAN, 1.0], [3, 1]);
        let nn = knn(&q, &c, 3);
        let idx: Vec<usize> = nn[0].iter().map(|&(j, _)| j).collect();
        assert_eq!(idx, vec![2, 0, 1], "NaN corpus row must come last");
        assert!(nn[0][2].1.is_nan());
        // And the oracle agrees.
        let slow = knn_oracle(&q, &c, 3);
        let sidx: Vec<usize> = slow[0].iter().map(|&(j, _)| j).collect();
        assert_eq!(idx, sidx);
    }

    #[test]
    fn k_larger_than_corpus_returns_everything() {
        let q = Tensor::from_vec(vec![0.0, 1.0], [2, 1]);
        let c = Tensor::from_vec(vec![3.0, -1.0], [2, 1]);
        let nn = knn(&q, &c, 10);
        assert_eq!(nn[0].len(), 2);
        assert_eq!(nn[1].len(), 2);
    }

    #[test]
    fn empty_corpus_yields_empty_neighbour_lists() {
        let q = Tensor::from_vec(vec![0.0, 1.0], [2, 1]);
        let c = Tensor::zeros([0, 1]);
        let nn = knn(&q, &c, 3);
        assert_eq!(nn.len(), 2);
        assert!(nn[0].is_empty() && nn[1].is_empty());
        assert_eq!(pairdist(&q, &c).shape().dims(), &[2, 0]);
    }

    #[test]
    fn knn_into_reuses_the_output_vector() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let q = Tensor::randn([4, 3], &mut rng);
        let c = Tensor::randn([6, 3], &mut rng);
        let mut out = vec![vec![(99usize, 0.0f32)]; 17];
        knn_into(&q, &c, 2, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn knn_into_keeps_inner_vector_buffers_across_calls() {
        // The whole point of the reshape-in-place contract: a second call
        // with the same shapes writes into the *same* heap buffers (no
        // per-row reallocation), which the steady-state alloc regression
        // test relies on. Buffer identity is checked by pointer.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let q = Tensor::randn([5, 8], &mut rng);
        let c = Tensor::randn([40, 8], &mut rng);
        let mut out = Vec::new();
        knn_into(&q, &c, 3, &mut out);
        let ptrs: Vec<*const (usize, f32)> = out.iter().map(|r| r.as_ptr()).collect();
        let first: Vec<Vec<(usize, f32)>> = out.clone();
        knn_into(&q, &c, 3, &mut out);
        let ptrs2: Vec<*const (usize, f32)> = out.iter().map(|r| r.as_ptr()).collect();
        assert_eq!(ptrs, ptrs2, "inner buffers were reallocated");
        assert_eq!(first, out, "reused buffers changed the results");
    }

    #[test]
    fn topk_push_retains_k_smallest_in_any_arrival_order() {
        // Candidates pushed in descending/interleaved order must leave the
        // same set as ascending order — the heap's (distance, index) total
        // order handles arrival order, which the IVF cell merge relies on.
        let cands: Vec<(usize, f32)> = vec![(7, 3.0), (2, 1.0), (9, 1.0), (0, 5.0), (4, 0.25)];
        let mut fwd = Vec::new();
        let mut rev = Vec::new();
        for &(i, d) in &cands {
            topk_push(&mut fwd, 3, i, d);
        }
        for &(i, d) in cands.iter().rev() {
            topk_push(&mut rev, 3, i, d);
        }
        topk_sort(&mut fwd);
        topk_sort(&mut rev);
        assert_eq!(fwd, rev);
        // Ties at the k boundary resolve to the lowest index: 2 beats 9.
        assert_eq!(fwd, vec![(4, 0.25), (2, 1.0), (9, 1.0)]);
        let mut tight = Vec::new();
        for &(i, d) in &[(9usize, 1.0f32), (2, 1.0), (4, 0.25)] {
            topk_push(&mut tight, 2, i, d);
        }
        topk_sort(&mut tight);
        assert_eq!(tight, vec![(4, 0.25), (2, 1.0)]);
    }

    #[test]
    fn scan_cell_into_matches_knn_bitwise_under_repacking() {
        // Split the corpus into two interleaved "cells" (odd/even rows,
        // repacked contiguously) and probe both into one accumulator: the
        // result must equal the full-corpus knn bit-for-bit — distances,
        // indices, tie-breaks — at dims on both sides of the FMA dispatch
        // threshold. This is the contract the IVF index is built on.
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for dim in [7, 63, 64, 65, 130] {
            let q = Tensor::randn([6, dim], &mut rng);
            let c = Tensor::randn([23, dim], &mut rng);
            let (mut cells, mut idsets): (Vec<Vec<f32>>, Vec<Vec<usize>>) =
                (vec![Vec::new(), Vec::new()], vec![Vec::new(), Vec::new()]);
            for j in 0..c.rows() {
                cells[j % 2].extend_from_slice(c.row(j));
                idsets[j % 2].push(j);
            }
            let cells: Vec<Tensor> = cells
                .into_iter()
                .zip(&idsets)
                .map(|(v, ids)| Tensor::from_vec(v, [ids.len(), dim]))
                .collect();
            let norms: Vec<Vec<f32>> = cells.iter().map(row_sq_norms).collect();
            let qnorms = row_sq_norms(&q);
            let exact = knn(&q, &c, 4);
            for (i, want) in exact.iter().enumerate() {
                let mut acc = Vec::new();
                for cell in 0..2 {
                    scan_cell_into(
                        q.row(i),
                        qnorms[i],
                        &cells[cell],
                        &norms[cell],
                        &idsets[cell],
                        4,
                        &mut acc,
                    );
                }
                topk_sort(&mut acc);
                assert_eq!(&acc, want, "dim {dim} query {i}");
                for (&(ai, ad), &(wi, wd)) in acc.iter().zip(want) {
                    assert_eq!(ai, wi);
                    assert_eq!(ad.to_bits(), wd.to_bits(), "dim {dim} query {i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "feature dimensions differ")]
    fn dimension_mismatch_panics() {
        pairdist(&Tensor::zeros([2, 3]), &Tensor::zeros([2, 4]));
    }
}

//! Property-based tests over the tensor algebra.

use crate::matmul::{matmul, matmul_transb};
use crate::pairdist::{knn, knn_oracle, pairdist, pairdist_oracle};
use crate::reduce::{self, Axis};
use crate::tensor::Tensor;
use crate::window::{count_windows, unfold, unfold_backward};
use proptest::prelude::*;

/// Random query/corpus pair on a coarse value grid (multiples of 0.5, small
/// magnitude): every product and partial sum in both the blocked engine and
/// the scalar oracle is then exactly representable in f32, so the two
/// formulations agree bit-for-bit and top-k index parity is deterministic.
/// `nan_q`/`nan_c` optionally poison one row with a NaN feature (index
/// taken modulo `rows + 1`; the `rows` value means "no poison").
#[allow(clippy::type_complexity)]
fn grid_knn_case() -> impl Strategy<Value = (Tensor, Tensor, usize, usize, usize)> {
    // dim up to 70 crosses both the 8-lane SIMD width and the FMA kernel's
    // 64-element dispatch threshold, including non-multiples of each.
    (
        1usize..14,
        1usize..14,
        1usize..70,
        1usize..8,
        0usize..30,
        0usize..30,
    )
        .prop_flat_map(|(n, m, d, k, nan_q, nan_c)| {
            (
                proptest::collection::vec(-12i32..13, n * d),
                proptest::collection::vec(-12i32..13, m * d),
            )
                .prop_map(move |(av, bv)| {
                    let to_grid = |v: Vec<i32>| -> Vec<f32> {
                        v.into_iter().map(|x| x as f32 * 0.5).collect()
                    };
                    let mut av = to_grid(av);
                    let mut bv = to_grid(bv);
                    if nan_q % (n + 1) < n {
                        av[(nan_q % (n + 1)) * d] = f32::NAN;
                    }
                    if nan_c % (m + 1) < m {
                        bv[(nan_c % (m + 1)) * d] = f32::NAN;
                    }
                    (
                        Tensor::from_vec(av, [n, d]),
                        Tensor::from_vec(bv, [m, d]),
                        k,
                        n,
                        m,
                    )
                })
        })
}

fn small_matrix(max_side: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_side, 1..=max_side).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, [r, c]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in small_matrix(6)) {
        let b = a.map(|x| x * 0.5 + 1.0);
        prop_assert!(a.add(&b).max_abs_diff(&b.add(&a)) < 1e-6);
    }

    #[test]
    fn scale_distributes_over_add(a in small_matrix(6), s in -5.0f32..5.0) {
        let b = a.map(|x| x - 2.0);
        let lhs = a.add(&b).scale(s);
        let rhs = a.scale(s).add(&b.scale(s));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transpose_involution(a in small_matrix(8)) {
        prop_assert_eq!(a.transpose2().transpose2(), a);
    }

    #[test]
    fn matmul_transb_consistent(a in small_matrix(5), cols in 1usize..5) {
        // Build b with matching inner dimension.
        let k = a.cols();
        let b = Tensor::from_fn([cols, k], |i| (i as f32 * 0.37).sin());
        let direct = matmul_transb(&a, &b);
        let viaexp = matmul(&a, &b.transpose2());
        prop_assert!(direct.max_abs_diff(&viaexp) < 1e-4);
    }

    #[test]
    fn sum_axis_totals_match(a in small_matrix(7)) {
        let total = reduce::sum(&a);
        let via_rows = reduce::sum(&reduce::sum_axis(&a, Axis::Rows));
        let via_cols = reduce::sum(&reduce::sum_axis(&a, Axis::Cols));
        prop_assert!((total - via_rows).abs() < 1e-3);
        prop_assert!((total - via_cols).abs() < 1e-3);
    }

    #[test]
    fn min_axis_bounds_every_element(a in small_matrix(7)) {
        let (mins, args) = reduce::min_axis(&a, Axis::Cols);
        for (i, &arg) in args.iter().enumerate() {
            for j in 0..a.cols() {
                prop_assert!(mins.as_slice()[i] <= a.at2(i, j));
            }
            prop_assert!((mins.as_slice()[i] - a.at2(i, arg)).abs() < 1e-7);
        }
    }

    #[test]
    fn unfold_adjoint_identity(t in 4usize..20, len in 1usize..5, stride in 1usize..3) {
        prop_assume!(len <= t);
        let x = Tensor::from_fn([2, t], |i| ((i * 31) % 17) as f32 - 8.0);
        let w = unfold(&x, len, stride);
        prop_assert_eq!(w.rows(), count_windows(t, len, stride));
        let g = Tensor::from_fn([w.rows(), w.cols()], |i| ((i * 7) % 13) as f32 - 6.0);
        let lhs = w.dot(&g);
        let rhs = x.dot(&unfold_backward(&g, 2, t, len, stride));
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn pairdist_blocked_matches_oracle((a, b, k, n, m) in grid_knn_case()) {
        // Full-matrix values: identical up to 1e-4 (bit-exact on the grid),
        // with NaN entries appearing in exactly the same positions.
        let blocked = pairdist(&a, &b);
        let oracle = pairdist_oracle(&a, &b);
        for (i, (&x, &y)) in blocked.as_slice().iter().zip(oracle.as_slice()).enumerate() {
            if x.is_nan() || y.is_nan() {
                prop_assert!(x.is_nan() && y.is_nan(), "flat {i}: {x} vs {y}");
            } else {
                prop_assert!((x - y).abs() <= 1e-4, "flat {i}: {x} vs {y}");
            }
        }
        // Streaming top-k: the exact neighbour-index sequence of the oracle
        // (stable (distance, index) order — lowest index on ties, NaN rows
        // last), for every k up to past the corpus size.
        let fast = knn(&a, &b, k);
        let slow = knn_oracle(&a, &b, k);
        prop_assert_eq!(fast.len(), n);
        for (row, (f, s)) in fast.iter().zip(&slow).enumerate() {
            let fi: Vec<usize> = f.iter().map(|&(j, _)| j).collect();
            let si: Vec<usize> = s.iter().map(|&(j, _)| j).collect();
            prop_assert_eq!(&fi, &si, "row {} k={} (m={})", row, k, m);
            for (&(_, fd), &(_, sd)) in f.iter().zip(s) {
                if fd.is_nan() || sd.is_nan() {
                    prop_assert!(fd.is_nan() && sd.is_nan());
                } else {
                    prop_assert!((fd - sd).abs() <= 1e-4);
                }
            }
        }
    }

    #[test]
    fn pairdist_values_close_on_continuous_data(
        n in 1usize..10, m in 1usize..10, d in 1usize..80, seed in 0u64..1_000
    ) {
        // Continuous values: no exactness guarantee, but the blocked
        // norms-plus-dot identity must track the oracle to 1e-4 relative.
        let a = Tensor::from_fn([n, d], |i| (((i as u64 + seed) * 2654435761 % 1000) as f32 / 500.0) - 1.0);
        let b = Tensor::from_fn([m, d], |i| (((i as u64 * 31 + seed) * 2246822519 % 1000) as f32 / 500.0) - 1.0);
        let blocked = pairdist(&a, &b);
        let oracle = pairdist_oracle(&a, &b);
        let scale = oracle.as_slice().iter().fold(1.0f32, |acc, &v| acc.max(v));
        prop_assert!(blocked.max_abs_diff(&oracle) / scale < 1e-4);
    }

    #[test]
    fn pairdist_self_diagonal_exactly_zero_on_continuous_data(
        n in 1usize..12, d in 1usize..200, seed in 0u64..1_000
    ) {
        // Bit-identical rows must be at distance exactly 0.0 — not merely
        // small — for continuous values at every dim, including past the
        // 64-element FMA dispatch threshold where norms and cross terms
        // must share one kernel's rounding for the identity to cancel.
        let a = Tensor::from_fn([n, d], |i| (((i as u64 + seed) * 2654435761 % 1000) as f32 / 500.0) - 1.0);
        let dmat = pairdist(&a, &a);
        for i in 0..n {
            prop_assert_eq!(dmat.at2(i, i), 0.0, "diagonal {} (d={})", i, d);
        }
    }

    #[test]
    fn znorm_is_zero_mean(v in proptest::collection::vec(-100.0f32..100.0, 2..64)) {
        let z = crate::stats::znorm(&v);
        let m = crate::stats::mean(&z);
        prop_assert!(m.abs() < 1e-3);
    }
}

//! Property-based tests over the tensor algebra.

use crate::matmul::{matmul, matmul_transb};
use crate::reduce::{self, Axis};
use crate::tensor::Tensor;
use crate::window::{count_windows, unfold, unfold_backward};
use proptest::prelude::*;

fn small_matrix(max_side: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_side, 1..=max_side).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, [r, c]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in small_matrix(6)) {
        let b = a.map(|x| x * 0.5 + 1.0);
        prop_assert!(a.add(&b).max_abs_diff(&b.add(&a)) < 1e-6);
    }

    #[test]
    fn scale_distributes_over_add(a in small_matrix(6), s in -5.0f32..5.0) {
        let b = a.map(|x| x - 2.0);
        let lhs = a.add(&b).scale(s);
        let rhs = a.scale(s).add(&b.scale(s));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transpose_involution(a in small_matrix(8)) {
        prop_assert_eq!(a.transpose2().transpose2(), a);
    }

    #[test]
    fn matmul_transb_consistent(a in small_matrix(5), cols in 1usize..5) {
        // Build b with matching inner dimension.
        let k = a.cols();
        let b = Tensor::from_fn([cols, k], |i| (i as f32 * 0.37).sin());
        let direct = matmul_transb(&a, &b);
        let viaexp = matmul(&a, &b.transpose2());
        prop_assert!(direct.max_abs_diff(&viaexp) < 1e-4);
    }

    #[test]
    fn sum_axis_totals_match(a in small_matrix(7)) {
        let total = reduce::sum(&a);
        let via_rows = reduce::sum(&reduce::sum_axis(&a, Axis::Rows));
        let via_cols = reduce::sum(&reduce::sum_axis(&a, Axis::Cols));
        prop_assert!((total - via_rows).abs() < 1e-3);
        prop_assert!((total - via_cols).abs() < 1e-3);
    }

    #[test]
    fn min_axis_bounds_every_element(a in small_matrix(7)) {
        let (mins, args) = reduce::min_axis(&a, Axis::Cols);
        for (i, &arg) in args.iter().enumerate() {
            for j in 0..a.cols() {
                prop_assert!(mins.as_slice()[i] <= a.at2(i, j));
            }
            prop_assert!((mins.as_slice()[i] - a.at2(i, arg)).abs() < 1e-7);
        }
    }

    #[test]
    fn unfold_adjoint_identity(t in 4usize..20, len in 1usize..5, stride in 1usize..3) {
        prop_assume!(len <= t);
        let x = Tensor::from_fn([2, t], |i| ((i * 31) % 17) as f32 - 8.0);
        let w = unfold(&x, len, stride);
        prop_assert_eq!(w.rows(), count_windows(t, len, stride));
        let g = Tensor::from_fn([w.rows(), w.cols()], |i| ((i * 7) % 13) as f32 - 6.0);
        let lhs = w.dot(&g);
        let rhs = x.dot(&unfold_backward(&g, 2, t, len, stride));
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn znorm_is_zero_mean(v in proptest::collection::vec(-100.0f32..100.0, 2..64)) {
        let z = crate::stats::znorm(&v);
        let m = crate::stats::mean(&z);
        prop_assert!(m.abs() < 1e-3);
    }
}

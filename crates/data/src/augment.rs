//! Stochastic augmentations used to form contrastive views.
//!
//! CSL's Multi-Grained Contrasting builds positive pairs from random crops
//! of the same series at several *grains* (crop-length fractions); the
//! remaining transforms (jitter, scaling, masking) are standard view
//! perturbations that leave class identity intact.

use crate::dataset::TimeSeries;
use rand::Rng;
use tcsl_tensor::rng::gauss;

/// A random contiguous crop of exactly `len` steps.
pub fn random_crop(s: &TimeSeries, len: usize, rng: &mut impl Rng) -> TimeSeries {
    let t = s.len();
    assert!(
        len >= 1 && len <= t,
        "crop length {len} invalid for series of length {t}"
    );
    let start = if len == t {
        0
    } else {
        rng.gen_range(0..=t - len)
    };
    s.crop(start, len)
}

/// A random crop whose length is `frac` of the series (at least `min_len`).
pub fn random_crop_frac(
    s: &TimeSeries,
    frac: f32,
    min_len: usize,
    rng: &mut impl Rng,
) -> TimeSeries {
    assert!(frac > 0.0 && frac <= 1.0, "crop fraction must be in (0, 1]");
    let len = ((s.len() as f32 * frac).round() as usize).clamp(min_len.min(s.len()), s.len());
    random_crop(s, len, rng)
}

/// Adds iid Gaussian noise of standard deviation `sigma`.
pub fn jitter(s: &TimeSeries, sigma: f32, rng: &mut impl Rng) -> TimeSeries {
    let mut t = s.values().clone();
    for x in t.as_mut_slice() {
        *x += sigma * gauss(rng);
    }
    TimeSeries::new(t)
}

/// Multiplies each variable by an independent random factor from
/// `N(1, sigma²)` (magnitude scaling).
pub fn scaling(s: &TimeSeries, sigma: f32, rng: &mut impl Rng) -> TimeSeries {
    let mut t = s.values().clone();
    for v in 0..s.n_vars() {
        let factor = 1.0 + sigma * gauss(rng);
        for x in t.row_mut(v) {
            *x *= factor;
        }
    }
    TimeSeries::new(t)
}

/// Zeroes a random contiguous time span of `frac` of the series on all
/// variables (time masking).
pub fn time_mask(s: &TimeSeries, frac: f32, rng: &mut impl Rng) -> TimeSeries {
    assert!(
        (0.0..1.0).contains(&frac),
        "mask fraction must be in [0, 1)"
    );
    let t = s.len();
    let span = ((t as f32) * frac).round() as usize;
    if span == 0 {
        return s.clone();
    }
    let start = rng.gen_range(0..=t - span);
    let mut out = s.values().clone();
    for v in 0..s.n_vars() {
        for x in &mut out.row_mut(v)[start..start + span] {
            *x = 0.0;
        }
    }
    TimeSeries::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    fn series() -> TimeSeries {
        TimeSeries::multivariate(vec![
            (0..32).map(|i| i as f32).collect(),
            (0..32).map(|i| -(i as f32)).collect(),
        ])
    }

    #[test]
    fn crop_has_requested_length() {
        let s = series();
        let mut rng = seeded(1);
        for _ in 0..10 {
            let c = random_crop(&s, 7, &mut rng);
            assert_eq!(c.len(), 7);
            assert_eq!(c.n_vars(), 2);
            // Crop content is a contiguous run of the source.
            let start = c.variable(0)[0] as usize;
            let expect: Vec<f32> = (start..start + 7).map(|i| i as f32).collect();
            assert_eq!(c.variable(0), &expect[..]);
        }
    }

    #[test]
    fn full_length_crop_is_identity() {
        let s = series();
        let mut rng = seeded(2);
        let c = random_crop(&s, 32, &mut rng);
        assert_eq!(&c, &s);
    }

    #[test]
    fn crop_frac_clamps_to_min_len() {
        let s = series();
        let mut rng = seeded(3);
        let c = random_crop_frac(&s, 0.01, 5, &mut rng);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn jitter_changes_but_stays_close() {
        let s = series();
        let mut rng = seeded(4);
        let j = jitter(&s, 0.1, &mut rng);
        assert_ne!(j, s);
        let max_dev = s.values().max_abs_diff(j.values());
        assert!(max_dev < 1.0, "jitter too large: {max_dev}");
    }

    #[test]
    fn scaling_preserves_zero_crossings() {
        let s = TimeSeries::univariate(vec![1.0, -1.0, 2.0, -2.0]);
        let mut rng = seeded(5);
        let sc = scaling(&s, 0.2, &mut rng);
        for (a, b) in s.variable(0).iter().zip(sc.variable(0)) {
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn time_mask_zeroes_one_span() {
        let s = series();
        let mut rng = seeded(6);
        let m = time_mask(&s, 0.25, &mut rng);
        let zeros = m.variable(0).iter().filter(|&&x| x == 0.0).count();
        assert!(zeros >= 8, "expected a masked span, found {zeros} zeros");
    }

    #[test]
    fn zero_mask_fraction_is_identity() {
        let s = series();
        let mut rng = seeded(7);
        assert_eq!(time_mask(&s, 0.0, &mut rng), s);
    }
}

//! Core containers: a single (multivariate) series and a labeled collection.

use tcsl_tensor::window::window_at;
use tcsl_tensor::Tensor;

/// One multivariate time series: `D` variables observed at `T` time steps,
/// stored as a `(D, T)` tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    values: Tensor,
}

impl TimeSeries {
    /// Wraps a `(D, T)` tensor.
    pub fn new(values: Tensor) -> Self {
        assert_eq!(values.rank(), 2, "a time series is a (D, T) tensor");
        assert!(
            values.dim(0) >= 1 && values.dim(1) >= 1,
            "empty time series"
        );
        TimeSeries { values }
    }

    /// Fallible [`Self::new`] for request-path construction: a non-rank-2
    /// or empty tensor is a typed error instead of a panic.
    pub fn try_new(values: Tensor) -> tcsl_error::TcslResult<Self> {
        if values.rank() != 2 {
            return Err(tcsl_error::TcslError::shape_mismatch(
                "time series tensor rank",
                2,
                values.rank(),
            ));
        }
        if values.dim(0) == 0 || values.dim(1) == 0 {
            return Err(tcsl_error::TcslError::empty("time series"));
        }
        Ok(TimeSeries { values })
    }

    /// A univariate series from raw samples.
    pub fn univariate(samples: Vec<f32>) -> Self {
        let t = samples.len();
        Self::new(Tensor::from_vec(samples, [1, t]))
    }

    /// A multivariate series from per-variable sample vectors (all equal
    /// length).
    pub fn multivariate(vars: Vec<Vec<f32>>) -> Self {
        assert!(!vars.is_empty(), "need at least one variable");
        let t = vars[0].len();
        let d = vars.len();
        let mut flat = Vec::with_capacity(d * t);
        for v in &vars {
            assert_eq!(v.len(), t, "all variables must share the same length");
            flat.extend_from_slice(v);
        }
        Self::new(Tensor::from_vec(flat, [d, t]))
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.values.dim(0)
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.values.dim(1)
    }

    /// Whether the series has zero observations (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying `(D, T)` tensor.
    pub fn values(&self) -> &Tensor {
        &self.values
    }

    /// Samples of variable `v`.
    pub fn variable(&self, v: usize) -> &[f32] {
        self.values.row(v)
    }

    /// Contiguous crop `[start, start+len)` across all variables.
    pub fn crop(&self, start: usize, len: usize) -> TimeSeries {
        TimeSeries::new(window_at(&self.values, start, len))
    }

    /// Per-variable z-normalized copy.
    pub fn znormed(&self) -> TimeSeries {
        let mut out = self.values.clone();
        for v in 0..self.n_vars() {
            tcsl_tensor::stats::znorm_inplace(out.row_mut(v));
        }
        TimeSeries::new(out)
    }
}

/// A named collection of time series with optional integer labels.
///
/// Series may have different lengths (the shapelet representation is
/// length-agnostic); variables counts must agree.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (for reports).
    pub name: String,
    series: Vec<TimeSeries>,
    labels: Option<Vec<usize>>,
}

impl Dataset {
    /// Unlabeled dataset.
    pub fn unlabeled(name: impl Into<String>, series: Vec<TimeSeries>) -> Self {
        let ds = Dataset {
            name: name.into(),
            series,
            labels: None,
        };
        ds.validate();
        ds
    }

    /// Labeled dataset (one label per series).
    pub fn labeled(name: impl Into<String>, series: Vec<TimeSeries>, labels: Vec<usize>) -> Self {
        assert_eq!(series.len(), labels.len(), "one label per series required");
        let ds = Dataset {
            name: name.into(),
            series,
            labels: Some(labels),
        };
        ds.validate();
        ds
    }

    fn validate(&self) {
        if let Some(first) = self.series.first() {
            let d = first.n_vars();
            for (i, s) in self.series.iter().enumerate() {
                assert_eq!(
                    s.n_vars(),
                    d,
                    "series {i} has {} variables, dataset has {d}",
                    s.n_vars()
                );
            }
        }
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the dataset holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Number of variables per series (0 for an empty dataset).
    pub fn n_vars(&self) -> usize {
        self.series.first().map_or(0, TimeSeries::n_vars)
    }

    /// Length of the shortest series (0 for an empty dataset).
    pub fn min_len(&self) -> usize {
        self.series.iter().map(TimeSeries::len).min().unwrap_or(0)
    }

    /// Length of the longest series (0 for an empty dataset).
    pub fn max_len(&self) -> usize {
        self.series.iter().map(TimeSeries::len).max().unwrap_or(0)
    }

    /// Series `i`.
    pub fn series(&self, i: usize) -> &TimeSeries {
        &self.series[i]
    }

    /// All series.
    pub fn all_series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Labels, if present.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Label of series `i`. Panics if unlabeled.
    // Panic-by-contract accessor; callers check `labels()` first.
    #[allow(clippy::disallowed_methods)]
    pub fn label(&self, i: usize) -> usize {
        self.labels.as_ref().expect("dataset is unlabeled")[i]
    }

    /// Number of distinct classes (0 if unlabeled).
    pub fn n_classes(&self) -> usize {
        match &self.labels {
            None => 0,
            Some(ls) => ls.iter().copied().max().map_or(0, |m| m + 1),
        }
    }

    /// Subset by indices (labels carried along).
    pub fn subset(&self, indices: &[usize], name: impl Into<String>) -> Dataset {
        let series = indices.iter().map(|&i| self.series[i].clone()).collect();
        match &self.labels {
            None => Dataset::unlabeled(name, series),
            Some(ls) => Dataset::labeled(name, series, indices.iter().map(|&i| ls[i]).collect()),
        }
    }

    /// Per-variable z-normalized copy of every series.
    pub fn znormed(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            series: self.series.iter().map(TimeSeries::znormed).collect(),
            labels: self.labels.clone(),
        }
    }

    /// Strips labels (for unsupervised pre-training).
    pub fn without_labels(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            series: self.series.clone(),
            labels: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let s0 = TimeSeries::univariate(vec![1.0, 2.0, 3.0, 4.0]);
        let s1 = TimeSeries::univariate(vec![4.0, 3.0, 2.0, 1.0]);
        let s2 = TimeSeries::univariate(vec![0.0, 0.0, 1.0, 1.0]);
        Dataset::labeled("toy", vec![s0, s1, s2], vec![0, 1, 0])
    }

    #[test]
    fn series_basics() {
        let s = TimeSeries::multivariate(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(s.n_vars(), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.variable(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn crop_is_window() {
        let s = TimeSeries::univariate(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let c = s.crop(1, 3);
        assert_eq!(c.variable(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn znorm_per_variable() {
        let s = TimeSeries::multivariate(vec![vec![0.0, 2.0], vec![10.0, 10.0]]);
        let z = s.znormed();
        assert!((z.variable(0)[0] + 1.0).abs() < 1e-5);
        // Constant variable is centred, not blown up.
        assert!(z.variable(1).iter().all(|x| x.abs() < 1e-6));
    }

    #[test]
    fn dataset_accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_vars(), 1);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.label(1), 1);
        assert_eq!(ds.min_len(), 4);
    }

    #[test]
    fn subset_preserves_labels() {
        let ds = toy();
        let sub = ds.subset(&[2, 0], "sub");
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.label(0), 0);
        assert_eq!(sub.series(1).variable(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn without_labels_strips() {
        let ds = toy().without_labels();
        assert!(ds.labels().is_none());
        assert_eq!(ds.n_classes(), 0);
    }

    #[test]
    #[should_panic(expected = "one label per series")]
    fn label_count_mismatch_panics() {
        let s = TimeSeries::univariate(vec![1.0]);
        Dataset::labeled("bad", vec![s], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "variables")]
    fn mixed_variable_counts_panic() {
        let a = TimeSeries::univariate(vec![1.0, 2.0]);
        let b = TimeSeries::multivariate(vec![vec![1.0], vec![2.0]]);
        Dataset::unlabeled("bad", vec![a, b]);
    }

    #[test]
    fn variable_length_series_allowed() {
        let a = TimeSeries::univariate(vec![1.0, 2.0]);
        let b = TimeSeries::univariate(vec![1.0, 2.0, 3.0, 4.0]);
        let ds = Dataset::unlabeled("varlen", vec![a, b]);
        assert_eq!(ds.min_len(), 2);
        assert_eq!(ds.max_len(), 4);
    }
}

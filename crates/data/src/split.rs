//! Train/test splitting and k-fold cross-validation.

use crate::dataset::Dataset;
use rand::Rng;
use tcsl_tensor::rng::permutation;

/// Splits `ds` into `(train, test)` with `test_frac` of the series held out.
/// When the dataset is labeled the split is stratified per class; otherwise
/// it is a uniform shuffle.
pub fn train_test_split(ds: &Dataset, test_frac: f32, rng: &mut impl Rng) -> (Dataset, Dataset) {
    assert!(
        (0.0..1.0).contains(&test_frac),
        "test_frac must be in [0, 1)"
    );
    let (train_idx, test_idx) = split_indices(ds, test_frac, rng);
    (
        ds.subset(&train_idx, format!("{}-train", ds.name)),
        ds.subset(&test_idx, format!("{}-test", ds.name)),
    )
}

fn split_indices(ds: &Dataset, test_frac: f32, rng: &mut impl Rng) -> (Vec<usize>, Vec<usize>) {
    match ds.labels() {
        Some(labels) => {
            let n_classes = ds.n_classes();
            let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
            for (i, &l) in labels.iter().enumerate() {
                per_class[l].push(i);
            }
            let mut train = Vec::new();
            let mut test = Vec::new();
            for mut members in per_class {
                let perm = permutation(rng, members.len());
                let mut shuffled: Vec<usize> = perm.into_iter().map(|p| members[p]).collect();
                members.clear();
                let n_test = ((shuffled.len() as f32) * test_frac).round() as usize;
                let n_test = n_test.min(shuffled.len().saturating_sub(1));
                test.extend(shuffled.drain(..n_test));
                train.extend(shuffled);
            }
            train.sort_unstable();
            test.sort_unstable();
            (train, test)
        }
        None => {
            let perm = permutation(rng, ds.len());
            let n_test = ((ds.len() as f32) * test_frac).round() as usize;
            let (test, train) = perm.split_at(n_test);
            let mut train = train.to_vec();
            let mut test = test.to_vec();
            train.sort_unstable();
            test.sort_unstable();
            (train, test)
        }
    }
}

/// Keeps a labeled fraction: returns `(labeled, unlabeled)` subsets, with the
/// labeled portion stratified. Used by the semi-supervised experiment (E3).
pub fn label_fraction_split(
    ds: &Dataset,
    labeled_frac: f32,
    rng: &mut impl Rng,
) -> (Dataset, Dataset) {
    assert!(
        (0.0..=1.0).contains(&labeled_frac),
        "labeled_frac must be in [0, 1]"
    );
    if labeled_frac >= 1.0 {
        return (ds.clone(), ds.subset(&[], format!("{}-rest", ds.name)));
    }
    let (rest, labeled) = split_indices(ds, labeled_frac, rng);
    // `split_indices` treats the fraction as the *test* share; labelled set
    // is the held-out part here. Ensure at least one labeled example per
    // class survives (stratification guarantees this when frac > 0).
    (
        ds.subset(&labeled, format!("{}-labeled", ds.name)),
        ds.subset(&rest, format!("{}-rest", ds.name)),
    )
}

/// Yields `(train, validation)` index pairs for `k`-fold cross-validation.
pub fn k_fold(n: usize, k: usize, rng: &mut impl Rng) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= k, "need at least k items");
    let perm = permutation(rng, n);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &idx) in perm.iter().enumerate() {
        folds[i % k].push(idx);
    }
    (0..k)
        .map(|held| {
            let val = folds[held].clone();
            let mut train = Vec::with_capacity(n - val.len());
            for (f, fold) in folds.iter().enumerate() {
                if f != held {
                    train.extend_from_slice(fold);
                }
            }
            (train, val)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TimeSeries;
    use tcsl_tensor::rng::seeded;

    fn labeled(n_per_class: usize, classes: usize) -> Dataset {
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for c in 0..classes {
            for i in 0..n_per_class {
                series.push(TimeSeries::univariate(vec![c as f32, i as f32, 0.0, 0.0]));
                labels.push(c);
            }
        }
        Dataset::labeled("lab", series, labels)
    }

    #[test]
    fn stratified_split_keeps_class_balance() {
        let ds = labeled(10, 3);
        let mut rng = seeded(1);
        let (train, test) = train_test_split(&ds, 0.3, &mut rng);
        assert_eq!(train.len(), 21);
        assert_eq!(test.len(), 9);
        for c in 0..3 {
            let train_c = train.labels().unwrap().iter().filter(|&&l| l == c).count();
            let test_c = test.labels().unwrap().iter().filter(|&&l| l == c).count();
            assert_eq!(train_c, 7);
            assert_eq!(test_c, 3);
        }
    }

    #[test]
    fn split_partitions_everything() {
        let ds = labeled(6, 2);
        let mut rng = seeded(2);
        let (train, test) = train_test_split(&ds, 0.5, &mut rng);
        assert_eq!(train.len() + test.len(), ds.len());
    }

    #[test]
    fn unlabeled_split() {
        let series = (0..10)
            .map(|i| TimeSeries::univariate(vec![i as f32, 0.0]))
            .collect();
        let ds = Dataset::unlabeled("u", series);
        let mut rng = seeded(3);
        let (train, test) = train_test_split(&ds, 0.2, &mut rng);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
    }

    #[test]
    fn label_fraction_keeps_every_class() {
        let ds = labeled(10, 4);
        let mut rng = seeded(4);
        let (labeled_set, rest) = label_fraction_split(&ds, 0.1, &mut rng);
        assert_eq!(labeled_set.len() + rest.len(), ds.len());
        // 10% of 10-per-class = 1 per class.
        for c in 0..4 {
            assert!(labeled_set.labels().unwrap().contains(&c), "class {c} lost");
        }
    }

    #[test]
    fn label_fraction_one_is_identity() {
        let ds = labeled(3, 2);
        let mut rng = seeded(5);
        let (labeled_set, rest) = label_fraction_split(&ds, 1.0, &mut rng);
        assert_eq!(labeled_set.len(), ds.len());
        assert!(rest.is_empty());
    }

    #[test]
    fn k_fold_covers_all_indices_once() {
        let mut rng = seeded(6);
        let folds = k_fold(17, 4, &mut rng);
        assert_eq!(folds.len(), 4);
        let mut seen = [0usize; 17];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 17);
            for &i in val {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index validated exactly once"
        );
    }
}

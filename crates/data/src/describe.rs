//! Dataset summaries — the "what am I looking at?" panel of an exploration
//! session and the CLI's `info` command.

use crate::dataset::Dataset;
use std::fmt;

/// Descriptive statistics of a dataset.
#[derive(Clone, Debug)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of series.
    pub n_series: usize,
    /// Variables per series.
    pub n_vars: usize,
    /// Shortest series length.
    pub min_len: usize,
    /// Longest series length.
    pub max_len: usize,
    /// Mean series length.
    pub mean_len: f64,
    /// Per-class series counts (empty when unlabeled).
    pub class_counts: Vec<usize>,
    /// Global per-variable `(mean, std)` over all series.
    pub variable_stats: Vec<(f64, f64)>,
}

/// Computes a [`DatasetSummary`].
pub fn describe(ds: &Dataset) -> DatasetSummary {
    assert!(!ds.is_empty(), "cannot describe an empty dataset");
    let lengths: Vec<usize> = ds.all_series().iter().map(|s| s.len()).collect();
    let mean_len = lengths.iter().sum::<usize>() as f64 / lengths.len() as f64;

    let mut class_counts = vec![0usize; ds.n_classes()];
    if let Some(labels) = ds.labels() {
        for &l in labels {
            class_counts[l] += 1;
        }
    }

    let d = ds.n_vars();
    let mut sums = vec![0.0f64; d];
    let mut sq_sums = vec![0.0f64; d];
    let mut counts = vec![0usize; d];
    for s in ds.all_series() {
        for v in 0..d {
            for &x in s.variable(v) {
                sums[v] += x as f64;
                sq_sums[v] += (x as f64) * (x as f64);
                counts[v] += 1;
            }
        }
    }
    let variable_stats: Vec<(f64, f64)> = (0..d)
        .map(|v| {
            let n = counts[v] as f64;
            let mean = sums[v] / n;
            let var = (sq_sums[v] / n - mean * mean).max(0.0);
            (mean, var.sqrt())
        })
        .collect();

    DatasetSummary {
        name: ds.name.clone(),
        n_series: ds.len(),
        n_vars: d,
        min_len: ds.min_len(),
        max_len: ds.max_len(),
        mean_len,
        class_counts,
        variable_stats,
    }
}

impl fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dataset {}", self.name)?;
        writeln!(
            f,
            "  series: {}   variables: {}",
            self.n_series, self.n_vars
        )?;
        if self.min_len == self.max_len {
            writeln!(f, "  length: {}", self.min_len)?;
        } else {
            writeln!(
                f,
                "  length: {}..{} (mean {:.1})",
                self.min_len, self.max_len, self.mean_len
            )?;
        }
        if self.class_counts.is_empty() {
            writeln!(f, "  labels: none")?;
        } else {
            let counts: Vec<String> = self
                .class_counts
                .iter()
                .enumerate()
                .map(|(c, n)| format!("{c}:{n}"))
                .collect();
            writeln!(
                f,
                "  classes ({}): {}",
                self.class_counts.len(),
                counts.join("  ")
            )?;
        }
        for (v, (mean, std)) in self.variable_stats.iter().enumerate() {
            writeln!(f, "  var {v}: mean {mean:.3}, std {std:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TimeSeries;

    fn ds() -> Dataset {
        Dataset::labeled(
            "toy",
            vec![
                TimeSeries::multivariate(vec![vec![0.0, 2.0], vec![10.0, 10.0]]),
                TimeSeries::multivariate(vec![vec![4.0, 6.0, 8.0], vec![10.0, 10.0, 10.0]]),
            ],
            vec![0, 1],
        )
    }

    #[test]
    fn summary_values() {
        let s = describe(&ds());
        assert_eq!(s.n_series, 2);
        assert_eq!(s.n_vars, 2);
        assert_eq!(s.min_len, 2);
        assert_eq!(s.max_len, 3);
        assert!((s.mean_len - 2.5).abs() < 1e-9);
        assert_eq!(s.class_counts, vec![1, 1]);
        // Variable 0 over all samples: 0,2,4,6,8 → mean 4.
        assert!((s.variable_stats[0].0 - 4.0).abs() < 1e-6);
        // Variable 1 is constant 10 → std 0.
        assert!(s.variable_stats[1].1.abs() < 1e-6);
    }

    #[test]
    fn display_is_human_readable() {
        let text = describe(&ds()).to_string();
        assert!(text.contains("dataset toy"));
        assert!(text.contains("series: 2"));
        assert!(text.contains("classes (2)"));
        assert!(text.contains("var 1: mean 10.000"));
    }

    #[test]
    fn unlabeled_summary() {
        let s = describe(&ds().without_labels());
        assert!(s.class_counts.is_empty());
        assert!(s.to_string().contains("labels: none"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_rejected() {
        describe(&Dataset::unlabeled("e", vec![]));
    }
}

#![warn(missing_docs)]
// Index-based loops in the numeric kernels walk several parallel
// buffers at once; iterator rewrites obscure that correspondence.
#![allow(clippy::needless_range_loop)]
// The error wall (clippy.toml) exempts test builds: tests assert on values
// and unwrap() freely.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]
//! # tcsl-data
//!
//! Time series data handling for TimeCSL: containers ([`TimeSeries`],
//! [`Dataset`]), normalization, train/test splitting, contrastive-view
//! augmentations, a CSV persistence layer plus a sktime/UEA `.ts` parser
//! ([`io`], [`io_ts`]), dataset summaries ([`describe`]), and — in place of the
//! UEA archive the paper demos on — a registry of synthetic dataset families
//! ([`synth`], [`archive`]) whose class structure is carried by localized
//! discriminative subsequences, the regime shapelet methods are designed
//! for. Adversarial families (periodic signals violating the
//! "distant-in-time ⇒ dissimilar" assumption) reproduce the failure modes
//! the paper's introduction attributes to prior work.

pub mod archive;
pub mod augment;
pub mod dataset;
pub mod describe;
pub mod io;
pub mod io_ts;
pub mod normalize;
pub mod split;
pub mod synth;

pub use dataset::{Dataset, TimeSeries};

#[cfg(test)]
mod proptests;

//! CSV persistence for datasets and feature matrices.
//!
//! The format is a self-describing long CSV: a header line, then one row per
//! `(series, variable, timestep)` observation. This keeps the layer
//! dependency-free while remaining loadable in any external tool.
//!
//! ```text
//! series,label,variable,t,value
//! 0,1,0,0,0.52
//! ...
//! ```

use crate::dataset::{Dataset, TimeSeries};
use std::fmt::Write as _;
use std::path::Path;
use tcsl_error::{TcslError, TcslResult};

/// Serializes a dataset to the long-CSV string format.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    out.push_str("series,label,variable,t,value\n");
    for (i, s) in ds.all_series().iter().enumerate() {
        let label = ds.labels().map(|ls| ls[i] as i64).unwrap_or(-1);
        for v in 0..s.n_vars() {
            for (t, &x) in s.variable(v).iter().enumerate() {
                // `write!` to a String cannot fail.
                let _ = writeln!(out, "{i},{label},{v},{t},{x}");
            }
        }
    }
    out
}

/// Parses the long-CSV format back into a dataset.
///
/// Returns `Err` on malformed rows; a label of `-1` on every row yields an
/// unlabeled dataset.
pub fn from_csv(name: &str, text: &str) -> TcslResult<Dataset> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| TcslError::empty(format!("csv {name}")))?;
    if header.trim() != "series,label,variable,t,value" {
        return Err(TcslError::parse(
            name,
            1,
            format!("unexpected header: {header}"),
        ));
    }
    // rows[series][variable] = samples in t order.
    let mut rows: Vec<Vec<Vec<f32>>> = Vec::new();
    let mut labels: Vec<i64> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| TcslError::parse(name, lineno + 2, format!("missing {what}")))
        };
        let series: usize = next("series")?
            .parse()
            .map_err(|e| TcslError::parse(name, lineno + 2, format!("bad series: {e}")))?;
        let label: i64 = next("label")?
            .parse()
            .map_err(|e| TcslError::parse(name, lineno + 2, format!("bad label: {e}")))?;
        let var: usize = next("variable")?
            .parse()
            .map_err(|e| TcslError::parse(name, lineno + 2, format!("bad variable: {e}")))?;
        let t: usize = next("t")?
            .parse()
            .map_err(|e| TcslError::parse(name, lineno + 2, format!("bad t: {e}")))?;
        let value: f32 = next("value")?
            .parse()
            .map_err(|e| TcslError::parse(name, lineno + 2, format!("bad value: {e}")))?;
        while rows.len() <= series {
            rows.push(Vec::new());
            labels.push(-1);
        }
        labels[series] = label;
        let vars = &mut rows[series];
        while vars.len() <= var {
            vars.push(Vec::new());
        }
        if vars[var].len() != t {
            return Err(TcslError::parse(
                name,
                lineno + 2,
                format!(
                    "out-of-order t={t} for series {series} var {var} (expected {})",
                    vars[var].len()
                ),
            ));
        }
        vars[var].push(value);
    }
    if rows.is_empty() {
        return Err(TcslError::empty(format!(
            "csv {name} contains no observations"
        )));
    }
    // Validate before constructing: `TimeSeries::multivariate` treats these
    // as internal invariants (panics), but here they are user data.
    let mut series = Vec::with_capacity(rows.len());
    for (i, vars) in rows.into_iter().enumerate() {
        if vars.is_empty() {
            return Err(TcslError::parse(
                name,
                0,
                format!(
                    "series {i} has no observations — series indices must be contiguous from 0"
                ),
            ));
        }
        let t0 = vars[0].len();
        if let Some(v) = vars.iter().position(|v| v.len() != t0) {
            return Err(TcslError::parse(
                name,
                0,
                format!(
                    "series {i}: variable {v} has {} samples but variable 0 has {t0} — all \
                     variables of a series must cover the same timesteps",
                    vars[v].len()
                ),
            ));
        }
        series.push(TimeSeries::multivariate(vars));
    }
    if labels.iter().all(|&l| l < 0) {
        Ok(Dataset::unlabeled(name, series))
    } else if labels.iter().all(|&l| l >= 0) {
        Ok(Dataset::labeled(
            name,
            series,
            labels.into_iter().map(|l| l as usize).collect(),
        ))
    } else {
        Err(TcslError::parse(
            name,
            0,
            "mixed labeled and unlabeled series",
        ))
    }
}

/// Writes a dataset to a CSV file.
pub fn save_csv(ds: &Dataset, path: impl AsRef<Path>) -> TcslResult<()> {
    tcsl_error::write_file(path, to_csv(ds))
}

/// Reads a dataset from a CSV file.
pub fn load_csv(name: &str, path: impl AsRef<Path>) -> TcslResult<Dataset> {
    let text = tcsl_error::read_to_string(path)?;
    from_csv(name, &text)
}

/// Serializes a feature matrix (rank-2 tensor) with column names to CSV.
pub fn matrix_to_csv(m: &tcsl_tensor::Tensor, column_names: &[String]) -> String {
    assert_eq!(m.cols(), column_names.len(), "one name per column required");
    let mut out = String::new();
    out.push_str(&column_names.join(","));
    out.push('\n');
    for i in 0..m.rows() {
        let row: Vec<String> = m.row(i).iter().map(|x| x.to_string()).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::labeled(
            "toy",
            vec![
                TimeSeries::multivariate(vec![vec![1.0, 2.0], vec![3.0, 4.0]]),
                TimeSeries::multivariate(vec![vec![-1.0, 0.5], vec![0.25, -0.125]]),
            ],
            vec![0, 1],
        )
    }

    #[test]
    fn round_trip_labeled() {
        let ds = toy();
        let text = to_csv(&ds);
        let back = from_csv("toy", &text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.labels().unwrap(), &[0, 1]);
        assert_eq!(back.series(0).variable(1), &[3.0, 4.0]);
        assert_eq!(back.series(1).variable(0), &[-1.0, 0.5]);
    }

    #[test]
    fn round_trip_unlabeled() {
        let ds = toy().without_labels();
        let back = from_csv("u", &to_csv(&ds)).unwrap();
        assert!(back.labels().is_none());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tcsl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        let ds = toy();
        save_csv(&ds, &path).unwrap();
        let back = load_csv("toy", &path).unwrap();
        assert_eq!(back.len(), ds.len());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_csv("x", "nope\n1,2,3").is_err());
    }

    #[test]
    fn rejects_out_of_order_t() {
        let text = "series,label,variable,t,value\n0,0,0,1,5.0\n";
        assert!(from_csv("x", text).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(from_csv("x", "series,label,variable,t,value\n").is_err());
        assert!(from_csv("x", "").is_err());
    }

    #[test]
    fn rejects_garbage_value() {
        let text = "series,label,variable,t,value\n0,0,0,0,abc\n";
        assert!(from_csv("x", text).is_err());
    }

    #[test]
    fn rejects_gap_in_series_indices() {
        // Series 1 never appears; previously this panicked inside
        // TimeSeries::multivariate instead of returning Err.
        let text = "series,label,variable,t,value\n0,0,0,0,1.0\n2,0,0,0,2.0\n";
        let err = from_csv("x", text).unwrap_err();
        assert!(err.to_string().contains("series 1"), "{err}");
    }

    #[test]
    fn rejects_ragged_variable_lengths() {
        // Variable 1 has fewer samples than variable 0; previously a panic.
        let text = "series,label,variable,t,value\n\
                    0,0,0,0,1.0\n0,0,0,1,2.0\n0,0,1,0,3.0\n";
        let err = from_csv("x", text).unwrap_err();
        assert!(err.to_string().contains("variable 1"), "{err}");
    }

    #[test]
    fn matrix_csv_has_header_and_rows() {
        let m = tcsl_tensor::Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let csv = matrix_to_csv(&m, &["a".into(), "b".into()]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("a,b"));
        assert_eq!(lines.next(), Some("1,2"));
        assert_eq!(lines.next(), Some("3,4"));
    }
}

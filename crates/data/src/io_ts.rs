//! Parser for the sktime/UEA `.ts` text format — so the prepared archive
//! can be swapped for the *real* UEA datasets the demo ships, without any
//! further tooling.
//!
//! Supported subset (the one the UEA classification archive uses):
//!
//! ```text
//! # comment
//! @problemName BasicMotions
//! @univariate false
//! @classLabel true walking running
//! @data
//! 1.0,2.0,3.0:4.0,5.0,6.0:walking
//! ```
//!
//! Dimensions are `:`-separated, samples `,`-separated, the class label (if
//! `@classLabel true`) is the final `:` field. Missing values (`?`) are
//! linearly bridged from their neighbours. String labels are mapped to
//! dense indices in first-appearance order (the mapping is returned).

use crate::dataset::{Dataset, TimeSeries};
use std::path::Path;
use tcsl_error::{TcslError, TcslResult};

/// A parsed `.ts` file: the dataset plus the label-name mapping
/// (`labels[i]` is the original string of class id `i`; empty when the
/// file is unlabeled).
#[derive(Clone, Debug)]
pub struct TsFile {
    /// The parsed dataset.
    pub dataset: Dataset,
    /// Original class-label strings by class id.
    pub class_names: Vec<String>,
}

/// Parses `.ts` text.
pub fn parse_ts(name: &str, text: &str) -> TcslResult<TsFile> {
    let bad = |line: usize, msg: String| TcslError::parse(name, line, msg);
    let mut has_class_label = false;
    let mut in_data = false;
    let mut series = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut class_names: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !in_data {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("@classlabel") {
                has_class_label = lower.split_whitespace().nth(1) == Some("true");
            } else if lower == "@data" {
                in_data = true;
            } else if lower.starts_with('@') {
                // Other headers (@problemName, @univariate, ...) are
                // informational for this reader.
            } else {
                return Err(bad(lineno + 1, "expected header or @data".into()));
            }
            continue;
        }
        // Data line: dim1:dim2:...[:label]
        let mut fields: Vec<&str> = line.split(':').collect();
        let label_field = if has_class_label {
            Some(
                fields
                    .pop()
                    .ok_or_else(|| bad(lineno + 1, "missing class label".into()))?,
            )
        } else {
            None
        };
        if fields.is_empty() {
            return Err(bad(lineno + 1, "no dimensions".into()));
        }
        let mut vars: Vec<Vec<f32>> = Vec::with_capacity(fields.len());
        for (d, field) in fields.iter().enumerate() {
            let mut samples = Vec::new();
            for tok in field.split(',') {
                let tok = tok.trim();
                if tok == "?" {
                    samples.push(f32::NAN); // bridged below
                } else {
                    samples.push(tok.parse::<f32>().map_err(|e| {
                        bad(lineno + 1, format!("dim {d}: bad value '{tok}': {e}"))
                    })?);
                }
            }
            bridge_missing(&mut samples);
            vars.push(samples);
        }
        let t0 = vars[0].len();
        if vars.iter().any(|v| v.len() != t0) {
            return Err(bad(lineno + 1, "dimensions have different lengths".into()));
        }
        series.push(TimeSeries::multivariate(vars));
        if let Some(label) = label_field {
            let label = label.trim().to_string();
            let id = match class_names.iter().position(|c| c == &label) {
                Some(id) => id,
                None => {
                    class_names.push(label);
                    class_names.len() - 1
                }
            };
            labels.push(id);
        }
    }
    if series.is_empty() {
        return Err(TcslError::empty(format!("ts {name}: no data lines found")));
    }
    let dataset = if has_class_label {
        Dataset::labeled(name, series, labels)
    } else {
        Dataset::unlabeled(name, series)
    };
    Ok(TsFile {
        dataset,
        class_names,
    })
}

/// Replaces NaN runs by linear interpolation between the nearest present
/// neighbours (constant extrapolation at the ends; all-missing → zeros).
fn bridge_missing(xs: &mut [f32]) {
    let n = xs.len();
    let mut i = 0;
    while i < n {
        if !xs[i].is_nan() {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && xs[i].is_nan() {
            i += 1;
        }
        let before = start.checked_sub(1).map(|b| xs[b]);
        let after = if i < n { Some(xs[i]) } else { None };
        match (before, after) {
            (Some(b), Some(a)) => {
                let run = (i - start) as f32 + 1.0;
                for (k, x) in xs[start..i].iter_mut().enumerate() {
                    let w = (k as f32 + 1.0) / run;
                    *x = b * (1.0 - w) + a * w;
                }
            }
            (Some(b), None) => xs[start..i].iter_mut().for_each(|x| *x = b),
            (None, Some(a)) => xs[start..i].iter_mut().for_each(|x| *x = a),
            (None, None) => xs[start..i].iter_mut().for_each(|x| *x = 0.0),
        }
    }
}

/// Loads a `.ts` file from disk.
pub fn load_ts(name: &str, path: impl AsRef<Path>) -> TcslResult<TsFile> {
    let text = tcsl_error::read_to_string(path)?;
    parse_ts(name, &text)
}

/// Serializes a dataset to `.ts` text (labels written as their ids, or the
/// provided class names).
pub fn to_ts(ds: &Dataset, class_names: Option<&[String]>) -> String {
    let mut out = String::new();
    out.push_str(&format!("@problemName {}\n", ds.name));
    out.push_str(&format!("@univariate {}\n", ds.n_vars() == 1));
    match ds.labels() {
        Some(_) => out.push_str("@classLabel true\n"),
        None => out.push_str("@classLabel false\n"),
    }
    out.push_str("@data\n");
    for (i, s) in ds.all_series().iter().enumerate() {
        let dims: Vec<String> = (0..s.n_vars())
            .map(|v| {
                s.variable(v)
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        out.push_str(&dims.join(":"));
        if let Some(ls) = ds.labels() {
            let label = ls[i];
            match class_names {
                Some(names) => out.push_str(&format!(":{}", names[label])),
                None => out.push_str(&format!(":{label}")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
@problemName Toy
@univariate false
@classLabel true walking running
@data
1.0,2.0,3.0:10.0,20.0,30.0:walking
4.0,5.0,6.0:40.0,50.0,60.0:running
7.0,8.0,9.0:70.0,80.0,90.0:walking
";

    #[test]
    fn parses_multivariate_labeled() {
        let f = parse_ts("toy", SAMPLE).unwrap();
        assert_eq!(f.dataset.len(), 3);
        assert_eq!(f.dataset.n_vars(), 2);
        assert_eq!(f.dataset.labels().unwrap(), &[0, 1, 0]);
        assert_eq!(f.class_names, vec!["walking", "running"]);
        assert_eq!(f.dataset.series(1).variable(1), &[40.0, 50.0, 60.0]);
    }

    #[test]
    fn parses_unlabeled_univariate() {
        let text = "@classLabel false\n@data\n1.0,2.0\n3.0,4.0\n";
        let f = parse_ts("u", text).unwrap();
        assert!(f.dataset.labels().is_none());
        assert_eq!(f.dataset.n_vars(), 1);
        assert_eq!(f.dataset.series(1).variable(0), &[3.0, 4.0]);
    }

    #[test]
    fn missing_values_are_bridged() {
        let text = "@classLabel false\n@data\n1.0,?,3.0,?,?,6.0\n?,2.0\n";
        let f = parse_ts("m", text).unwrap();
        assert_eq!(
            f.dataset.series(0).variable(0),
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
        // Leading missing extrapolates from the first present value.
        assert_eq!(f.dataset.series(1).variable(0), &[2.0, 2.0]);
    }

    #[test]
    fn round_trip_through_to_ts() {
        let f = parse_ts("toy", SAMPLE).unwrap();
        let text = to_ts(&f.dataset, Some(&f.class_names));
        let back = parse_ts("toy2", &text).unwrap();
        assert_eq!(back.dataset.len(), f.dataset.len());
        assert_eq!(back.dataset.labels(), f.dataset.labels());
        assert_eq!(back.class_names, f.class_names);
        assert_eq!(back.dataset.series(2), f.dataset.series(2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_ts("x", "").is_err());
        assert!(parse_ts("x", "@data\n").is_err());
        assert!(parse_ts("x", "not a header\n@data\n1.0\n").is_err());
        assert!(parse_ts("x", "@classLabel true a b\n@data\n1.0,abc:a\n").is_err());
        // Ragged dimensions.
        assert!(parse_ts("x", "@classLabel false\n@data\n1.0,2.0:3.0\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tcsl_ts_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.ts");
        std::fs::write(&path, SAMPLE).unwrap();
        let f = load_ts("toy", &path).unwrap();
        assert_eq!(f.dataset.len(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_missing_dimension_becomes_zeros() {
        let text = "@classLabel false\n@data\n?,?,?\n";
        let f = parse_ts("z", text).unwrap();
        assert_eq!(f.dataset.series(0).variable(0), &[0.0, 0.0, 0.0]);
    }
}

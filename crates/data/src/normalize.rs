//! Normalization strategies for time series.

use crate::dataset::{Dataset, TimeSeries};

/// How to normalize series before learning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Per-series, per-variable z-normalization (the paper's default).
    #[default]
    ZScore,
    /// Per-series, per-variable min-max scaling to `[0, 1]`.
    MinMax,
    /// Leave values untouched.
    None,
}

impl Normalization {
    /// Stable serialization token (used by the model file format).
    pub fn name(self) -> &'static str {
        match self {
            Normalization::ZScore => "zscore",
            Normalization::MinMax => "minmax",
            Normalization::None => "none",
        }
    }

    /// Parses a token produced by [`Self::name`].
    pub fn parse(s: &str) -> Option<Normalization> {
        match s {
            "zscore" => Some(Normalization::ZScore),
            "minmax" => Some(Normalization::MinMax),
            "none" => Some(Normalization::None),
            _ => None,
        }
    }

    /// All variants, for exhaustive round-trip tests.
    pub const ALL: [Normalization; 3] = [
        Normalization::ZScore,
        Normalization::MinMax,
        Normalization::None,
    ];
}

/// Applies a normalization to one series.
pub fn normalize_series(s: &TimeSeries, how: Normalization) -> TimeSeries {
    match how {
        Normalization::None => s.clone(),
        Normalization::ZScore => s.znormed(),
        Normalization::MinMax => {
            let mut t = s.values().clone();
            for v in 0..s.n_vars() {
                let row = t.row_mut(v);
                let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let span = hi - lo;
                if span > 1e-8 {
                    for x in row.iter_mut() {
                        *x = (*x - lo) / span;
                    }
                } else {
                    for x in row.iter_mut() {
                        *x = 0.0;
                    }
                }
            }
            TimeSeries::new(t)
        }
    }
}

/// Applies a normalization to every series of a dataset.
pub fn normalize_dataset(ds: &Dataset, how: Normalization) -> Dataset {
    let series = ds
        .all_series()
        .iter()
        .map(|s| normalize_series(s, how))
        .collect();
    match ds.labels() {
        None => Dataset::unlabeled(ds.name.clone(), series),
        Some(ls) => Dataset::labeled(ds.name.clone(), series, ls.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_standardizes() {
        let s = TimeSeries::univariate(vec![2.0, 4.0, 6.0, 8.0]);
        let z = normalize_series(&s, Normalization::ZScore);
        let vals = z.variable(0);
        let mean: f32 = vals.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn minmax_hits_bounds() {
        let s = TimeSeries::univariate(vec![1.0, 3.0, 5.0]);
        let m = normalize_series(&s, Normalization::MinMax);
        assert_eq!(m.variable(0), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn minmax_constant_is_zeroed() {
        let s = TimeSeries::univariate(vec![7.0, 7.0]);
        let m = normalize_series(&s, Normalization::MinMax);
        assert_eq!(m.variable(0), &[0.0, 0.0]);
    }

    #[test]
    fn none_is_identity() {
        let s = TimeSeries::univariate(vec![1.0, -1.0]);
        assert_eq!(normalize_series(&s, Normalization::None), s);
    }

    #[test]
    fn name_parse_round_trip() {
        for n in Normalization::ALL {
            assert_eq!(Normalization::parse(n.name()), Some(n));
        }
        assert_eq!(Normalization::parse("bogus"), None);
    }

    #[test]
    fn dataset_normalization_keeps_labels() {
        let ds = Dataset::labeled("d", vec![TimeSeries::univariate(vec![0.0, 10.0])], vec![3]);
        let z = normalize_dataset(&ds, Normalization::ZScore);
        assert_eq!(z.label(0), 3);
    }
}

//! Periodic waveform classification.
//!
//! Classes are waveform *shapes* (sine, square, triangle, sawtooth, harmonic
//! blends) at a common period with random phase. Because the signal repeats,
//! subsequences distant in time are highly similar — the exact violation of
//! the "temporal neighborhood" assumption that the paper's introduction
//! holds against Franceschi et al. and TNC. Shapelets remain discriminative
//! because one period of the waveform is a localized pattern.

use super::add_noise;
use crate::dataset::{Dataset, TimeSeries};
use rand::Rng;

/// Configuration of the periodic generator.
#[derive(Clone, Debug)]
pub struct PeriodicConfig {
    /// Number of waveform classes, at most 6.
    pub n_classes: usize,
    /// Variables per series (waveform shared, phases differ per variable).
    pub d: usize,
    /// Series length.
    pub t: usize,
    /// Samples per period.
    pub period: usize,
    /// Additive noise standard deviation.
    pub noise: f32,
}

impl Default for PeriodicConfig {
    fn default() -> Self {
        PeriodicConfig {
            n_classes: 4,
            d: 1,
            t: 256,
            period: 64,
            noise: 0.3,
        }
    }
}

fn waveform(class: usize, phase01: f32) -> f32 {
    use std::f32::consts::PI;
    let u = phase01.fract();
    let s = (2.0 * PI * u).sin();
    match class {
        0 => s,                                    // sine
        1 => s.signum(),                           // square
        2 => 4.0 * (u - 0.5).abs() - 1.0,          // triangle
        3 => 2.0 * u - 1.0,                        // sawtooth
        4 => 0.7 * s + 0.5 * (4.0 * PI * u).sin(), // harmonic blend
        5 => s.abs() * 2.0 - 1.0,                  // rectified sine
        // Invariant: the registry never configures more classes.
        #[allow(clippy::disallowed_macros)]
        _ => unreachable!("periodic supports at most 6 classes"),
    }
}

/// Generates `n_per_class` periodic series per class.
pub fn generate(cfg: &PeriodicConfig, n_per_class: usize, rng: &mut impl Rng) -> Dataset {
    assert!(
        cfg.n_classes >= 2 && cfg.n_classes <= 6,
        "periodic supports 2..=6 classes"
    );
    assert!(
        cfg.period >= 8 && cfg.period <= cfg.t,
        "period out of range"
    );
    let mut series = Vec::new();
    let mut labels = Vec::new();
    for class in 0..cfg.n_classes {
        for _ in 0..n_per_class {
            let mut vars = Vec::with_capacity(cfg.d);
            for _ in 0..cfg.d {
                let phase: f32 = rng.gen_range(0.0..1.0);
                let mut v: Vec<f32> = (0..cfg.t)
                    .map(|i| waveform(class, i as f32 / cfg.period as f32 + phase))
                    .collect();
                add_noise(&mut v, cfg.noise, rng);
                vars.push(v);
            }
            series.push(TimeSeries::multivariate(vars));
            labels.push(class);
        }
    }
    Dataset::labeled("periodic", series, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;
    use tcsl_tensor::stats::autocorr;

    #[test]
    fn shapes() {
        let cfg = PeriodicConfig {
            n_classes: 3,
            d: 2,
            t: 128,
            period: 32,
            noise: 0.1,
        };
        let ds = generate(&cfg, 4, &mut seeded(1));
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.n_vars(), 2);
    }

    #[test]
    fn signals_are_periodic() {
        // Lag-`period` autocorrelation should be strongly positive — this is
        // exactly what breaks the "distant ⇒ dissimilar" assumption.
        let cfg = PeriodicConfig {
            noise: 0.05,
            ..Default::default()
        };
        let ds = generate(&cfg, 1, &mut seeded(2));
        for i in 0..ds.len() {
            let ac = autocorr(ds.series(i).variable(0), cfg.period);
            assert!(ac > 0.7, "series {i} lag-{} autocorr {ac}", cfg.period);
        }
    }

    #[test]
    fn waveforms_are_distinct() {
        // One noiseless period per class: pairwise distances must be clearly
        // nonzero.
        let vals: Vec<Vec<f32>> = (0..6)
            .map(|c| (0..64).map(|i| waveform(c, i as f32 / 64.0)).collect())
            .collect();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let d: f32 = vals[a]
                    .iter()
                    .zip(&vals[b])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                assert!(d > 1.0, "classes {a} and {b} too similar: {d}");
            }
        }
    }

    #[test]
    fn random_phase_varies() {
        let cfg = PeriodicConfig {
            noise: 0.0,
            ..Default::default()
        };
        let ds = generate(&cfg, 2, &mut seeded(3));
        assert_ne!(ds.series(0), ds.series(1));
    }
}

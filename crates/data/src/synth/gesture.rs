//! UWaveGestureLibrary-style gesture simulator.
//!
//! Eight gesture classes over three accelerometer axes. Every class is an
//! ordered triple of *micro-strokes* drawn from a shared four-stroke
//! vocabulary; single strokes appear in several classes, so a short shapelet
//! (one partial stroke) is ambiguous while a long shapelet (spanning two or
//! three strokes) pins the class down — the structure behind the paper's
//! "accuracy grows with shapelet length" walkthrough (§3).

use super::{add_bump, add_noise};
use crate::dataset::{Dataset, TimeSeries};
use rand::Rng;
use tcsl_tensor::rng::gauss;

/// Configuration of the gesture simulator.
#[derive(Clone, Debug)]
pub struct GestureConfig {
    /// Number of classes, at most 8.
    pub n_classes: usize,
    /// Series length (the real UWave uses 315).
    pub t: usize,
    /// Additive noise standard deviation.
    pub noise: f32,
}

impl Default for GestureConfig {
    fn default() -> Self {
        GestureConfig {
            n_classes: 8,
            t: 315,
            noise: 0.35,
        }
    }
}

/// Unit direction of each vocabulary stroke on the 3 accelerometer axes.
const STROKE_DIRS: [[f32; 3]; 4] = [
    [1.0, 0.2, -0.3],
    [-0.4, 1.0, 0.3],
    [0.2, -0.5, 1.0],
    [-1.0, -0.6, 0.4],
];

/// Ordered stroke triples defining each class. Every stroke id appears in
/// six classes; only the ordered combination is unique.
const CLASS_STROKES: [[usize; 3]; 8] = [
    [0, 1, 2],
    [1, 2, 3],
    [2, 3, 0],
    [3, 0, 1],
    [0, 2, 1],
    [1, 3, 2],
    [2, 0, 3],
    [3, 1, 0],
];

/// Generates `n_per_class` gestures per class.
pub fn generate(cfg: &GestureConfig, n_per_class: usize, rng: &mut impl Rng) -> Dataset {
    assert!(
        cfg.n_classes >= 2 && cfg.n_classes <= 8,
        "gesture supports 2..=8 classes"
    );
    assert!(cfg.t >= 40, "gesture series need at least 40 steps");
    let mut series = Vec::with_capacity(cfg.n_classes * n_per_class);
    let mut labels = Vec::with_capacity(cfg.n_classes * n_per_class);
    for class in 0..cfg.n_classes {
        for _ in 0..n_per_class {
            series.push(one_gesture(cfg, class, rng));
            labels.push(class);
        }
    }
    Dataset::labeled("gesture", series, labels)
}

fn one_gesture(cfg: &GestureConfig, class: usize, rng: &mut impl Rng) -> TimeSeries {
    let t = cfg.t;
    let stroke_len = (t as f32 * 0.22) as usize;
    let mut vars = vec![vec![0.0f32; t]; 3];
    // Global onset shift keeps stroke positions from being a trivial cue.
    let global_shift = (gauss(rng) * 0.04 * t as f32) as isize;
    for (slot, &stroke) in CLASS_STROKES[class].iter().enumerate() {
        let center = (0.22 + 0.26 * slot as f32) * t as f32;
        let onset = center as isize - (stroke_len / 2) as isize
            + global_shift
            + (gauss(rng) * 0.02 * t as f32) as isize;
        let amplitude = 1.0 + 0.15 * gauss(rng);
        // Second half of the stroke is sign-flipped for odd strokes, giving
        // each vocabulary entry a distinctive two-lobed profile.
        for (axis, var) in vars.iter_mut().enumerate() {
            let a = amplitude * STROKE_DIRS[stroke][axis];
            if stroke % 2 == 0 {
                add_bump(var, onset, stroke_len, a);
            } else {
                add_bump(var, onset, stroke_len / 2, a);
                add_bump(var, onset + (stroke_len / 2) as isize, stroke_len / 2, -a);
            }
        }
    }
    for var in &mut vars {
        add_noise(var, cfg.noise, rng);
    }
    TimeSeries::multivariate(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    #[test]
    fn shapes_and_labels() {
        let cfg = GestureConfig {
            n_classes: 8,
            t: 128,
            noise: 0.2,
        };
        let mut rng = seeded(1);
        let ds = generate(&cfg, 5, &mut rng);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.n_vars(), 3);
        assert_eq!(ds.n_classes(), 8);
        assert!(ds.all_series().iter().all(|s| s.len() == 128));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GestureConfig::default();
        let a = generate(&cfg, 2, &mut seeded(7));
        let b = generate(&cfg, 2, &mut seeded(7));
        assert_eq!(a.series(3), b.series(3));
    }

    #[test]
    fn classes_are_separable_by_long_windows() {
        // Mean intra-class distance over full series should be smaller than
        // inter-class distance — a sanity check that signal exceeds noise.
        let cfg = GestureConfig {
            n_classes: 4,
            t: 128,
            noise: 0.2,
        };
        let mut rng = seeded(2);
        let ds = generate(&cfg, 6, &mut rng);
        let dist = |a: &TimeSeries, b: &TimeSeries| -> f32 { a.values().sub(b.values()).norm_sq() };
        let mut intra = 0.0;
        let mut intra_n = 0;
        let mut inter = 0.0;
        let mut inter_n = 0;
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let d = dist(ds.series(i), ds.series(j));
                if ds.label(i) == ds.label(j) {
                    intra += d;
                    intra_n += 1;
                } else {
                    inter += d;
                    inter_n += 1;
                }
            }
        }
        let (intra, inter) = (intra / intra_n as f32, inter / inter_n as f32);
        assert!(
            inter > intra * 1.3,
            "classes not separable: intra={intra} inter={inter}"
        );
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn too_many_classes_panics() {
        let cfg = GestureConfig {
            n_classes: 9,
            t: 128,
            noise: 0.1,
        };
        generate(&cfg, 1, &mut seeded(0));
    }
}

//! Trend/level-shift classification.
//!
//! Classes are global structural patterns (ramps, level steps, V-shapes).
//! The discriminative information lives at the largest scale, so this family
//! probes the *long* end of the multi-scale shapelet bank.

use super::add_noise;
use crate::dataset::{Dataset, TimeSeries};
use rand::Rng;
use tcsl_tensor::rng::gauss;

/// Configuration of the trend generator.
#[derive(Clone, Debug)]
pub struct TrendConfig {
    /// Number of classes, at most 5.
    pub n_classes: usize,
    /// Variables per series.
    pub d: usize,
    /// Series length.
    pub t: usize,
    /// Additive noise standard deviation.
    pub noise: f32,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            n_classes: 4,
            d: 1,
            t: 160,
            noise: 0.4,
        }
    }
}

fn trend_value(class: usize, u: f32, break_at: f32) -> f32 {
    match class {
        0 => 2.0 * u - 1.0, // up ramp
        1 => 1.0 - 2.0 * u, // down ramp
        2 => {
            if u < break_at {
                -0.8
            } else {
                0.8
            }
        } // level step
        3 => 2.0 * (2.0 * (u - 0.5).abs()) - 1.0, // V shape
        4 => 1.0 - 2.0 * (2.0 * (u - 0.5).abs()), // Λ shape
        // Invariant: the registry never configures more classes.
        #[allow(clippy::disallowed_macros)]
        _ => unreachable!("trend supports at most 5 classes"),
    }
}

/// Generates `n_per_class` series per class.
pub fn generate(cfg: &TrendConfig, n_per_class: usize, rng: &mut impl Rng) -> Dataset {
    assert!(
        cfg.n_classes >= 2 && cfg.n_classes <= 5,
        "trend supports 2..=5 classes"
    );
    let mut series = Vec::new();
    let mut labels = Vec::new();
    for class in 0..cfg.n_classes {
        for _ in 0..n_per_class {
            let break_at = 0.5 + 0.1 * gauss(rng);
            let scale = 1.0 + 0.2 * gauss(rng);
            let mut vars = Vec::with_capacity(cfg.d);
            for _ in 0..cfg.d {
                let mut v: Vec<f32> = (0..cfg.t)
                    .map(|i| scale * trend_value(class, i as f32 / cfg.t as f32, break_at))
                    .collect();
                add_noise(&mut v, cfg.noise, rng);
                vars.push(v);
            }
            series.push(TimeSeries::multivariate(vars));
            labels.push(class);
        }
    }
    Dataset::labeled("trend", series, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    #[test]
    fn shapes() {
        let ds = generate(&TrendConfig::default(), 3, &mut seeded(1));
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.n_classes(), 4);
    }

    #[test]
    fn up_ramp_ends_higher_than_it_starts() {
        let cfg = TrendConfig {
            noise: 0.05,
            ..Default::default()
        };
        let ds = generate(&cfg, 1, &mut seeded(2));
        let up = ds.series(0).variable(0);
        assert!(up[cfg.t - 1] > up[0] + 1.0);
        let down = ds.series(1).variable(0);
        assert!(down[cfg.t - 1] < down[0] - 1.0);
    }

    #[test]
    fn step_class_has_two_levels() {
        let cfg = TrendConfig {
            noise: 0.05,
            n_classes: 3,
            ..Default::default()
        };
        let ds = generate(&cfg, 1, &mut seeded(3));
        let step = ds.series(2).variable(0);
        let first_quarter = tcsl_tensor::stats::mean(&step[..cfg.t / 4]);
        let last_quarter = tcsl_tensor::stats::mean(&step[3 * cfg.t / 4..]);
        assert!(last_quarter - first_quarter > 1.0);
    }
}

//! Embedded-motif datasets: class `k` hides motif `k` somewhere in noise.
//!
//! The canonical regime shapelet methods are designed for — the
//! discriminative information is a localized subsequence at an *unknown,
//! random* position, which defeats global-distance methods and rewards
//! best-match pooling.

use super::smooth_random_curve;
use crate::dataset::{Dataset, TimeSeries};
use rand::Rng;
use tcsl_tensor::rng::gauss;

/// What fills the series outside the motif.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Background {
    /// iid Gaussian noise.
    WhiteNoise,
    /// A slowly wandering random walk (harder: background has structure).
    RandomWalk,
}

/// Configuration of the embedded-motif generator.
#[derive(Clone, Debug)]
pub struct MotifConfig {
    /// Number of classes (= number of distinct motifs).
    pub n_classes: usize,
    /// Variables per series.
    pub d: usize,
    /// Series length.
    pub t: usize,
    /// Motif length in steps.
    pub motif_len: usize,
    /// Motif amplitude relative to unit-variance background.
    pub snr: f32,
    /// Background process.
    pub background: Background,
    /// How many times the motif occurs per series.
    pub occurrences: usize,
}

impl Default for MotifConfig {
    fn default() -> Self {
        MotifConfig {
            n_classes: 3,
            d: 1,
            t: 128,
            motif_len: 24,
            snr: 2.0,
            background: Background::WhiteNoise,
            occurrences: 1,
        }
    }
}

/// Generates `n_per_class` series per class. The per-class motifs are drawn
/// first from `rng`, so a seed fixes both motifs and series.
pub fn generate(cfg: &MotifConfig, n_per_class: usize, rng: &mut impl Rng) -> Dataset {
    assert!(cfg.n_classes >= 2, "need at least two classes");
    assert!(
        cfg.motif_len * cfg.occurrences <= cfg.t,
        "motifs do not fit in the series"
    );
    // Per-class motif: (d, motif_len) smooth curves.
    let motifs: Vec<Vec<Vec<f32>>> = (0..cfg.n_classes)
        .map(|_| {
            (0..cfg.d)
                .map(|_| smooth_random_curve(cfg.motif_len, rng))
                .collect()
        })
        .collect();

    let mut series = Vec::with_capacity(cfg.n_classes * n_per_class);
    let mut labels = Vec::with_capacity(cfg.n_classes * n_per_class);
    for class in 0..cfg.n_classes {
        for _ in 0..n_per_class {
            series.push(one_series(cfg, &motifs[class], rng));
            labels.push(class);
        }
    }
    Dataset::labeled("motif", series, labels)
}

fn one_series(cfg: &MotifConfig, motif: &[Vec<f32>], rng: &mut impl Rng) -> TimeSeries {
    let mut vars: Vec<Vec<f32>> = (0..cfg.d)
        .map(|_| match cfg.background {
            Background::WhiteNoise => (0..cfg.t).map(|_| gauss(rng)).collect(),
            Background::RandomWalk => {
                let mut acc = 0.0f32;
                let mut v: Vec<f32> = (0..cfg.t)
                    .map(|_| {
                        acc += 0.3 * gauss(rng);
                        acc
                    })
                    .collect();
                tcsl_tensor::stats::znorm_inplace(&mut v);
                v
            }
        })
        .collect();

    // Place `occurrences` non-overlapping motif copies at random positions:
    // partition the series into `occurrences` blocks and place one per block,
    // which guarantees non-overlap without rejection sampling.
    let block = cfg.t / cfg.occurrences;
    for occ in 0..cfg.occurrences {
        let lo = occ * block;
        let hi = lo + block - cfg.motif_len;
        let start = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        let amp = cfg.snr * (1.0 + 0.1 * gauss(rng));
        for (v, var) in vars.iter_mut().enumerate() {
            for (i, &m) in motif[v].iter().enumerate() {
                var[start + i] += amp * m;
            }
        }
    }
    TimeSeries::multivariate(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    #[test]
    fn shapes_and_counts() {
        let cfg = MotifConfig {
            n_classes: 4,
            d: 2,
            t: 96,
            motif_len: 16,
            ..Default::default()
        };
        let ds = generate(&cfg, 3, &mut seeded(1));
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.n_vars(), 2);
        assert_eq!(ds.n_classes(), 4);
    }

    #[test]
    fn motif_raises_local_energy() {
        // With high SNR the best window of the true class motif should fit
        // far better than a random window: check peak |value| exceeds the
        // noise floor.
        let cfg = MotifConfig {
            snr: 4.0,
            ..Default::default()
        };
        let ds = generate(&cfg, 2, &mut seeded(2));
        let s = ds.series(0);
        let peak = s.variable(0).iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        assert!(peak > 3.0, "no visible motif, peak={peak}");
    }

    #[test]
    fn multiple_occurrences_fit() {
        let cfg = MotifConfig {
            occurrences: 3,
            t: 120,
            motif_len: 20,
            ..Default::default()
        };
        let ds = generate(&cfg, 2, &mut seeded(3));
        assert_eq!(ds.series(0).len(), 120);
    }

    #[test]
    fn random_walk_background_is_normalized() {
        let cfg = MotifConfig {
            background: Background::RandomWalk,
            snr: 0.0, // background only
            ..Default::default()
        };
        let ds = generate(&cfg, 1, &mut seeded(4));
        let v = ds.series(0).variable(0);
        assert!(tcsl_tensor::stats::std_dev(v) < 1.5);
    }

    #[test]
    #[should_panic(expected = "fit")]
    fn oversized_motif_panics() {
        let cfg = MotifConfig {
            motif_len: 200,
            t: 100,
            ..Default::default()
        };
        generate(&cfg, 1, &mut seeded(5));
    }
}

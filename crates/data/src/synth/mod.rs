//! Synthetic dataset families.
//!
//! These generators replace the UEA archive (see DESIGN.md's substitution
//! table). Each family plants a different, documented class structure:
//!
//! * [`gesture`] — 8-class, 3-variate accelerometer-style gestures built
//!   from a shared vocabulary of micro-strokes; class identity is the
//!   *ordered combination* of strokes, so short shapelets are ambiguous and
//!   longer ones discriminative (the paper's §3 exploration result).
//! * [`motif`] — class `k` embeds motif `k` at a random position in
//!   background noise: the canonical shapelet-friendly regime.
//! * [`periodic`] — classes are waveform shapes of periodic signals;
//!   distant-in-time subsequences are *similar*, violating the assumption
//!   TNC-style methods rely on (the failure mode the paper's intro cites).
//! * [`trend`] — classes are global trend/level patterns; stresses methods
//!   biased toward local patterns.
//! * [`leadlag`] — classes are *orderings* of an event across variables;
//!   only joint cross-variable windows are informative.
//! * [`anomaly`] — segment-level anomaly detection: normal periodic
//!   segments vs segments with injected spikes / frequency shifts /
//!   amplitude bursts / flatlines.
//!
//! All generators are deterministic in the supplied RNG.

pub mod anomaly;
pub mod gesture;
pub mod leadlag;
pub mod motif;
pub mod periodic;
pub mod trend;

use rand::Rng;
use tcsl_tensor::rng::gauss;

/// Adds a smooth bump `amplitude · sin(π·u)` over `[start, start+len)` to a
/// buffer (clipped at the ends).
pub(crate) fn add_bump(buf: &mut [f32], start: isize, len: usize, amplitude: f32) {
    for i in 0..len {
        let idx = start + i as isize;
        if idx < 0 || idx as usize >= buf.len() {
            continue;
        }
        let u = (i as f32 + 0.5) / len as f32;
        buf[idx as usize] += amplitude * (std::f32::consts::PI * u).sin();
    }
}

/// Adds iid Gaussian noise.
pub(crate) fn add_noise(buf: &mut [f32], sigma: f32, rng: &mut impl Rng) {
    for x in buf.iter_mut() {
        *x += sigma * gauss(rng);
    }
}

/// A smooth random curve of length `n`: a random walk re-smoothed with a
/// short moving average and z-normalized. Used as motif material and
/// background texture.
pub(crate) fn smooth_random_curve(n: usize, rng: &mut impl Rng) -> Vec<f32> {
    let mut walk = Vec::with_capacity(n);
    let mut acc = 0.0f32;
    for _ in 0..n {
        acc += gauss(rng);
        walk.push(acc);
    }
    // Moving-average smoothing with window ~ n/8 (at least 2).
    let w = (n / 8).max(2);
    let mut smooth = vec![0.0f32; n];
    for (i, s) in smooth.iter_mut().enumerate() {
        let lo = i.saturating_sub(w / 2);
        let hi = (i + w / 2 + 1).min(n);
        *s = walk[lo..hi].iter().sum::<f32>() / (hi - lo) as f32;
    }
    tcsl_tensor::stats::znorm_inplace(&mut smooth);
    smooth
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    #[test]
    fn bump_is_clipped_and_positive() {
        let mut buf = vec![0.0f32; 10];
        add_bump(&mut buf, -2, 6, 1.0);
        assert!(buf[..4].iter().any(|&x| x > 0.0));
        assert_eq!(buf[9], 0.0);
        let mut buf2 = vec![0.0f32; 10];
        add_bump(&mut buf2, 8, 6, 1.0);
        assert!(buf2[8] > 0.0 && buf2[9] > 0.0);
    }

    #[test]
    fn smooth_curve_is_normalized_and_smooth() {
        let mut rng = seeded(3);
        let c = smooth_random_curve(64, &mut rng);
        assert_eq!(c.len(), 64);
        let m = tcsl_tensor::stats::mean(&c);
        assert!(m.abs() < 1e-4);
        // Smoothness: mean |first difference| well below that of white noise.
        let diffs: f32 = c.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>() / 63.0;
        assert!(diffs < 0.5, "curve not smooth: mean |Δ| = {diffs}");
    }
}

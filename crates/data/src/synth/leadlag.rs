//! Lead–lag classification: classes are defined by *which variable leads*.
//!
//! Every series carries the same transient event on all variables, but the
//! class determines the order and delay in which the variables see it (as
//! in lead–lag networks in finance, or propagation delays in sensor
//! arrays). No single variable is informative on its own — only a
//! multivariate window spanning the variables captures the class, which
//! exercises the shapelet transform's joint cross-variable windows.

use super::{add_bump, add_noise};
use crate::dataset::{Dataset, TimeSeries};
use rand::Rng;
use tcsl_tensor::rng::gauss;

/// Configuration of the lead–lag generator.
#[derive(Clone, Debug)]
pub struct LeadLagConfig {
    /// Variables per series (≥ 2); classes = orderings, at most `d!`
    /// capped at 6.
    pub d: usize,
    /// Number of classes (orderings), at most 6.
    pub n_classes: usize,
    /// Series length.
    pub t: usize,
    /// Inter-variable lag in steps.
    pub lag: usize,
    /// Additive noise standard deviation.
    pub noise: f32,
}

impl Default for LeadLagConfig {
    fn default() -> Self {
        LeadLagConfig {
            d: 3,
            n_classes: 3,
            t: 160,
            lag: 12,
            noise: 0.4,
        }
    }
}

/// The variable orderings defining the classes (first = leader).
const ORDERINGS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [1, 2, 0],
    [2, 0, 1],
    [0, 2, 1],
    [2, 1, 0],
    [1, 0, 2],
];

/// Generates `n_per_class` series per class.
pub fn generate(cfg: &LeadLagConfig, n_per_class: usize, rng: &mut impl Rng) -> Dataset {
    assert_eq!(
        cfg.d, 3,
        "lead-lag generator currently supports exactly 3 variables"
    );
    assert!(
        cfg.n_classes >= 2 && cfg.n_classes <= 6,
        "lead-lag supports 2..=6 classes"
    );
    let event_len = (cfg.t / 6).max(6);
    assert!(
        2 * cfg.lag + event_len < cfg.t / 2,
        "lags and event do not fit in the series"
    );
    let mut series = Vec::new();
    let mut labels = Vec::new();
    for class in 0..cfg.n_classes {
        for _ in 0..n_per_class {
            let mut vars = vec![vec![0.0f32; cfg.t]; cfg.d];
            // Event onset jitters; the ordering and lag carry the class.
            let base = rng.gen_range(0..cfg.t - 2 * cfg.lag - event_len);
            let amplitude = 1.5 + 0.2 * gauss(rng);
            for (rank, &var) in ORDERINGS[class].iter().enumerate() {
                let onset = (base + rank * cfg.lag) as isize;
                add_bump(&mut vars[var], onset, event_len, amplitude);
            }
            for var in &mut vars {
                add_noise(var, cfg.noise, rng);
            }
            series.push(TimeSeries::multivariate(vars));
            labels.push(class);
        }
    }
    Dataset::labeled("leadlag", series, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    #[test]
    fn shapes_and_labels() {
        let ds = generate(&LeadLagConfig::default(), 4, &mut seeded(1));
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.n_vars(), 3);
        assert_eq!(ds.n_classes(), 3);
    }

    #[test]
    fn leader_peaks_before_followers() {
        let cfg = LeadLagConfig {
            noise: 0.02,
            ..Default::default()
        };
        let ds = generate(&cfg, 2, &mut seeded(2));
        // Class 0 ordering is [0, 1, 2]: var0's peak precedes var2's.
        let s = ds.series(0);
        let argmax = |v: &[f32]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        let p0 = argmax(s.variable(0));
        let p2 = argmax(s.variable(2));
        assert!(
            p0 < p2,
            "leader peak {p0} should precede follower peak {p2}"
        );
    }

    #[test]
    fn single_variables_are_uninformative() {
        // Marginal per-variable statistics should barely differ between
        // classes: the event is identical, only relative timing differs —
        // and absolute onset jitters uniformly.
        let cfg = LeadLagConfig {
            noise: 0.1,
            ..Default::default()
        };
        let ds = generate(&cfg, 30, &mut seeded(3));
        let mean_peak = |class: usize| -> f32 {
            let mut total = 0.0;
            let mut n = 0;
            for i in 0..ds.len() {
                if ds.label(i) == class {
                    total += ds
                        .series(i)
                        .variable(0)
                        .iter()
                        .fold(f32::MIN, |a, &b| a.max(b));
                    n += 1;
                }
            }
            total / n as f32
        };
        let (a, b) = (mean_peak(0), mean_peak(1));
        assert!(
            (a - b).abs() < 0.4,
            "variable-0 peak heights leak class: {a} vs {b}"
        );
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn too_many_classes_rejected() {
        generate(
            &LeadLagConfig {
                n_classes: 7,
                ..Default::default()
            },
            1,
            &mut seeded(0),
        );
    }
}

//! Segment-level anomaly detection datasets.
//!
//! Each series is one segment. Normal segments are clean periodic signals
//! with per-segment random phase; anomalous segments carry one injected
//! fault. Labels: `0` = normal, `1` = anomalous — matching the segment-level
//! AD task the CSL paper evaluates (detector trained on shapelet features).

use super::add_noise;
use crate::dataset::{Dataset, TimeSeries};
use rand::Rng;
use tcsl_tensor::rng::gauss;

/// The kinds of fault the generator can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A short cluster of high-magnitude spikes.
    SpikeBurst,
    /// The oscillation frequency shifts for part of the segment.
    FrequencyShift,
    /// The amplitude grows several-fold over a window.
    AmplitudeBurst,
    /// The signal flatlines over a window.
    Flatline,
}

/// Configuration of the anomaly-segment generator.
#[derive(Clone, Debug)]
pub struct AnomalyConfig {
    /// Variables per segment.
    pub d: usize,
    /// Segment length.
    pub t: usize,
    /// Samples per period of the normal oscillation.
    pub period: usize,
    /// Fraction of segments that are anomalous.
    pub anomaly_frac: f32,
    /// Fault types to draw from.
    pub kinds: Vec<AnomalyKind>,
    /// Base noise standard deviation.
    pub noise: f32,
    /// Fault magnitude multiplier (1.0 = blatant faults; ~0.4 = subtle
    /// faults that leave detector headroom).
    pub severity: f32,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            d: 1,
            t: 128,
            period: 32,
            anomaly_frac: 0.15,
            kinds: vec![
                AnomalyKind::SpikeBurst,
                AnomalyKind::FrequencyShift,
                AnomalyKind::AmplitudeBurst,
                AnomalyKind::Flatline,
            ],
            noise: 0.15,
            severity: 1.0,
        }
    }
}

/// Generates `n` segments; roughly `anomaly_frac` of them carry a fault.
pub fn generate(cfg: &AnomalyConfig, n: usize, rng: &mut impl Rng) -> Dataset {
    assert!(!cfg.kinds.is_empty(), "need at least one anomaly kind");
    assert!(
        (0.0..1.0).contains(&cfg.anomaly_frac),
        "anomaly_frac must be in [0, 1)"
    );
    let mut series = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let anomalous = rng.gen_range(0.0..1.0) < cfg.anomaly_frac;
        series.push(one_segment(cfg, anomalous, rng));
        labels.push(usize::from(anomalous));
    }
    Dataset::labeled("anomaly", series, labels)
}

fn one_segment(cfg: &AnomalyConfig, anomalous: bool, rng: &mut impl Rng) -> TimeSeries {
    use std::f32::consts::PI;
    let phase: f32 = rng.gen_range(0.0..1.0);
    let mut vars: Vec<Vec<f32>> = (0..cfg.d)
        .map(|v| {
            (0..cfg.t)
                .map(|i| (2.0 * PI * (i as f32 / cfg.period as f32 + phase + 0.2 * v as f32)).sin())
                .collect()
        })
        .collect();

    if anomalous {
        let kind = cfg.kinds[rng.gen_range(0..cfg.kinds.len())];
        let span = (cfg.t / 4).max(4);
        let start = rng.gen_range(0..=cfg.t - span);
        let sev = cfg.severity;
        for var in &mut vars {
            match kind {
                AnomalyKind::SpikeBurst => {
                    for _ in 0..4 {
                        let at = start + rng.gen_range(0..span);
                        var[at] += 4.0 * sev * gauss(rng).signum() * (2.0 + gauss(rng).abs());
                    }
                }
                AnomalyKind::FrequencyShift => {
                    // Blend toward a faster oscillation; severity controls
                    // the blend weight.
                    for (off, x) in var[start..start + span].iter_mut().enumerate() {
                        let i = start + off;
                        let shifted =
                            (2.0 * PI * (i as f32 / (cfg.period as f32 / 3.0) + phase)).sin();
                        *x = (1.0 - sev) * *x + sev * shifted;
                    }
                }
                AnomalyKind::AmplitudeBurst => {
                    let factor = 1.0 + 2.5 * sev;
                    for x in &mut var[start..start + span] {
                        *x *= factor;
                    }
                }
                AnomalyKind::Flatline => {
                    for x in &mut var[start..start + span] {
                        *x *= 1.0 - sev;
                    }
                }
            }
        }
    }
    for var in &mut vars {
        add_noise(var, cfg.noise, rng);
    }
    TimeSeries::multivariate(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    #[test]
    fn labels_match_fraction_roughly() {
        let cfg = AnomalyConfig {
            anomaly_frac: 0.2,
            ..Default::default()
        };
        let ds = generate(&cfg, 400, &mut seeded(1));
        let anomalies = ds.labels().unwrap().iter().filter(|&&l| l == 1).count();
        assert!(
            (50..110).contains(&anomalies),
            "got {anomalies} anomalies of 400"
        );
    }

    #[test]
    fn spike_burst_visibly_exceeds_normal_range() {
        let cfg = AnomalyConfig {
            anomaly_frac: 0.999,
            kinds: vec![AnomalyKind::SpikeBurst],
            noise: 0.05,
            ..Default::default()
        };
        let ds = generate(&cfg, 10, &mut seeded(2));
        for i in 0..ds.len() {
            if ds.label(i) == 1 {
                let peak = ds
                    .series(i)
                    .variable(0)
                    .iter()
                    .fold(0.0f32, |a, &x| a.max(x.abs()));
                assert!(peak > 2.5, "segment {i} peak {peak}");
            }
        }
    }

    #[test]
    fn flatline_has_low_variance_window() {
        let cfg = AnomalyConfig {
            anomaly_frac: 0.999,
            kinds: vec![AnomalyKind::Flatline],
            noise: 0.01,
            ..Default::default()
        };
        let ds = generate(&cfg, 5, &mut seeded(3));
        let s = ds.series(0).variable(0);
        // Some window of length t/4 should have tiny variance.
        let span = cfg.t / 4;
        let min_var = (0..=cfg.t - span)
            .map(|st| tcsl_tensor::stats::variance(&s[st..st + span]))
            .fold(f32::INFINITY, f32::min);
        assert!(
            min_var < 0.01,
            "no flatline found, min window variance {min_var}"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = AnomalyConfig::default();
        let a = generate(&cfg, 20, &mut seeded(9));
        let b = generate(&cfg, 20, &mut seeded(9));
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.series(7), b.series(7));
    }
}

//! Property-based tests for the data layer.

use crate::augment::{jitter, random_crop, time_mask};
use crate::dataset::{Dataset, TimeSeries};
use crate::io::{from_csv, to_csv};
use crate::split::train_test_split;
use proptest::prelude::*;
use tcsl_tensor::rng::seeded;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..4, 2usize..20, 2usize..7).prop_flat_map(|(d, n, t)| {
        (
            proptest::collection::vec(-50.0f32..50.0, n * d * t),
            proptest::collection::vec(0usize..3, n),
        )
            .prop_map(move |(vals, labels)| {
                let series = (0..n)
                    .map(|i| {
                        let vars: Vec<Vec<f32>> = (0..d)
                            .map(|v| vals[(i * d + v) * t..(i * d + v + 1) * t].to_vec())
                            .collect();
                        TimeSeries::multivariate(vars)
                    })
                    .collect();
                Dataset::labeled("prop", series, labels)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csv_round_trip(ds in arb_dataset()) {
        let back = from_csv("prop", &to_csv(&ds)).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            prop_assert_eq!(back.series(i), ds.series(i));
        }
        prop_assert_eq!(back.labels(), ds.labels());
    }

    #[test]
    fn split_partitions(ds in arb_dataset(), frac in 0.1f32..0.6, seed in 0u64..100) {
        let mut rng = seeded(seed);
        let (train, test) = train_test_split(&ds, frac, &mut rng);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        // Every class present in ds with >= 2 members keeps at least one
        // member in train (stratified split holds one back from test).
        for c in 0..ds.n_classes() {
            let total = ds.labels().unwrap().iter().filter(|&&l| l == c).count();
            if total >= 1 {
                let in_train = train.labels().unwrap().iter().filter(|&&l| l == c).count();
                prop_assert!(in_train >= 1, "class {} lost from train", c);
            }
        }
    }

    #[test]
    fn crops_are_views(ds in arb_dataset(), seed in 0u64..50) {
        let mut rng = seeded(seed);
        let s = ds.series(0);
        let len = 1 + (seed as usize % s.len());
        let c = random_crop(s, len, &mut rng);
        prop_assert_eq!(c.len(), len);
        prop_assert_eq!(c.n_vars(), s.n_vars());
    }

    #[test]
    fn augmentations_preserve_shape(ds in arb_dataset(), seed in 0u64..50) {
        let mut rng = seeded(seed);
        let s = ds.series(0);
        let j = jitter(s, 0.1, &mut rng);
        prop_assert_eq!(j.len(), s.len());
        let m = time_mask(s, 0.3, &mut rng);
        prop_assert_eq!(m.len(), s.len());
        prop_assert_eq!(m.n_vars(), s.n_vars());
    }
}

//! The prepared dataset archive.
//!
//! The TimeCSL demo ships the 30-dataset UEA archive for the audience to
//! play with; this module is its synthetic stand-in (see DESIGN.md). Each
//! entry names a generator configuration plus train/test sizes, grouped into
//! the three suites the experiments sweep: classification/clustering,
//! segment-level anomaly detection, and long-series representation.

use crate::dataset::Dataset;
use crate::synth::{anomaly, gesture, leadlag, motif, periodic, trend};
use tcsl_tensor::rng::seeded;

/// Which evaluation suite an entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Classification and clustering (E1a, E1b).
    Classification,
    /// Segment-level anomaly detection (E1c).
    AnomalyDetection,
    /// Long-series representation (E1d).
    LongSeries,
}

/// Generator family + configuration.
#[derive(Clone, Debug)]
pub enum Family {
    /// UWave-style gestures.
    Gesture(gesture::GestureConfig),
    /// Embedded motifs.
    Motif(motif::MotifConfig),
    /// Periodic waveforms.
    Periodic(periodic::PeriodicConfig),
    /// Global trends.
    Trend(trend::TrendConfig),
    /// Anomalous segments.
    Anomaly(anomaly::AnomalyConfig),
    /// Cross-variable lead-lag orderings.
    LeadLag(leadlag::LeadLagConfig),
}

/// One named archive dataset.
#[derive(Clone, Debug)]
pub struct ArchiveEntry {
    /// Unique dataset name.
    pub name: &'static str,
    /// Generator family and configuration.
    pub family: Family,
    /// Training series per class (total for anomaly entries).
    pub n_train: usize,
    /// Test series per class (total for anomaly entries).
    pub n_test: usize,
    /// Which suite the entry belongs to.
    pub task: Task,
}

/// All archive entries.
pub fn all_entries() -> Vec<ArchiveEntry> {
    use Family::*;
    use Task::*;
    let mut v = vec![
        ArchiveEntry {
            name: "GestureFull",
            family: Gesture(gesture::GestureConfig {
                n_classes: 8,
                t: 315,
                noise: 0.35,
            }),
            n_train: 10,
            n_test: 10,
            task: Classification,
        },
        ArchiveEntry {
            name: "GestureSmall",
            family: Gesture(gesture::GestureConfig {
                n_classes: 4,
                t: 160,
                noise: 0.3,
            }),
            n_train: 15,
            n_test: 15,
            task: Classification,
        },
        ArchiveEntry {
            name: "MotifEasy",
            family: Motif(motif::MotifConfig {
                n_classes: 2,
                d: 1,
                t: 128,
                motif_len: 24,
                snr: 2.5,
                background: motif::Background::WhiteNoise,
                occurrences: 1,
            }),
            n_train: 20,
            n_test: 20,
            task: Classification,
        },
        ArchiveEntry {
            name: "MotifMulti",
            family: Motif(motif::MotifConfig {
                n_classes: 5,
                d: 2,
                t: 160,
                motif_len: 28,
                snr: 2.0,
                background: motif::Background::WhiteNoise,
                occurrences: 1,
            }),
            n_train: 12,
            n_test: 12,
            task: Classification,
        },
        ArchiveEntry {
            name: "MotifHard",
            family: Motif(motif::MotifConfig {
                n_classes: 3,
                d: 1,
                t: 128,
                motif_len: 20,
                snr: 1.2,
                background: motif::Background::RandomWalk,
                occurrences: 1,
            }),
            n_train: 20,
            n_test: 20,
            task: Classification,
        },
        ArchiveEntry {
            name: "MotifRepeat",
            family: Motif(motif::MotifConfig {
                n_classes: 3,
                d: 1,
                t: 192,
                motif_len: 24,
                snr: 2.0,
                background: motif::Background::WhiteNoise,
                occurrences: 2,
            }),
            n_train: 15,
            n_test: 15,
            task: Classification,
        },
        ArchiveEntry {
            name: "PeriodicWave",
            family: Periodic(periodic::PeriodicConfig {
                n_classes: 4,
                d: 1,
                t: 256,
                period: 64,
                noise: 0.3,
            }),
            n_train: 15,
            n_test: 15,
            task: Classification,
        },
        ArchiveEntry {
            name: "PeriodicMulti",
            family: Periodic(periodic::PeriodicConfig {
                n_classes: 3,
                d: 3,
                t: 128,
                period: 32,
                noise: 0.4,
            }),
            n_train: 15,
            n_test: 15,
            task: Classification,
        },
        ArchiveEntry {
            name: "TrendShapes",
            family: Trend(trend::TrendConfig {
                n_classes: 4,
                d: 1,
                t: 160,
                noise: 0.4,
            }),
            n_train: 15,
            n_test: 15,
            task: Classification,
        },
        ArchiveEntry {
            name: "TrendNoisy",
            family: Trend(trend::TrendConfig {
                n_classes: 3,
                d: 1,
                t: 160,
                noise: 0.8,
            }),
            n_train: 20,
            n_test: 20,
            task: Classification,
        },
        ArchiveEntry {
            name: "LeadLag3",
            family: LeadLag(leadlag::LeadLagConfig::default()),
            n_train: 15,
            n_test: 15,
            task: Classification,
        },
        ArchiveEntry {
            name: "AnomMixed",
            family: Anomaly(anomaly::AnomalyConfig {
                severity: 0.45,
                noise: 0.3,
                ..Default::default()
            }),
            n_train: 150,
            n_test: 150,
            task: AnomalyDetection,
        },
        ArchiveEntry {
            name: "AnomSpike",
            family: Anomaly(anomaly::AnomalyConfig {
                kinds: vec![anomaly::AnomalyKind::SpikeBurst],
                severity: 0.35,
                noise: 0.35,
                ..Default::default()
            }),
            n_train: 120,
            n_test: 120,
            task: AnomalyDetection,
        },
        ArchiveEntry {
            name: "AnomFreq",
            family: Anomaly(anomaly::AnomalyConfig {
                kinds: vec![anomaly::AnomalyKind::FrequencyShift],
                anomaly_frac: 0.2,
                severity: 0.5,
                noise: 0.3,
                ..Default::default()
            }),
            n_train: 120,
            n_test: 120,
            task: AnomalyDetection,
        },
    ];
    for (name, t, motif_len, n) in [
        ("LongMotif1k", 1024usize, 64usize, 8usize),
        ("LongMotif2k", 2048, 96, 8),
        ("LongMotif4k", 4096, 128, 6),
    ] {
        v.push(ArchiveEntry {
            name,
            family: Motif(motif::MotifConfig {
                n_classes: 2,
                d: 1,
                t,
                motif_len,
                snr: 2.0,
                background: motif::Background::WhiteNoise,
                occurrences: 2,
            }),
            n_train: n,
            n_test: n,
            task: LongSeries,
        });
    }
    v
}

/// Entries in the classification/clustering suite.
pub fn classification_suite() -> Vec<ArchiveEntry> {
    all_entries()
        .into_iter()
        .filter(|e| e.task == Task::Classification)
        .collect()
}

/// Entries in the anomaly-detection suite.
pub fn anomaly_suite() -> Vec<ArchiveEntry> {
    all_entries()
        .into_iter()
        .filter(|e| e.task == Task::AnomalyDetection)
        .collect()
}

/// Entries in the long-series suite.
pub fn long_suite() -> Vec<ArchiveEntry> {
    all_entries()
        .into_iter()
        .filter(|e| e.task == Task::LongSeries)
        .collect()
}

/// Looks an entry up by name.
pub fn by_name(name: &str) -> Option<ArchiveEntry> {
    all_entries().into_iter().find(|e| e.name == name)
}

/// Looks an entry up by name, or returns a [`TcslError::Config`] that
/// lists every available dataset — the error the CLI shows for a typo'd
/// dataset name.
pub fn require(name: &str) -> tcsl_error::TcslResult<ArchiveEntry> {
    by_name(name).ok_or_else(|| {
        let names: Vec<&str> = all_entries().iter().map(|e| e.name).collect();
        tcsl_error::TcslError::config(format!(
            "unknown dataset '{name}'; available: {}",
            names.join(", ")
        ))
    })
}

/// Generates the `(train, test)` split of an entry, deterministically in
/// `seed`. Class-structured families share their class prototypes (e.g.
/// motifs) between the splits, as a real archive would.
pub fn generate_split(entry: &ArchiveEntry, seed: u64) -> (Dataset, Dataset) {
    let mut rng = seeded(seed);
    match &entry.family {
        Family::Anomaly(cfg) => {
            let total = anomaly::generate(cfg, entry.n_train + entry.n_test, &mut rng);
            let train_idx: Vec<usize> = (0..entry.n_train).collect();
            let test_idx: Vec<usize> = (entry.n_train..total.len()).collect();
            (
                total.subset(&train_idx, format!("{}-train", entry.name)),
                total.subset(&test_idx, format!("{}-test", entry.name)),
            )
        }
        family => {
            let per_class = entry.n_train + entry.n_test;
            let total = match family {
                Family::Gesture(cfg) => gesture::generate(cfg, per_class, &mut rng),
                Family::Motif(cfg) => motif::generate(cfg, per_class, &mut rng),
                Family::Periodic(cfg) => periodic::generate(cfg, per_class, &mut rng),
                Family::Trend(cfg) => trend::generate(cfg, per_class, &mut rng),
                Family::LeadLag(cfg) => leadlag::generate(cfg, per_class, &mut rng),
                // Invariant: the anomaly family took the branch above.
                #[allow(clippy::disallowed_macros)]
                Family::Anomaly(_) => unreachable!("handled above"),
            };
            // Generators emit class blocks of `per_class` consecutive series;
            // the first `n_train` of each block form the training split.
            let n_classes = total.n_classes();
            let mut train_idx = Vec::with_capacity(n_classes * entry.n_train);
            let mut test_idx = Vec::with_capacity(n_classes * entry.n_test);
            for c in 0..n_classes {
                let base = c * per_class;
                train_idx.extend(base..base + entry.n_train);
                test_idx.extend(base + entry.n_train..base + per_class);
            }
            (
                total.subset(&train_idx, format!("{}-train", entry.name)),
                total.subset(&test_idx, format!("{}-test", entry.name)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let entries = all_entries();
        assert!(entries.len() >= 15);
        // Unique names.
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "duplicate archive names");
        assert!(classification_suite().len() >= 11);
        assert_eq!(anomaly_suite().len(), 3);
        assert_eq!(long_suite().len(), 3);
    }

    #[test]
    fn by_name_round_trip() {
        assert!(by_name("GestureFull").is_some());
        assert!(by_name("NoSuchDataset").is_none());
    }

    #[test]
    fn require_lists_available_names_on_unknown() {
        assert!(require("MotifEasy").is_ok());
        let err = require("NoSuchDataset").unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        let msg = err.to_string();
        assert!(msg.contains("NoSuchDataset"), "{msg}");
        assert!(msg.contains("GestureFull"), "names listed: {msg}");
        assert!(msg.contains("MotifEasy"), "names listed: {msg}");
    }

    #[test]
    fn split_sizes_match_entry() {
        let entry = by_name("MotifEasy").unwrap();
        let (train, test) = generate_split(&entry, 42);
        assert_eq!(train.len(), 2 * entry.n_train);
        assert_eq!(test.len(), 2 * entry.n_test);
        assert_eq!(train.n_classes(), 2);
        assert_eq!(test.n_classes(), 2);
    }

    #[test]
    fn split_is_deterministic_and_disjoint_across_seeds() {
        let entry = by_name("PeriodicWave").unwrap();
        let (a_train, _) = generate_split(&entry, 7);
        let (b_train, _) = generate_split(&entry, 7);
        assert_eq!(a_train.series(0), b_train.series(0));
        let (c_train, _) = generate_split(&entry, 8);
        assert_ne!(a_train.series(0), c_train.series(0));
    }

    #[test]
    fn anomaly_split_total_counts() {
        let entry = by_name("AnomSpike").unwrap();
        let (train, test) = generate_split(&entry, 1);
        assert_eq!(train.len(), 120);
        assert_eq!(test.len(), 120);
        // Both halves should contain anomalies.
        assert!(test.labels().unwrap().contains(&1));
    }

    #[test]
    fn long_entries_have_long_series() {
        let entry = by_name("LongMotif2k").unwrap();
        let (train, _) = generate_split(&entry, 1);
        assert_eq!(train.series(0).len(), 2048);
    }
}

// The error wall (clippy.toml) exempts test builds: tests assert on values
// and unwrap() freely.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]
//! `tcsl-error` — the one typed error taxonomy of the TimeCSL workspace.
//!
//! Every layer between disk and answer (data loaders, bank/model parsing,
//! the transform pipeline, the analyzers, the exploration session, the
//! CLI) returns a [`TcslError`] instead of aborting the process. The
//! taxonomy is deliberately small and *request-shaped*: a server embedding
//! this stack maps each class to a response status, the CLI maps each to a
//! distinct exit code ([`TcslError::exit_code`]), and the observability
//! layer counts them per class ([`ErrorClass::name`] is the stable
//! `error.<class>` counter suffix).
//!
//! **Panic policy** (see DESIGN.md "Error taxonomy & panic policy"): a
//! panic means a *bug* — an internal invariant that user input cannot
//! reach once the boundary validation in this taxonomy has passed. User
//! data, model files, request payloads and configuration always surface as
//! `Err(TcslError)`.
//!
//! The crate is std-only and dependency-free, so every workspace crate can
//! depend on it without cycles.
//!
//! # Context chaining
//!
//! [`TcslError::context`] (and the [`ResultExt`] helpers) wrap an error in
//! an operation description without losing its class:
//!
//! ```
//! use tcsl_error::{ErrorClass, ResultExt, TcslError};
//!
//! fn parse() -> Result<(), TcslError> {
//!     Err(TcslError::model_format("tcsl-model header", "empty file"))
//! }
//! let err = parse().context("loading model.tcsl").unwrap_err();
//! assert_eq!(err.class(), ErrorClass::ModelFormat);
//! assert!(err.to_string().starts_with("loading model.tcsl: "));
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

/// Convenience alias used across the workspace's request path.
pub type TcslResult<T> = Result<T, TcslError>;

/// The class of a [`TcslError`] — stable across context wrapping, used for
/// exit codes, per-class counters, and variant-pinning tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Invalid configuration, arguments, or API usage.
    Config,
    /// A filesystem operation failed.
    Io,
    /// Malformed textual input (CSV, `.ts`, numeric fields of a model).
    Parse,
    /// A model/bank file is structurally wrong (magic, sections, counts).
    ModelFormat,
    /// Input dimensions disagree with what the model/analyzer expects.
    ShapeMismatch,
    /// An input that must be non-empty is empty.
    EmptyInput,
    /// An input carries NaN/inf where finite values are required.
    NonFiniteInput,
    /// An internal invariant failed — a bug, reported without aborting.
    Internal,
}

impl ErrorClass {
    /// Every class, in exit-code order.
    pub const ALL: [ErrorClass; 8] = [
        ErrorClass::Config,
        ErrorClass::Io,
        ErrorClass::Parse,
        ErrorClass::ModelFormat,
        ErrorClass::ShapeMismatch,
        ErrorClass::EmptyInput,
        ErrorClass::NonFiniteInput,
        ErrorClass::Internal,
    ];

    /// Stable lower-snake name: the `error.<class>` counter suffix and the
    /// `class` field of structured `error` trace events.
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::Config => "config",
            ErrorClass::Io => "io",
            ErrorClass::Parse => "parse",
            ErrorClass::ModelFormat => "model_format",
            ErrorClass::ShapeMismatch => "shape_mismatch",
            ErrorClass::EmptyInput => "empty_input",
            ErrorClass::NonFiniteInput => "non_finite_input",
            ErrorClass::Internal => "internal",
        }
    }

    /// The CLI exit code of this class (documented in the README):
    /// `2..=9`, distinct per class, `2` doubling as the generic usage-error
    /// code.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorClass::Config => 2,
            ErrorClass::Io => 3,
            ErrorClass::Parse => 4,
            ErrorClass::ModelFormat => 5,
            ErrorClass::ShapeMismatch => 6,
            ErrorClass::EmptyInput => 7,
            ErrorClass::NonFiniteInput => 8,
            ErrorClass::Internal => 9,
        }
    }
}

/// The workspace-wide typed error.
///
/// Variants carry enough structure for a caller to react (retry, report,
/// map to a status) without string matching; [`TcslError::class`] is the
/// stable discriminant that survives [`TcslError::context`] wrapping.
#[derive(Debug)]
pub enum TcslError {
    /// Invalid configuration, arguments, or API usage.
    Config(String),
    /// A filesystem operation failed on `path`.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Malformed textual input.
    Parse {
        /// What was being parsed (a dataset name, file stem, or format).
        source: String,
        /// 1-based line of the offending input; `0` when unknown.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A model/bank file is structurally wrong.
    ModelFormat {
        /// What the format required at this point.
        expected: String,
        /// What the file actually contained.
        found: String,
    },
    /// Input dimensions disagree with what the consumer expects.
    ShapeMismatch {
        /// Which quantity mismatched (e.g. "series variables").
        what: String,
        /// The expected extent.
        expected: String,
        /// The extent actually supplied.
        found: String,
    },
    /// An input that must be non-empty is empty.
    EmptyInput(String),
    /// An input carries NaN/inf where finite values are required.
    NonFiniteInput(String),
    /// An internal invariant failed — a bug surfaced as a value.
    Internal(String),
    /// A wrapped error with an operation description prepended. The class
    /// (and therefore exit code / counter) is the wrapped error's.
    Context {
        /// The operation that was running.
        context: String,
        /// The underlying error.
        source: Box<TcslError>,
    },
}

impl TcslError {
    /// Builds a [`TcslError::Config`].
    pub fn config(message: impl Into<String>) -> TcslError {
        TcslError::Config(message.into())
    }

    /// Builds a [`TcslError::Io`] from a path and the OS error.
    pub fn io(path: impl AsRef<Path>, source: std::io::Error) -> TcslError {
        TcslError::Io {
            path: path.as_ref().to_path_buf(),
            source,
        }
    }

    /// Builds a [`TcslError::Parse`]; `line` is 1-based (`0` = unknown).
    pub fn parse(source: impl Into<String>, line: usize, message: impl Into<String>) -> TcslError {
        TcslError::Parse {
            source: source.into(),
            line,
            message: message.into(),
        }
    }

    /// Builds a [`TcslError::ModelFormat`].
    pub fn model_format(expected: impl Into<String>, found: impl Into<String>) -> TcslError {
        TcslError::ModelFormat {
            expected: expected.into(),
            found: found.into(),
        }
    }

    /// Builds a [`TcslError::ShapeMismatch`].
    pub fn shape_mismatch(
        what: impl Into<String>,
        expected: impl fmt::Display,
        found: impl fmt::Display,
    ) -> TcslError {
        TcslError::ShapeMismatch {
            what: what.into(),
            expected: expected.to_string(),
            found: found.to_string(),
        }
    }

    /// Builds a [`TcslError::EmptyInput`].
    pub fn empty(what: impl Into<String>) -> TcslError {
        TcslError::EmptyInput(what.into())
    }

    /// Builds a [`TcslError::NonFiniteInput`].
    pub fn non_finite(what: impl Into<String>) -> TcslError {
        TcslError::NonFiniteInput(what.into())
    }

    /// Builds a [`TcslError::Internal`].
    pub fn internal(message: impl Into<String>) -> TcslError {
        TcslError::Internal(message.into())
    }

    /// Wraps `self` with an operation description. The class is preserved.
    pub fn context(self, context: impl Into<String>) -> TcslError {
        TcslError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// The error's class, looking through any [`TcslError::Context`]
    /// wrapping.
    pub fn class(&self) -> ErrorClass {
        match self {
            TcslError::Config(_) => ErrorClass::Config,
            TcslError::Io { .. } => ErrorClass::Io,
            TcslError::Parse { .. } => ErrorClass::Parse,
            TcslError::ModelFormat { .. } => ErrorClass::ModelFormat,
            TcslError::ShapeMismatch { .. } => ErrorClass::ShapeMismatch,
            TcslError::EmptyInput(_) => ErrorClass::EmptyInput,
            TcslError::NonFiniteInput(_) => ErrorClass::NonFiniteInput,
            TcslError::Internal(_) => ErrorClass::Internal,
            TcslError::Context { source, .. } => source.class(),
        }
    }

    /// The process exit code of this error's class.
    pub fn exit_code(&self) -> u8 {
        self.class().exit_code()
    }
}

impl fmt::Display for TcslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcslError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            TcslError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            TcslError::Parse {
                source,
                line,
                message,
            } => {
                if *line > 0 {
                    write!(f, "{source}: line {line}: {message}")
                } else {
                    write!(f, "{source}: {message}")
                }
            }
            TcslError::ModelFormat { expected, found } => {
                write!(
                    f,
                    "malformed model file: expected {expected}, found {found}"
                )
            }
            TcslError::ShapeMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what} mismatch: expected {expected}, got {found}"),
            TcslError::EmptyInput(what) => write!(f, "empty input: {what}"),
            TcslError::NonFiniteInput(what) => {
                write!(
                    f,
                    "non-finite input: {what} contains NaN or infinite values"
                )
            }
            TcslError::Internal(msg) => write!(f, "internal error (please report): {msg}"),
            TcslError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for TcslError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TcslError::Io { source, .. } => Some(source),
            TcslError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Context-chaining helpers for `Result<_, TcslError>` (and anything whose
/// error converts into one).
pub trait ResultExt<T> {
    /// Wraps the error (if any) with an operation description.
    fn context(self, context: impl Into<String>) -> TcslResult<T>;

    /// Like [`ResultExt::context`], but builds the description lazily.
    fn with_context<F: FnOnce() -> String>(self, f: F) -> TcslResult<T>;
}

impl<T, E: Into<TcslError>> ResultExt<T> for Result<T, E> {
    fn context(self, context: impl Into<String>) -> TcslResult<T> {
        self.map_err(|e| e.into().context(context))
    }

    fn with_context<F: FnOnce() -> String>(self, f: F) -> TcslResult<T> {
        self.map_err(|e| e.into().context(f()))
    }
}

/// Reads a file to a string, mapping the failure to [`TcslError::Io`] with
/// the path attached — the common first step of every loader.
pub fn read_to_string(path: impl AsRef<Path>) -> TcslResult<String> {
    std::fs::read_to_string(&path).map_err(|e| TcslError::io(&path, e))
}

/// Writes bytes to a file, mapping the failure to [`TcslError::Io`] with
/// the path attached.
pub fn write_file(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> TcslResult<()> {
    std::fs::write(&path, contents).map_err(|e| TcslError::io(&path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_have_distinct_exit_codes_and_names() {
        let mut codes: Vec<u8> = ErrorClass::ALL.iter().map(|c| c.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), ErrorClass::ALL.len(), "exit codes collide");
        assert!(codes.iter().all(|&c| c >= 2), "0/1 are reserved");
        let mut names: Vec<&str> = ErrorClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ErrorClass::ALL.len(), "counter names collide");
    }

    #[test]
    fn context_preserves_class_and_exit_code() {
        let err = TcslError::parse("train.csv", 12, "bad value")
            .context("loading dataset")
            .context("timecsl transform");
        assert_eq!(err.class(), ErrorClass::Parse);
        assert_eq!(err.exit_code(), ErrorClass::Parse.exit_code());
        assert_eq!(
            err.to_string(),
            "timecsl transform: loading dataset: train.csv: line 12: bad value"
        );
    }

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(TcslError, &str)> = vec![
            (
                TcslError::config("epochs must be numeric"),
                "invalid configuration",
            ),
            (
                TcslError::io(
                    "/no/such/file",
                    std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
                ),
                "/no/such/file",
            ),
            (
                TcslError::parse("x.csv", 0, "bad header"),
                "x.csv: bad header",
            ),
            (
                TcslError::model_format("tcsl-bank v1 header", "bogus"),
                "malformed model file",
            ),
            (
                TcslError::shape_mismatch("series variables", 2, 1),
                "expected 2, got 1",
            ),
            (TcslError::empty("dataset"), "empty input: dataset"),
            (TcslError::non_finite("series 3"), "NaN or infinite"),
            (TcslError::internal("oops"), "please report"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error as _;
        let err = TcslError::io(
            "f",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        )
        .context("reading");
        // Context → Io → io::Error.
        let inner = err.source().expect("context has a source");
        assert!(inner.source().is_some(), "Io keeps the OS error as source");
    }

    #[test]
    fn result_ext_lazy_context_only_runs_on_err() {
        let ok: TcslResult<u32> = Ok(7);
        let got = ok.with_context(|| unreachable!("must not run on Ok"));
        assert_eq!(got.unwrap(), 7);
        let err: TcslResult<u32> = Err(TcslError::empty("corpus"));
        let wrapped = err.with_context(|| "scoring".to_string()).unwrap_err();
        assert_eq!(wrapped.class(), ErrorClass::EmptyInput);
    }

    #[test]
    fn file_helpers_attach_the_path() {
        let err = read_to_string("/definitely/not/here.tcsl").unwrap_err();
        assert_eq!(err.class(), ErrorClass::Io);
        assert!(err.to_string().contains("/definitely/not/here.tcsl"));
    }
}

//! Summary statistics for experiment reporting.

/// Mean of a sample (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator; 0 when n < 2).
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Normal-approximation 95% confidence half-width of the mean.
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * sample_std(xs) / (xs.len() as f64).sqrt()
}

/// Two-sided sign test p-value (binomial, normal approximation for n > 25)
/// for paired samples: tests whether `a` tends to exceed `b`. Ties are
/// dropped. Returns 1.0 when everything ties.
pub fn sign_test_p(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired samples required");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x - y)
        .filter(|d| d.abs() > 1e-12)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return 1.0;
    }
    let k = diffs.iter().filter(|&&d| d > 0.0).count();
    let k_ext = k.max(n - k);
    if n <= 25 {
        // Exact two-sided binomial tail.
        let mut tail = 0.0f64;
        for i in k_ext..=n {
            tail += binom(n, i);
        }
        (2.0 * tail / 2f64.powi(n as i32)).min(1.0)
    } else {
        // Normal approximation with continuity correction.
        let mu = n as f64 / 2.0;
        let sigma = (n as f64 / 4.0).sqrt();
        let z = ((k_ext as f64 - 0.5) - mu) / sigma;
        (2.0 * (1.0 - phi(z))).clamp(0.0, 1.0)
    }
}

fn binom(n: usize, k: usize) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..k.min(n - k) {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Standard normal CDF (Abramowitz–Stegun approximation).
fn phi(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.231_641_9 * z.abs());
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    let cdf = 1.0 - (-z * z / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
    if z >= 0.0 {
        cdf
    } else {
        1.0 - cdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((sample_std(&xs) - (5.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert!(ci95_half_width(&xs) > 0.0);
    }

    #[test]
    fn sign_test_detects_consistent_difference() {
        let a: Vec<f64> = (0..20).map(|i| i as f64 + 1.0).collect();
        let b: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert!(sign_test_p(&a, &b) < 0.01);
    }

    #[test]
    fn sign_test_neutral_for_mixed() {
        let a = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let b = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        assert!(sign_test_p(&a, &b) > 0.5);
    }

    #[test]
    fn sign_test_all_ties_is_one() {
        let a = [1.0, 2.0];
        assert_eq!(sign_test_p(&a, &a), 1.0);
    }

    #[test]
    fn phi_is_a_cdf() {
        assert!((phi(0.0) - 0.5).abs() < 1e-6);
        assert!(phi(3.0) > 0.99);
        assert!(phi(-3.0) < 0.01);
        assert!((phi(1.0) + phi(-1.0) - 1.0).abs() < 1e-6);
    }
}

#![warn(missing_docs)]

//! # tcsl-eval
//!
//! Evaluation machinery for the TimeCSL experiments: classification,
//! clustering and anomaly-detection metrics (in `f64`), the average-rank
//! aggregation behind the paper's Figure 1 (smaller rank = better method
//! across the archive), and plain-text/markdown table rendering for the
//! experiment harnesses. Dependency-free by design.

pub mod metrics;
pub mod ranking;
pub mod report;
pub mod stats;

pub use ranking::{average_ranks, RankSummary};
pub use report::Table;

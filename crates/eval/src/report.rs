//! Plain-text and markdown table rendering for the experiment harnesses.

/// A simple string table with aligned ASCII and markdown renderers.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: formats `f64` cells to 4 decimals after a leading label.
    pub fn row_metric(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders the table with aligned columns.
    pub fn to_ascii(&self) -> String {
        let w = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(&w)
                .map(|(c, &width)| format!("{c:<width$}"))
                .collect();
            parts.join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a     "));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(&["m", "acc"]);
        t.row_metric("csl", &[0.91234]);
        let md = t.to_markdown();
        assert!(md.contains("| m | acc |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| csl | 0.9123 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        Table::new(&["a", "b"]).row(vec!["only one".into()]);
    }
}

//! Metrics grouped by task.

pub mod anomaly;
pub mod classification;
pub mod clustering;

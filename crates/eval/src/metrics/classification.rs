//! Classification metrics.

/// Fraction of predictions equal to the truth. Panics on length mismatch;
/// returns 0 for empty inputs.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Confusion matrix `m[truth][pred]` over `n_classes`.
pub fn confusion_matrix(pred: &[usize], truth: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        assert!(p < n_classes && t < n_classes, "label out of range");
        m[t][p] += 1;
    }
    m
}

/// Per-class precision, recall and F1 (0 where undefined).
pub fn per_class_prf(pred: &[usize], truth: &[usize], n_classes: usize) -> Vec<(f64, f64, f64)> {
    let m = confusion_matrix(pred, truth, n_classes);
    (0..n_classes)
        .map(|c| {
            let tp = m[c][c] as f64;
            let fp: f64 = (0..n_classes)
                .filter(|&t| t != c)
                .map(|t| m[t][c] as f64)
                .sum();
            let fn_: f64 = (0..n_classes)
                .filter(|&p| p != c)
                .map(|p| m[c][p] as f64)
                .sum();
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            (precision, recall, f1)
        })
        .collect()
}

/// Macro-averaged F1.
pub fn macro_f1(pred: &[usize], truth: &[usize], n_classes: usize) -> f64 {
    let prf = per_class_prf(pred, truth, n_classes);
    prf.iter().map(|&(_, _, f1)| f1).sum::<f64>() / n_classes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[1][1], 1);
    }

    #[test]
    fn perfect_prediction_has_unit_f1() {
        let y = [0usize, 1, 2, 0, 1, 2];
        let prf = per_class_prf(&y, &y, 3);
        for (p, r, f1) in prf {
            assert_eq!(p, 1.0);
            assert_eq!(r, 1.0);
            assert_eq!(f1, 1.0);
        }
        assert_eq!(macro_f1(&y, &y, 3), 1.0);
    }

    #[test]
    fn absent_class_has_zero_f1() {
        // Class 2 never predicted and never true.
        let pred = [0usize, 1, 0, 1];
        let truth = [0usize, 1, 1, 0];
        let prf = per_class_prf(&pred, &truth, 3);
        assert_eq!(prf[2], (0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }
}

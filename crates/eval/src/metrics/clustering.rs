//! Clustering metrics against ground-truth labels.

/// Contingency table `t[cluster][class]`.
fn contingency(assign: &[usize], truth: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(
        assign.len(),
        truth.len(),
        "assignment/truth length mismatch"
    );
    let kc = assign.iter().copied().max().map_or(0, |m| m + 1);
    let kt = truth.iter().copied().max().map_or(0, |m| m + 1);
    let mut t = vec![vec![0usize; kt]; kc];
    for (&a, &y) in assign.iter().zip(truth) {
        t[a][y] += 1;
    }
    t
}

fn entropy(counts: &[usize], n: f64) -> f64 {
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Normalized mutual information (arithmetic normalization), in `[0, 1]`.
pub fn nmi(assign: &[usize], truth: &[usize]) -> f64 {
    let n = assign.len() as f64;
    if assign.is_empty() {
        return 0.0;
    }
    let t = contingency(assign, truth);
    let row_sums: Vec<usize> = t.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<usize> = (0..t[0].len())
        .map(|c| t.iter().map(|r| r[c]).sum())
        .collect();
    let mut mi = 0.0;
    for (i, row) in t.iter().enumerate() {
        for (j, &cell) in row.iter().enumerate() {
            if cell == 0 {
                continue;
            }
            let pij = cell as f64 / n;
            let pi = row_sums[i] as f64 / n;
            let pj = col_sums[j] as f64 / n;
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    let ha = entropy(&row_sums, n);
    let hb = entropy(&col_sums, n);
    let denom = 0.5 * (ha + hb);
    if denom < 1e-12 {
        // Both partitions are single-cluster: identical ⇒ 1.
        return 1.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

fn comb2(n: usize) -> f64 {
    let n = n as f64;
    n * (n - 1.0) / 2.0
}

/// Adjusted Rand index, in `[-1, 1]` (1 = identical partitions, ~0 =
/// random).
pub fn adjusted_rand_index(assign: &[usize], truth: &[usize]) -> f64 {
    let n = assign.len();
    if n < 2 {
        return 1.0;
    }
    let t = contingency(assign, truth);
    let row_sums: Vec<usize> = t.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<usize> = (0..t[0].len())
        .map(|c| t.iter().map(|r| r[c]).sum())
        .collect();
    let sum_cells: f64 = t.iter().flatten().map(|&c| comb2(c)).sum();
    let sum_rows: f64 = row_sums.iter().map(|&c| comb2(c)).sum();
    let sum_cols: f64 = col_sums.iter().map(|&c| comb2(c)).sum();
    let total = comb2(n);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_cells - expected) / (max_index - expected)
}

/// Plain Rand index in `[0, 1]`: fraction of agreeing pairs.
pub fn rand_index(assign: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(
        assign.len(),
        truth.len(),
        "assignment/truth length mismatch"
    );
    let n = assign.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if (assign[i] == assign[j]) == (truth[i] == truth[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

/// Purity: each cluster votes its majority class.
pub fn purity(assign: &[usize], truth: &[usize]) -> f64 {
    if assign.is_empty() {
        return 0.0;
    }
    let t = contingency(assign, truth);
    let majority_total: usize = t.iter().map(|r| r.iter().copied().max().unwrap_or(0)).sum();
    majority_total as f64 / assign.len() as f64
}

/// Mean silhouette coefficient over points (Euclidean), in `[-1, 1]`.
/// Points in singleton clusters contribute 0.
pub fn silhouette(points: &[Vec<f32>], assign: &[usize]) -> f64 {
    assert_eq!(
        points.len(),
        assign.len(),
        "points/assignment length mismatch"
    );
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let k = assign.iter().copied().max().map_or(0, |m| m + 1);
    let dist = |a: &[f32], b: &[f32]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let mut total = 0.0;
    for i in 0..n {
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[assign[j]] += dist(&points[i], &points[j]);
            counts[assign[j]] += 1;
        }
        let own = assign[i];
        if counts[own] == 0 {
            continue; // singleton
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let y = [0usize, 0, 1, 1, 2, 2];
        assert!((nmi(&y, &y) - 1.0).abs() < 1e-9);
        assert!((adjusted_rand_index(&y, &y) - 1.0).abs() < 1e-9);
        assert_eq!(rand_index(&y, &y), 1.0);
        assert_eq!(purity(&y, &y), 1.0);
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        let truth = [0usize, 0, 1, 1];
        let flipped = [1usize, 1, 0, 0];
        assert!((nmi(&flipped, &truth) - 1.0).abs() < 1e-9);
        assert!((adjusted_rand_index(&flipped, &truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_cluster_against_two_classes() {
        let assign = [0usize, 0, 0, 0];
        let truth = [0usize, 0, 1, 1];
        assert!(nmi(&assign, &truth) < 1e-9);
        assert!(adjusted_rand_index(&assign, &truth).abs() < 1e-9);
        assert_eq!(purity(&assign, &truth), 0.5);
    }

    #[test]
    fn ari_near_zero_for_random_like_assignment() {
        // Alternating assignment against block truth.
        let assign: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let truth: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        assert!(adjusted_rand_index(&assign, &truth).abs() < 0.15);
    }

    #[test]
    fn silhouette_high_for_tight_separated_clusters() {
        let mut pts = Vec::new();
        let mut assign = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f32]);
            assign.push(0);
            pts.push(vec![10.0 + 0.01 * i as f32]);
            assign.push(1);
        }
        assert!(silhouette(&pts, &assign) > 0.9);
    }

    #[test]
    fn silhouette_low_for_mixed_clusters() {
        let pts: Vec<Vec<f32>> = (0..20).map(|i| vec![(i % 5) as f32]).collect();
        let assign: Vec<usize> = (0..20).map(|i| i % 2).collect();
        assert!(silhouette(&pts, &assign) < 0.2);
    }
}

//! Anomaly-detection metrics over continuous scores.

/// Area under the ROC curve via the Mann–Whitney U statistic (ties share
/// rank). `labels` are `true` for anomalies, scores higher = more anomalous.
/// Returns 0.5 when either class is absent.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Rank scores ascending with average ranks for ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&r, _)| r)
        .sum();
    let u = rank_sum_pos - (pos as f64) * (pos as f64 + 1.0) / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Average precision (area under the precision–recall curve, step-wise).
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    if pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let mut tp = 0usize;
    let mut ap = 0.0f64;
    for (seen, &idx) in order.iter().enumerate() {
        if labels[idx] {
            tp += 1;
            ap += tp as f64 / (seen + 1) as f64;
        }
    }
    ap / pos as f64
}

/// Best F1 over all score thresholds.
pub fn best_f1(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    if pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let mut tp = 0usize;
    let mut best = 0.0f64;
    for (seen, &idx) in order.iter().enumerate() {
        if labels[idx] {
            tp += 1;
        }
        let precision = tp as f64 / (seen + 1) as f64;
        let recall = tp as f64 / pos as f64;
        if precision + recall > 0.0 {
            best = best.max(2.0 * precision * recall / (precision + recall));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_unit_auc() {
        let scores = [0.1f32, 0.2, 0.9, 0.8];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-9);
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-9);
        assert!((best_f1(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_scores_give_zero_auc() {
        let scores = [0.9f32, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert!(roc_auc(&scores, &labels).abs() < 1e-9);
    }

    #[test]
    fn random_like_scores_near_half() {
        let scores: Vec<f32> = (0..100).map(|i| ((i * 37) % 100) as f32).collect();
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let auc = roc_auc(&scores, &labels);
        assert!((auc - 0.5).abs() < 0.15, "auc {auc}");
    }

    #[test]
    fn ties_share_rank() {
        // All equal scores → AUC exactly 0.5 regardless of labels.
        let scores = [1.0f32; 6];
        let labels = [true, false, true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_label_sets() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(average_precision(&[1.0, 2.0], &[false, false]), 0.0);
        assert_eq!(best_f1(&[1.0], &[false]), 0.0);
    }
}

//! Average-rank aggregation across datasets — the statistic behind the
//! paper's Figure 1 ("smaller is better": each method is ranked per
//! dataset, then ranks are averaged over the archive).

/// Whether larger metric values are better (accuracy, NMI, AUC) or worse
/// (time, error).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Larger values rank better.
    HigherIsBetter,
    /// Smaller values rank better.
    LowerIsBetter,
}

/// Aggregated ranking of methods across datasets.
#[derive(Clone, Debug)]
pub struct RankSummary {
    /// Method names, in input order.
    pub methods: Vec<String>,
    /// Mean rank per method (1 = always best).
    pub mean_ranks: Vec<f64>,
    /// Number of datasets where each method ranked (solo) first.
    pub wins: Vec<usize>,
    /// Per-dataset rank matrix `[dataset][method]`.
    pub per_dataset_ranks: Vec<Vec<f64>>,
}

impl RankSummary {
    /// Index of the method with the best (smallest) mean rank.
    pub fn best_method(&self) -> usize {
        let mut best = 0;
        for (i, &r) in self.mean_ranks.iter().enumerate() {
            if r < self.mean_ranks[best] {
                best = i;
            }
        }
        best
    }
}

/// Ranks each row of `scores[dataset][method]` (ties receive the average of
/// the tied ranks) and averages over datasets.
pub fn average_ranks(methods: &[&str], scores: &[Vec<f64>], direction: Direction) -> RankSummary {
    assert!(!methods.is_empty(), "need at least one method");
    assert!(!scores.is_empty(), "need at least one dataset");
    for (d, row) in scores.iter().enumerate() {
        assert_eq!(
            row.len(),
            methods.len(),
            "dataset {d} has wrong method count"
        );
    }
    let m = methods.len();
    let mut per_dataset_ranks = Vec::with_capacity(scores.len());
    let mut mean = vec![0.0f64; m];
    let mut wins = vec![0usize; m];
    for row in scores {
        let ranks = rank_row(row, direction);
        // Solo winner: rank exactly 1.0.
        for (i, &r) in ranks.iter().enumerate() {
            if (r - 1.0).abs() < 1e-12 {
                wins[i] += 1;
            }
            mean[i] += r;
        }
        per_dataset_ranks.push(ranks);
    }
    for r in &mut mean {
        *r /= scores.len() as f64;
    }
    RankSummary {
        methods: methods.iter().map(|s| s.to_string()).collect(),
        mean_ranks: mean,
        wins,
        per_dataset_ranks,
    }
}

/// Ranks one score row (1 = best) with average-tied ranks.
pub fn rank_row(row: &[f64], direction: Direction) -> Vec<f64> {
    let m = row.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        let cmp = row[a].partial_cmp(&row[b]).expect("finite scores");
        match direction {
            Direction::HigherIsBetter => cmp.reverse(),
            Direction::LowerIsBetter => cmp,
        }
    });
    let mut ranks = vec![0.0f64; m];
    let mut i = 0;
    while i < m {
        let mut j = i;
        while j + 1 < m && row[order[j + 1]] == row[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranking_higher_better() {
        let ranks = rank_row(&[0.9, 0.7, 0.8], Direction::HigherIsBetter);
        assert_eq!(ranks, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn simple_ranking_lower_better() {
        let ranks = rank_row(&[10.0, 5.0, 20.0], Direction::LowerIsBetter);
        assert_eq!(ranks, vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn ties_get_average_rank() {
        let ranks = rank_row(&[0.5, 0.5, 0.1], Direction::HigherIsBetter);
        assert_eq!(ranks, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn aggregate_over_datasets() {
        let scores = vec![
            vec![0.9, 0.8, 0.7], // method0 wins
            vec![0.6, 0.9, 0.7], // method1 wins
            vec![0.9, 0.5, 0.6], // method0 wins
        ];
        let summary = average_ranks(&["a", "b", "c"], &scores, Direction::HigherIsBetter);
        assert_eq!(summary.wins, vec![2, 1, 0]);
        assert_eq!(summary.best_method(), 0);
        assert!((summary.mean_ranks[0] - (1.0 + 3.0 + 1.0) / 3.0).abs() < 1e-12);
        assert_eq!(summary.per_dataset_ranks.len(), 3);
    }

    #[test]
    #[should_panic(expected = "wrong method count")]
    fn ragged_input_panics() {
        average_ranks(&["a", "b"], &[vec![1.0]], Direction::HigherIsBetter);
    }
}

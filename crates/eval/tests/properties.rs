//! Property tests for metric and ranking invariants.

use proptest::prelude::*;
use tcsl_eval::metrics::anomaly::roc_auc;
use tcsl_eval::metrics::classification::{accuracy, confusion_matrix, macro_f1};
use tcsl_eval::metrics::clustering::{adjusted_rand_index, nmi, purity, rand_index};
use tcsl_eval::ranking::{average_ranks, rank_row, Direction};

fn labels(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..4, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accuracy_bounds_and_identity(y in labels(20)) {
        prop_assert_eq!(accuracy(&y, &y), 1.0);
        let shifted: Vec<usize> = y.iter().map(|&l| (l + 1) % 4).collect();
        prop_assert_eq!(accuracy(&shifted, &y), 0.0);
    }

    #[test]
    fn confusion_matrix_totals(pred in labels(30), truth in labels(30)) {
        let m = confusion_matrix(&pred, &truth, 4);
        let total: usize = m.iter().flatten().sum();
        prop_assert_eq!(total, 30);
        let diag: usize = (0..4).map(|c| m[c][c]).sum();
        prop_assert!((accuracy(&pred, &truth) - diag as f64 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_in_unit_interval(pred in labels(25), truth in labels(25)) {
        let f1 = macro_f1(&pred, &truth, 4);
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn clustering_metrics_are_permutation_invariant(truth in labels(24), perm_shift in 1usize..4) {
        // Relabeling clusters must not change any score.
        let assign = truth.clone();
        let relabeled: Vec<usize> = assign.iter().map(|&c| (c + perm_shift) % 4).collect();
        prop_assert!((nmi(&assign, &truth) - nmi(&relabeled, &truth)).abs() < 1e-9);
        prop_assert!(
            (adjusted_rand_index(&assign, &truth) - adjusted_rand_index(&relabeled, &truth)).abs()
                < 1e-9
        );
        prop_assert!((rand_index(&assign, &truth) - rand_index(&relabeled, &truth)).abs() < 1e-9);
        prop_assert!((purity(&assign, &truth) - purity(&relabeled, &truth)).abs() < 1e-9);
    }

    #[test]
    fn perfect_clustering_scores_one(truth in labels(16)) {
        prop_assume!(truth.iter().collect::<std::collections::HashSet<_>>().len() >= 2);
        prop_assert!((nmi(&truth, &truth) - 1.0).abs() < 1e-9);
        prop_assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_is_invariant_under_monotone_transforms(
        scores in proptest::collection::vec(0.0f32..1.0, 20..40),
    ) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 3 == 0).collect();
        let a = roc_auc(&scores, &labels);
        // Affine transform: exactly order-preserving in f32 (a nonlinear
        // map like s² can round distinct scores into ties and legitimately
        // change the tie-averaged AUC).
        let squashed: Vec<f32> = scores.iter().map(|&s| s * 2.0 + 1.0).collect();
        let b = roc_auc(&squashed, &labels);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }

    #[test]
    fn flipping_scores_flips_auc(scores in proptest::collection::vec(0.0f32..1.0, 10..30)) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
        let a = roc_auc(&scores, &labels);
        let negated: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let b = roc_auc(&negated, &labels);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_are_a_valid_assignment(row in proptest::collection::vec(-10.0f64..10.0, 2..8)) {
        let ranks = rank_row(&row, Direction::HigherIsBetter);
        // Ranks sum to n(n+1)/2 regardless of ties.
        let n = row.len() as f64;
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-9);
        for &r in &ranks {
            prop_assert!((1.0..=n).contains(&r));
        }
    }

    #[test]
    fn direction_reverses_rank_order(row in proptest::collection::vec(-10.0f64..10.0, 2..8)) {
        let hi = rank_row(&row, Direction::HigherIsBetter);
        let lo = rank_row(&row, Direction::LowerIsBetter);
        let n = row.len() as f64;
        for (a, b) in hi.iter().zip(&lo) {
            prop_assert!((a + b - (n + 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn average_ranks_best_method_has_min_rank(
        scores in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3..=3), 2..6),
    ) {
        let summary = average_ranks(&["a", "b", "c"], &scores, Direction::HigherIsBetter);
        let best = summary.best_method();
        for r in &summary.mean_ranks {
            prop_assert!(summary.mean_ranks[best] <= *r + 1e-12);
        }
    }
}

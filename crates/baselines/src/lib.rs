#![warn(missing_docs)]
// Index-based loops in the numeric kernels walk several parallel
// buffers at once; iterator rewrites obscure that correspondence.
#![allow(clippy::needless_range_loop)]

//! # tcsl-baselines
//!
//! The competitor methods TimeCSL's Figure 1 compares against, rebuilt from
//! scratch (see DESIGN.md's substitution table):
//!
//! * [`encoder::CnnEncoder`] — a dilated causal CNN encoder (the backbone
//!   family of TS2Vec / T-Loss / TNC) trained with three unsupervised
//!   objectives via [`url::CnnUrl`]:
//!   instance contrasting (SimCLR/TS2Vec-style), triplet logistic loss
//!   (T-Loss-style) and temporal-neighbourhood coding (TNC-style, which
//!   inherits the "distant-in-time ⇒ dissimilar" assumption the paper's
//!   introduction criticizes).
//! * [`dtw`] — dynamic time warping and the classical DTW-1NN classifier.
//! * [`features`] — a hand-crafted statistical feature extractor
//!   (catch22-flavoured subset).
//! * [`fcn`] — a supervised CNN classifier, the "traditional supervised
//!   method" of the semi-supervised study (E3).

pub mod dtw;
pub mod encoder;
pub mod fcn;
pub mod features;
pub mod url;

pub use dtw::Dtw1Nn;
pub use encoder::{CnnArch, CnnEncoder};
pub use fcn::SupervisedCnn;
pub use url::{CnnUrl, Objective, UrlConfig};

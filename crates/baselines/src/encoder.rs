//! A dilated causal 1-D CNN encoder — the representation backbone shared by
//! all deep baselines (and by the supervised FCN).
//!
//! Architecture: `L` causal convolution layers (kernel `k`, exponentially
//! increasing dilation, ReLU) followed by global max pooling over time, so
//! series of any length map to a fixed-size embedding — the same
//! length-agnostic property the shapelet transform has.

use rand::Rng;
use tcsl_autodiff::{Graph, VarId};
use tcsl_tensor::reduce::Axis;
use tcsl_tensor::Tensor;

/// Encoder architecture.
#[derive(Clone, Debug)]
pub struct CnnArch {
    /// Channels of each hidden layer.
    pub hidden: usize,
    /// Embedding dimensionality (channels of the last layer).
    pub out: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Dilation per layer (layer count = `dilations.len()`), e.g. `[1,2,4]`.
    pub dilations: Vec<usize>,
}

impl Default for CnnArch {
    fn default() -> Self {
        CnnArch {
            hidden: 16,
            out: 32,
            kernel: 3,
            dilations: vec![1, 2, 4],
        }
    }
}

/// The encoder: per-layer weights `(C_out, C_in·k)` and biases `(C_out)`.
#[derive(Clone, Debug)]
pub struct CnnEncoder {
    /// Input variables.
    pub d: usize,
    /// Architecture.
    pub arch: CnnArch,
    weights: Vec<Tensor>,
    biases: Vec<Tensor>,
}

impl CnnEncoder {
    /// He-initialized encoder for `d`-variate series.
    pub fn new(d: usize, arch: CnnArch, rng: &mut impl Rng) -> Self {
        assert!(d >= 1 && arch.kernel >= 1 && !arch.dilations.is_empty());
        let n_layers = arch.dilations.len();
        let mut weights = Vec::with_capacity(n_layers);
        let mut biases = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            let c_in = if l == 0 { d } else { arch.hidden };
            let c_out = if l == n_layers - 1 {
                arch.out
            } else {
                arch.hidden
            };
            let fan_in = (c_in * arch.kernel) as f32;
            let scale = (2.0 / fan_in).sqrt();
            weights.push(Tensor::randn([c_out, c_in * arch.kernel], rng).scale(scale));
            biases.push(Tensor::zeros([c_out]));
        }
        CnnEncoder {
            d,
            arch,
            weights,
            biases,
        }
    }

    /// Embedding dimensionality.
    pub fn out_dim(&self) -> usize {
        self.arch.out
    }

    /// Parameter tensors in a stable order `(w0, b0, w1, b1, ...)`.
    pub fn params(&self) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(self.weights.len() * 2);
        for (w, b) in self.weights.iter().zip(&self.biases) {
            out.push(w.clone());
            out.push(b.clone());
        }
        out
    }

    /// Writes updated parameter tensors back (same order as [`Self::params`]).
    pub fn set_params(&mut self, params: &[Tensor]) {
        assert_eq!(
            params.len(),
            self.weights.len() * 2,
            "parameter count mismatch"
        );
        for (l, pair) in params.chunks(2).enumerate() {
            assert!(
                pair[0].shape().same_as(self.weights[l].shape()),
                "weight shape changed"
            );
            assert!(
                pair[1].shape().same_as(self.biases[l].shape()),
                "bias shape changed"
            );
            self.weights[l] = pair[0].clone();
            self.biases[l] = pair[1].clone();
        }
    }

    /// Builds the embedding `(1, out)` of one `(D, T)` series using the
    /// bound parameter nodes (from a `ParamStore` bind or constant leaves).
    pub fn forward(&self, g: &mut Graph, series: &Tensor, bound: &[VarId]) -> VarId {
        assert_eq!(
            series.rows(),
            self.d,
            "series/encoder variable count mismatch"
        );
        assert_eq!(
            bound.len(),
            self.weights.len() * 2,
            "bound parameter count mismatch"
        );
        let mut h = g.leaf(series.clone()); // (C, T)
        for (l, &dilation) in self.arch.dilations.iter().enumerate() {
            let k = self.arch.kernel;
            let pad = (k - 1) * dilation;
            let padded = g.pad_cols(h, pad, 0); // causal: history only
            let windows = g.unfold(padded, k, 1, dilation); // (T, C_in·k)
            let w = bound[2 * l];
            let b = bound[2 * l + 1];
            let lin = g.matmul_transb(windows, w); // (T, C_out)
            let biased = g.add_row_vec(lin, b);
            let act = g.relu(biased);
            h = g.transpose(act); // (C_out, T)
        }
        let pooled = g.max_axis(h, Axis::Cols); // (C_out)
        g.reshape(pooled, [1, self.arch.out])
    }

    /// Embeds a batch of raw series into an `(N, out)` tensor with the
    /// current (frozen) parameters.
    pub fn encode(&self, batch: &[Tensor]) -> Tensor {
        assert!(!batch.is_empty(), "empty batch");
        let mut g = Graph::new();
        let bound: Vec<VarId> = self.params().into_iter().map(|p| g.leaf(p)).collect();
        let mut out = Tensor::zeros([batch.len(), self.arch.out]);
        for (i, s) in batch.iter().enumerate() {
            let e = self.forward(&mut g, s, &bound);
            out.row_mut(i).copy_from_slice(g.value(e).as_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;

    fn encoder() -> CnnEncoder {
        CnnEncoder::new(
            2,
            CnnArch {
                hidden: 4,
                out: 6,
                kernel: 3,
                dilations: vec![1, 2],
            },
            &mut seeded(1),
        )
    }

    #[test]
    fn output_shape_is_length_agnostic() {
        let enc = encoder();
        let mut rng = seeded(2);
        let short = Tensor::randn([2, 10], &mut rng);
        let long = Tensor::randn([2, 50], &mut rng);
        let e = enc.encode(&[short, long]);
        assert_eq!(e.shape().dims(), &[2, 6]);
        assert!(e.all_finite());
    }

    #[test]
    fn params_round_trip() {
        let mut enc = encoder();
        let mut p = enc.params();
        assert_eq!(p.len(), 4);
        p[0] = p[0].scale(0.0);
        enc.set_params(&p);
        assert_eq!(enc.params()[0].norm_sq(), 0.0);
    }

    #[test]
    fn gradients_flow_to_all_layers() {
        let enc = encoder();
        let mut rng = seeded(3);
        let series = Tensor::randn([2, 16], &mut rng);
        let mut g = Graph::new();
        let bound: Vec<VarId> = enc.params().into_iter().map(|p| g.param(p)).collect();
        let e = enc.forward(&mut g, &series, &bound);
        let sq = g.square(e);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for (i, &id) in bound.iter().enumerate() {
            // Biases of dead ReLU channels can have zero grads, but weights
            // should receive signal.
            if i % 2 == 0 {
                let grad = grads
                    .get(id)
                    .unwrap_or_else(|| panic!("no grad for param {i}"));
                assert!(grad.norm_sq() > 0.0, "zero grad for weight {i}");
            }
        }
    }

    #[test]
    fn causality_first_output_ignores_future() {
        // Changing only the last timestep must not change the embedding
        // produced by a max-pool over... it can (max over time includes the
        // last step). Instead check the *per-timestep* property indirectly:
        // two series identical except at t=T−1 produce identical activations
        // at t=0. We approximate by checking the embedding changes only
        // within bounds attributable to the final position.
        let enc = encoder();
        let mut rng = seeded(4);
        let a = Tensor::randn([2, 12], &mut rng);
        let mut b = a.clone();
        let t = b.cols();
        b.set(&[0, t - 1], 99.0);
        // Deterministic forward: embeddings differ (max pool sees t−1)...
        let ea = enc.encode(std::slice::from_ref(&a));
        let eb = enc.encode(&[b]);
        assert!(ea.max_abs_diff(&eb) > 0.0);
        // ...but truncating the final step makes them identical again,
        // which only holds for a causal architecture.
        let a_trunc = tcsl_tensor::window::window_at(&a, 0, t - 1);
        let mut b2 = a.clone();
        b2.set(&[0, t - 1], -55.0);
        let b_trunc = tcsl_tensor::window::window_at(&b2, 0, t - 1);
        let et = enc.encode(&[a_trunc]);
        let ebt = enc.encode(&[b_trunc]);
        assert!(et.max_abs_diff(&ebt) < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let e1 = CnnEncoder::new(1, CnnArch::default(), &mut seeded(7));
        let e2 = CnnEncoder::new(1, CnnArch::default(), &mut seeded(7));
        let mut rng = seeded(8);
        let s = Tensor::randn([1, 20], &mut rng);
        assert_eq!(e1.encode(std::slice::from_ref(&s)), e2.encode(&[s]));
    }
}

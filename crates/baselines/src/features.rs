//! Hand-crafted statistical features — the classical representation
//! baseline (a catch22-flavoured subset computed per variable).

use tcsl_data::{Dataset, TimeSeries};
use tcsl_tensor::stats;
use tcsl_tensor::Tensor;

/// Features computed per variable.
pub const PER_VARIABLE: usize = 12;

/// Names of the per-variable features, in extraction order.
pub fn feature_names(d: usize) -> Vec<String> {
    let base = [
        "mean",
        "std",
        "skew",
        "kurt",
        "min",
        "max",
        "median",
        "iqr",
        "acf1",
        "acf5",
        "crossings",
        "slope",
    ];
    let mut out = Vec::with_capacity(d * PER_VARIABLE);
    for v in 0..d {
        for b in base {
            out.push(format!("v{v}:{b}"));
        }
    }
    out
}

fn extract_variable(xs: &[f32]) -> [f32; PER_VARIABLE] {
    let n = xs.len();
    let mean = stats::mean(xs);
    let std = stats::std_dev(xs);
    let min = xs.iter().copied().fold(f32::INFINITY, f32::min);
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let median = stats::median(xs);
    let iqr = stats::percentile(xs, 0.75) - stats::percentile(xs, 0.25);
    // Least-squares slope against time (normalized to series length).
    let tm = (n as f32 - 1.0) / 2.0;
    let mut cov = 0.0f32;
    let mut var_t = 0.0f32;
    for (t, &x) in xs.iter().enumerate() {
        cov += (t as f32 - tm) * (x - mean);
        var_t += (t as f32 - tm) * (t as f32 - tm);
    }
    let slope = if var_t > 0.0 {
        cov / var_t * n as f32
    } else {
        0.0
    };
    [
        mean,
        std,
        stats::skewness(xs),
        stats::kurtosis(xs),
        min,
        max,
        median,
        iqr,
        stats::autocorr(xs, 1),
        stats::autocorr(xs, 5),
        stats::mean_crossings(xs) as f32 / n.max(1) as f32,
        slope,
    ]
}

/// Extracts the statistical feature vector of one series.
pub fn extract_series(s: &TimeSeries) -> Vec<f32> {
    let mut out = Vec::with_capacity(s.n_vars() * PER_VARIABLE);
    for v in 0..s.n_vars() {
        out.extend_from_slice(&extract_variable(s.variable(v)));
    }
    out
}

/// Extracts an `(N, D·12)` feature matrix for a dataset.
pub fn extract_dataset(ds: &Dataset) -> Tensor {
    assert!(!ds.is_empty(), "empty dataset");
    let width = ds.n_vars() * PER_VARIABLE;
    let mut out = Tensor::zeros([ds.len(), width]);
    for i in 0..ds.len() {
        out.row_mut(i)
            .copy_from_slice(&extract_series(ds.series(i)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_names() {
        let s = TimeSeries::multivariate(vec![vec![1.0, 2.0, 3.0], vec![0.0, 0.5, 1.0]]);
        let f = extract_series(&s);
        assert_eq!(f.len(), 2 * PER_VARIABLE);
        assert_eq!(feature_names(2).len(), f.len());
    }

    #[test]
    fn known_values_for_simple_series() {
        let s = TimeSeries::univariate(vec![1.0, 2.0, 3.0, 4.0]);
        let f = extract_series(&s);
        assert!((f[0] - 2.5).abs() < 1e-6); // mean
        assert_eq!(f[4], 1.0); // min
        assert_eq!(f[5], 4.0); // max
        assert!(f[11] > 0.0); // positive slope
    }

    #[test]
    fn trend_direction_is_captured() {
        let up = extract_series(&TimeSeries::univariate((0..32).map(|i| i as f32).collect()));
        let down = extract_series(&TimeSeries::univariate(
            (0..32).map(|i| -(i as f32)).collect(),
        ));
        assert!(up[11] > 0.0 && down[11] < 0.0);
    }

    #[test]
    fn periodicity_shows_in_autocorrelation() {
        let periodic = TimeSeries::univariate(
            (0..64)
                .map(|i| (i as f32 * std::f32::consts::PI / 8.0).sin())
                .collect(),
        );
        let f = extract_series(&periodic);
        assert!(
            f[8] > 0.5,
            "acf1 should be high for smooth signals: {}",
            f[8]
        );
    }

    #[test]
    fn dataset_matrix_rows_match_series() {
        let ds = Dataset::unlabeled(
            "x",
            vec![
                TimeSeries::univariate(vec![1.0, 2.0, 3.0, 2.0]),
                TimeSeries::univariate(vec![5.0, 5.0, 5.0, 5.0]),
            ],
        );
        let m = extract_dataset(&ds);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &extract_series(ds.series(0))[..]);
        assert!(m.all_finite());
    }
}

//! Supervised CNN classifier — the "traditional supervised method" the
//! semi-supervised experiment (E3) pits against fine-tuned CSL. Same
//! encoder backbone, trained from scratch with cross-entropy on whatever
//! labeled data is available.

use crate::encoder::{CnnArch, CnnEncoder};
use std::time::{Duration, Instant};
use tcsl_autodiff::{Adam, Graph, Optimizer, ParamStore};
use tcsl_data::Dataset;
use tcsl_tensor::rng::{permutation, seeded};
use tcsl_tensor::Tensor;

/// Supervised CNN classifier configuration.
#[derive(Clone, Debug)]
pub struct FcnConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Series per minibatch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FcnConfig {
    fn default() -> Self {
        FcnConfig {
            epochs: 30,
            batch_size: 16,
            learning_rate: 0.005,
            seed: 0,
        }
    }
}

/// The supervised CNN: encoder + linear classification head.
pub struct SupervisedCnn {
    encoder: CnnEncoder,
    head_w: Tensor,
    head_b: Tensor,
    cfg: FcnConfig,
    fitted: bool,
}

impl SupervisedCnn {
    /// Fresh model for `d`-variate series and `n_classes` classes.
    pub fn new(d: usize, n_classes: usize, arch: CnnArch, cfg: FcnConfig) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        let mut rng = seeded(cfg.seed ^ 0xFC9);
        let out = arch.out;
        SupervisedCnn {
            encoder: CnnEncoder::new(d, arch, &mut rng),
            head_w: Tensor::randn([n_classes, out], &mut rng).scale(0.05),
            head_b: Tensor::zeros([n_classes]),
            cfg,
            fitted: false,
        }
    }

    /// Trains end to end on a labeled dataset; returns wall time and the
    /// loss curve.
    pub fn fit(&mut self, train: &Dataset) -> (Duration, Vec<f32>) {
        assert!(train.labels().is_some(), "supervised training needs labels");
        assert!(train.len() >= 2, "need at least two series");
        let mut rng = seeded(self.cfg.seed);
        let mut ps = ParamStore::new();
        let enc_params = self.encoder.params();
        let n_enc = enc_params.len();
        for (i, p) in enc_params.into_iter().enumerate() {
            ps.register(format!("enc{i}"), p);
        }
        let wi = ps.register("head_w", self.head_w.clone());
        let bi = ps.register("head_b", self.head_b.clone());
        let mut opt = Adam::new(self.cfg.learning_rate);
        let start = Instant::now();
        let mut curve = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let order = permutation(&mut rng, train.len());
            let mut sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                let mut g = Graph::new();
                let bound = ps.bind(&mut g);
                let embeddings: Vec<_> = chunk
                    .iter()
                    .map(|&i| {
                        self.encoder
                            .forward(&mut g, train.series(i).values(), &bound[..n_enc])
                    })
                    .collect();
                let z = g.concat_rows(&embeddings);
                let raw = g.matmul_transb(z, bound[wi]);
                let logits = g.add_row_vec(raw, bound[bi]);
                let targets: Vec<usize> = chunk.iter().map(|&i| train.label(i)).collect();
                let loss = g.cross_entropy_logits(logits, &targets);
                sum += g.value(loss).item() as f64;
                batches += 1;
                let mut grads = g.backward(loss);
                let gv = ps.collect_grads(&mut grads, &bound);
                opt.step(&mut ps, &gv);
            }
            curve.push((sum / batches.max(1) as f64) as f32);
        }
        let enc_new: Vec<Tensor> = (0..n_enc).map(|i| ps.get(i).clone()).collect();
        self.encoder.set_params(&enc_new);
        self.head_w = ps.get(wi).clone();
        self.head_b = ps.get(bi).clone();
        self.fitted = true;
        (start.elapsed(), curve)
    }

    /// Predicts one class per series.
    pub fn predict(&self, ds: &Dataset) -> Vec<usize> {
        assert!(self.fitted, "predict before fit");
        let batch: Vec<Tensor> = ds.all_series().iter().map(|s| s.values().clone()).collect();
        let z = self.encoder.encode(&batch);
        let logits =
            tcsl_tensor::matmul::matmul_transb(&z, &self.head_w).add_row_vector(&self.head_b);
        (0..logits.rows())
            .map(|i| {
                let row = logits.row(i);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;

    #[test]
    fn learns_motif_classification() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 51);
        let (train, test) = (train.znormed(), test.znormed());
        let arch = CnnArch {
            hidden: 8,
            out: 12,
            kernel: 3,
            dilations: vec![1, 2, 4],
        };
        let cfg = FcnConfig {
            epochs: 20,
            batch_size: 10,
            seed: 3,
            ..Default::default()
        };
        let mut fcn = SupervisedCnn::new(1, 2, arch, cfg);
        let (time, curve) = fcn.fit(&train);
        assert!(time.as_nanos() > 0);
        assert!(curve.last().unwrap() < &curve[0], "loss flat: {curve:?}");
        let pred = fcn.predict(&test);
        let acc = pred
            .iter()
            .enumerate()
            .filter(|(i, &p)| p == test.label(*i))
            .count() as f32
            / test.len() as f32;
        assert!(acc > 0.65, "supervised CNN accuracy only {acc}");
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (_, test) = archive::generate_split(&entry, 52);
        let fcn = SupervisedCnn::new(1, 2, CnnArch::default(), FcnConfig::default());
        fcn.predict(&test);
    }

    #[test]
    #[should_panic(expected = "labels")]
    fn unlabeled_training_rejected() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, _) = archive::generate_split(&entry, 53);
        let mut fcn = SupervisedCnn::new(1, 2, CnnArch::default(), FcnConfig::default());
        fcn.fit(&train.without_labels());
    }
}

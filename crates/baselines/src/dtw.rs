//! Dynamic time warping and the classical DTW-1NN classifier — the
//! strongest non-learned baseline on UEA-style archives, and the method
//! whose quadratic cost the long-series experiment (E1d) exposes.

use tcsl_data::normalize::{normalize_dataset, Normalization};
use tcsl_data::{Dataset, TimeSeries};
use tcsl_tensor::parallel::parallel_map;

/// Multivariate DTW distance (squared-Euclidean local cost summed over
/// variables) with an optional Sakoe–Chiba band half-width.
pub fn dtw_distance(a: &TimeSeries, b: &TimeSeries, band: Option<usize>) -> f32 {
    assert_eq!(a.n_vars(), b.n_vars(), "variable count mismatch");
    let (n, m) = (a.len(), b.len());
    let band = band.unwrap_or(n.max(m));
    // Band must at least cover the length difference or no path exists.
    let band = band.max(n.abs_diff(m));
    let d = a.n_vars();
    let local = |i: usize, j: usize| -> f32 {
        let mut c = 0.0f32;
        for v in 0..d {
            let diff = a.variable(v)[i] - b.variable(v)[j];
            c += diff * diff;
        }
        c
    };
    // Two-row DP over the banded matrix.
    let inf = f32::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(inf);
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
            curr[j] = local(i - 1, j - 1) + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

/// One-nearest-neighbour classifier under DTW on (z-normalized) raw series.
pub struct Dtw1Nn {
    /// Optional Sakoe–Chiba band half-width (None = unconstrained).
    pub band: Option<usize>,
    train: Option<Dataset>,
}

impl Dtw1Nn {
    /// Unconstrained DTW-1NN.
    pub fn new() -> Self {
        Dtw1Nn {
            band: None,
            train: None,
        }
    }

    /// DTW-1NN with a Sakoe–Chiba band (speeds up long series).
    pub fn with_band(band: usize) -> Self {
        Dtw1Nn {
            band: Some(band),
            train: None,
        }
    }

    /// Stores the (normalized) training set.
    pub fn fit(&mut self, train: &Dataset) {
        assert!(train.labels().is_some(), "DTW-1NN needs labels");
        assert!(!train.is_empty(), "empty training set");
        self.train = Some(normalize_dataset(train, Normalization::ZScore));
    }

    /// Predicts by nearest training series, parallel over test series on
    /// the persistent pool (one parked-worker wake per call, no spawns).
    pub fn predict(&self, test: &Dataset) -> Vec<usize> {
        let train = self.train.as_ref().expect("predict before fit");
        let test = normalize_dataset(test, Normalization::ZScore);
        let band = self.band;
        parallel_map(test.len(), |i| {
            let q = test.series(i);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for j in 0..train.len() {
                let d = dtw_distance(q, train.series(j), band);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            train.label(best)
        })
    }
}

impl Default for Dtw1Nn {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;

    #[test]
    fn dtw_zero_for_identical_series() {
        let s = TimeSeries::univariate(vec![1.0, 2.0, 3.0, 2.0]);
        assert_eq!(dtw_distance(&s, &s, None), 0.0);
    }

    #[test]
    fn dtw_absorbs_time_shift_better_than_euclidean() {
        let a = TimeSeries::univariate(vec![0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0]);
        let b = TimeSeries::univariate(vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let dtw = dtw_distance(&a, &b, None);
        let euc: f32 = a
            .variable(0)
            .iter()
            .zip(b.variable(0))
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        assert!(dtw < euc * 0.5, "dtw {dtw} vs euclidean {euc}");
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a = TimeSeries::univariate(vec![1.0, 2.0, 3.0]);
        let b = TimeSeries::univariate(vec![1.0, 1.5, 2.0, 2.5, 3.0]);
        let d = dtw_distance(&a, &b, None);
        assert!(d.is_finite());
        assert!(d < 2.0);
    }

    #[test]
    fn band_is_widened_to_length_difference() {
        let a = TimeSeries::univariate(vec![1.0; 4]);
        let b = TimeSeries::univariate(vec![1.0; 10]);
        // Band 1 < |4−10|; must still produce a finite distance.
        assert!(dtw_distance(&a, &b, Some(1)).is_finite());
    }

    #[test]
    fn dtw_symmetry() {
        let a = TimeSeries::univariate(vec![0.5, 1.0, -0.5, 0.0, 2.0]);
        let b = TimeSeries::univariate(vec![1.0, 0.0, 0.5, -1.0]);
        let ab = dtw_distance(&a, &b, None);
        let ba = dtw_distance(&b, &a, None);
        assert!((ab - ba).abs() < 1e-5);
    }

    #[test]
    fn classifies_motif_data_reasonably() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 41);
        let mut nn = Dtw1Nn::new();
        nn.fit(&train);
        let pred = nn.predict(&test);
        let acc = pred
            .iter()
            .enumerate()
            .filter(|(i, &p)| p == test.label(*i))
            .count() as f32
            / test.len() as f32;
        // Motif position is random, so raw-distance methods are mediocre —
        // but still above chance on an easy 2-class problem.
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (_, test) = archive::generate_split(&entry, 42);
        Dtw1Nn::new().predict(&test);
    }
}

//! Unsupervised representation-learning baselines over the shared CNN
//! encoder: one struct, three published objectives.

use crate::encoder::{CnnArch, CnnEncoder};
use rand::Rng;
use std::time::{Duration, Instant};
use tcsl_autodiff::losses::{neighbourhood_logistic, nt_xent, triplet_logistic};
use tcsl_autodiff::{Adam, Graph, Optimizer, ParamStore, VarId};
use tcsl_data::augment::random_crop;
use tcsl_data::Dataset;
use tcsl_tensor::rng::{permutation, seeded};
use tcsl_tensor::Tensor;

/// Which published objective to train the encoder with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// SimCLR/TS2Vec-style instance contrasting on crop pairs.
    InstanceContrast,
    /// T-Loss-style triplet logistic loss (Franceschi et al.): positives
    /// are sub-crops of the anchor, negatives are crops of other series.
    Triplet,
    /// TNC-style temporal neighbourhood coding: windows close in time are
    /// positives, distant windows negatives — the assumption periodic data
    /// violates.
    TemporalNeighbourhood,
}

impl Objective {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Objective::InstanceContrast => "CNN-SimCLR",
            Objective::Triplet => "CNN-TLoss",
            Objective::TemporalNeighbourhood => "CNN-TNC",
        }
    }
}

/// Training hyperparameters of the URL baselines.
#[derive(Clone, Debug)]
pub struct UrlConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Series per minibatch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// NT-Xent temperature (instance contrasting only).
    pub temperature: f32,
    /// Negatives per anchor (triplet only).
    pub k_negatives: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UrlConfig {
    fn default() -> Self {
        UrlConfig {
            epochs: 20,
            batch_size: 16,
            learning_rate: 0.005,
            temperature: 0.2,
            k_negatives: 4,
            seed: 0,
        }
    }
}

/// A CNN encoder plus one of the three objectives.
pub struct CnnUrl {
    /// The objective this baseline trains with.
    pub objective: Objective,
    /// Hyperparameters.
    pub cfg: UrlConfig,
    encoder: CnnEncoder,
}

impl CnnUrl {
    /// Fresh baseline for `d`-variate series.
    pub fn new(d: usize, objective: Objective, arch: CnnArch, cfg: UrlConfig) -> Self {
        let mut rng = seeded(cfg.seed ^ 0xC0FFEE);
        CnnUrl {
            objective,
            encoder: CnnEncoder::new(d, arch, &mut rng),
            cfg,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.objective.name()
    }

    /// The underlying encoder (e.g. for the supervised FCN to reuse).
    pub fn encoder(&self) -> &CnnEncoder {
        &self.encoder
    }

    /// Unsupervised pre-training; returns wall-clock time (the training-
    /// efficiency axis of Figure 1) and the per-epoch loss curve.
    pub fn pretrain(&mut self, ds: &Dataset) -> (Duration, Vec<f32>) {
        assert!(ds.len() >= 2, "need at least two series");
        assert_eq!(
            ds.n_vars(),
            self.encoder.d,
            "dataset/encoder variable count mismatch"
        );
        let mut rng = seeded(self.cfg.seed);
        let mut ps = ParamStore::new();
        for (i, p) in self.encoder.params().into_iter().enumerate() {
            ps.register(format!("p{i}"), p);
        }
        let mut opt = Adam::new(self.cfg.learning_rate);
        let start = Instant::now();
        let mut curve = Vec::with_capacity(self.cfg.epochs);
        for _epoch in 0..self.cfg.epochs {
            let order = permutation(&mut rng, ds.len());
            let mut sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                if chunk.len() < 2 {
                    continue;
                }
                let mut g = Graph::new();
                let bound = ps.bind(&mut g);
                let loss = self.batch_loss(&mut g, &bound, ds, chunk, &mut rng);
                sum += g.value(loss).item() as f64;
                batches += 1;
                let mut grads = g.backward(loss);
                let gv = ps.collect_grads(&mut grads, &bound);
                opt.step(&mut ps, &gv);
            }
            curve.push((sum / batches.max(1) as f64) as f32);
        }
        let params: Vec<Tensor> = (0..ps.len()).map(|i| ps.get(i).clone()).collect();
        self.encoder.set_params(&params);
        (start.elapsed(), curve)
    }

    fn batch_loss(
        &self,
        g: &mut Graph,
        bound: &[VarId],
        ds: &Dataset,
        chunk: &[usize],
        rng: &mut impl Rng,
    ) -> VarId {
        match self.objective {
            Objective::InstanceContrast => {
                let mut za = Vec::with_capacity(chunk.len());
                let mut zb = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let s = ds.series(i);
                    let len = (s.len() / 2).max(8).min(s.len());
                    za.push(
                        self.encoder
                            .forward(g, random_crop(s, len, rng).values(), bound),
                    );
                    zb.push(
                        self.encoder
                            .forward(g, random_crop(s, len, rng).values(), bound),
                    );
                }
                let za = g.concat_rows(&za);
                let zb = g.concat_rows(&zb);
                nt_xent(g, za, zb, self.cfg.temperature)
            }
            Objective::Triplet => {
                let k = self.cfg.k_negatives;
                let mut anchors = Vec::with_capacity(chunk.len());
                let mut positives = Vec::with_capacity(chunk.len());
                let mut negatives = Vec::with_capacity(chunk.len() * k);
                for &i in chunk {
                    let s = ds.series(i);
                    let a_len = (s.len() * 3 / 4).max(8).min(s.len());
                    let anchor = random_crop(s, a_len, rng);
                    let p_len = (a_len / 2).max(4);
                    let positive = random_crop(&anchor, p_len, rng);
                    anchors.push(self.encoder.forward(g, anchor.values(), bound));
                    positives.push(self.encoder.forward(g, positive.values(), bound));
                    for _ in 0..k {
                        // Negative from a different series when possible.
                        let j = loop {
                            let cand = chunk[rng.gen_range(0..chunk.len())];
                            if cand != i || chunk.len() == 1 {
                                break cand;
                            }
                        };
                        let o = ds.series(j);
                        let n_len = p_len.min(o.len());
                        negatives.push(self.encoder.forward(
                            g,
                            random_crop(o, n_len, rng).values(),
                            bound,
                        ));
                    }
                }
                let a = g.concat_rows(&anchors);
                let p = g.concat_rows(&positives);
                let n = g.concat_rows(&negatives);
                triplet_logistic(g, a, p, n, k)
            }
            Objective::TemporalNeighbourhood => {
                let mut anchors = Vec::with_capacity(chunk.len());
                let mut neighbours = Vec::with_capacity(chunk.len());
                let mut distants = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let s = ds.series(i);
                    let len = (s.len() / 4).max(4);
                    let max_start = s.len() - len;
                    let a_start = rng.gen_range(0..=max_start);
                    // Neighbour: within half a window of the anchor.
                    let lo = a_start.saturating_sub(len / 2);
                    let hi = (a_start + len / 2).min(max_start);
                    let n_start = rng.gen_range(lo..=hi);
                    // Distant: as far from the anchor as the series allows —
                    // on periodic data this window *still resembles* the
                    // anchor, which is exactly the failure mode reproduced.
                    let d_start = if a_start < max_start / 2 {
                        max_start
                    } else {
                        0
                    };
                    anchors.push(
                        self.encoder
                            .forward(g, s.crop(a_start, len).values(), bound),
                    );
                    neighbours.push(
                        self.encoder
                            .forward(g, s.crop(n_start, len).values(), bound),
                    );
                    distants.push(
                        self.encoder
                            .forward(g, s.crop(d_start, len).values(), bound),
                    );
                }
                let a = g.concat_rows(&anchors);
                let n = g.concat_rows(&neighbours);
                let d = g.concat_rows(&distants);
                neighbourhood_logistic(g, a, n, d)
            }
        }
    }

    /// Embeds every series of a dataset (`(N, out)`).
    pub fn encode(&self, ds: &Dataset) -> Tensor {
        let batch: Vec<Tensor> = ds.all_series().iter().map(|s| s.values().clone()).collect();
        self.encoder.encode(&batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;

    fn quick(objective: Objective) -> (CnnUrl, Dataset) {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, _) = archive::generate_split(&entry, 31);
        let train = train.znormed();
        let arch = CnnArch {
            hidden: 6,
            out: 8,
            kernel: 3,
            dilations: vec![1, 2],
        };
        let cfg = UrlConfig {
            epochs: 3,
            batch_size: 8,
            seed: 9,
            ..Default::default()
        };
        (CnnUrl::new(1, objective, arch, cfg), train)
    }

    #[test]
    fn instance_contrast_trains_and_encodes() {
        let (mut url, train) = quick(Objective::InstanceContrast);
        let (time, curve) = url.pretrain(&train);
        assert_eq!(curve.len(), 3);
        assert!(time.as_nanos() > 0);
        assert!(
            curve.last().unwrap() < &curve[0],
            "loss did not decrease: {curve:?}"
        );
        let z = url.encode(&train);
        assert_eq!(z.shape().dims(), &[train.len(), 8]);
        assert!(z.all_finite());
    }

    #[test]
    fn triplet_trains() {
        let (mut url, train) = quick(Objective::Triplet);
        let (_, curve) = url.pretrain(&train);
        assert!(curve.iter().all(|l| l.is_finite()));
        assert!(curve.last().unwrap() <= &curve[0]);
    }

    #[test]
    fn tnc_trains() {
        let (mut url, train) = quick(Objective::TemporalNeighbourhood);
        let (_, curve) = url.pretrain(&train);
        assert!(curve.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Objective::InstanceContrast.name(), "CNN-SimCLR");
        assert_eq!(Objective::Triplet.name(), "CNN-TLoss");
        assert_eq!(Objective::TemporalNeighbourhood.name(), "CNN-TNC");
    }
}

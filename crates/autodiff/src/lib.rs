#![warn(missing_docs)]
// Index-based loops in the numeric kernels walk several parallel
// buffers at once; iterator rewrites obscure that correspondence.
#![allow(clippy::needless_range_loop)]

//! # tcsl-autodiff
//!
//! Tape-based reverse-mode automatic differentiation over [`tcsl_tensor`].
//!
//! This crate replaces the PyTorch autograd engine the TimeCSL paper trains
//! with. It is deliberately scoped to exactly the operator set the CSL
//! training objective and the competitor baselines need:
//!
//! * elementwise algebra (+, −, ×, ÷, scalar ops, `sqrt`, `exp`, `ln`,
//!   squares, activations),
//! * matrix products (`A·B`, `A·Bᵀ`) and row/column-vector broadcasting,
//! * reductions (`sum`, `mean`) and **arg-routed min/max pooling** — the
//!   subgradient through the "best-matching window" of the shapelet
//!   transform,
//! * sliding-window `unfold` (with dilation, for the CNN baselines) and
//!   zero-padding,
//! * shape plumbing (reshape, concat, column slices),
//! * row-wise L2 normalization, diagonal masking and softmax cross-entropy —
//!   the building blocks of the NT-Xent contrastive loss,
//! * an open extension point ([`CustomOp`] / [`Graph::custom`]) for fused
//!   forward kernels with hand-written analytic backwards — how the
//!   streaming shapelet-distance kernel joins the tape without the tape
//!   knowing about shapelets.
//!
//! Every operator's backward pass is validated against central finite
//! differences by the [`gradcheck`] harness, which the test-suite runs over
//! randomized inputs.
//!
//! ## Usage
//!
//! ```
//! use tcsl_autodiff::Graph;
//! use tcsl_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let w = g.param(Tensor::from_vec(vec![1.0, 2.0], [1, 2]));
//! let x = g.leaf(Tensor::from_vec(vec![3.0, 4.0], [1, 2]));
//! let prod = g.mul(w, x);
//! let loss = g.sum_all(prod); // loss = 1*3 + 2*4
//! let grads = g.backward(loss);
//! assert_eq!(g.value(loss).item(), 11.0);
//! assert_eq!(grads.get(w).unwrap().as_slice(), &[3.0, 4.0]);
//! ```

pub mod gradcheck;
pub mod graph;
pub mod losses;
pub mod optim;
pub mod params;

pub use graph::{CustomOp, Grads, Graph, VarId};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::ParamStore;

#[cfg(test)]
mod proptests;

//! Property-based gradient checks over randomized compositions.

use crate::gradcheck::gradcheck;
use crate::graph::Graph;
use proptest::prelude::*;
use tcsl_tensor::reduce::Axis;
use tcsl_tensor::Tensor;

fn matrix(r: usize, c: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, r * c).prop_map(move |v| Tensor::from_vec(v, [r, c]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_affine_tanh_mse(x in matrix(3, 4), w in matrix(2, 4)) {
        // tanh rather than relu: finite differences are unreliable at the
        // relu kink, which random preactivations inevitably straddle. The
        // relu rule is covered by a deterministic gradcheck with
        // well-separated preactivations.
        let report = gradcheck(&[x, w], 1e-2, |g, xs| {
            let x = g.param(xs[0].clone());
            let w = g.param(xs[1].clone());
            let h = g.matmul_transb(x, w);
            let r = g.tanh(h);
            let target = g.leaf(Tensor::ones([3, 2]));
            let loss = g.mse(r, target);
            (vec![x, w], loss)
        });
        prop_assert!(report.passes(5e-2), "abs={} rel={}", report.max_abs_err, report.max_rel_err);
    }

    #[test]
    fn random_normalize_gram_ce(x in matrix(4, 3)) {
        let report = gradcheck(&[x], 1e-2, |g, xs| {
            let x = g.param(xs[0].clone());
            let n = g.row_normalize(x, 1e-4);
            let s = g.matmul_transb(n, n);
            let m = g.mask_diagonal(s);
            let loss = g.cross_entropy_logits(m, &[1, 0, 3, 2]);
            (vec![x], loss)
        });
        prop_assert!(report.passes(5e-2), "abs={} rel={}", report.max_abs_err, report.max_rel_err);
    }

    #[test]
    fn random_axis_reductions(x in matrix(5, 4)) {
        let report = gradcheck(&[x], 1e-2, |g, xs| {
            let x = g.param(xs[0].clone());
            let s = g.sum_axis(x, Axis::Rows);
            let m = g.mean_axis(x, Axis::Cols);
            let ssq = g.square(s);
            let msq = g.square(m);
            let a = g.sum_all(ssq);
            let b = g.sum_all(msq);
            let loss = g.add(a, b);
            (vec![x], loss)
        });
        prop_assert!(report.passes(5e-2), "abs={} rel={}", report.max_abs_err, report.max_rel_err);
    }

    #[test]
    fn grad_accumulates_over_reuse(x in matrix(3, 3)) {
        // y = x ⊙ x used twice: loss = sum(x⊙x) + sum(x⊙x)
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let sq = g.mul(xv, xv);
        let s1 = g.sum_all(sq);
        let s2 = g.sum_all(sq);
        let loss = g.add(s1, s2);
        let grads = g.backward(loss);
        let got = grads.get(xv).unwrap();
        let want = x.scale(4.0);
        prop_assert!(got.max_abs_diff(&want) < 1e-4);
    }
}

//! The computation graph: eager forward evaluation plus a recorded tape that
//! [`Graph::backward`] replays in reverse.
//!
//! Each builder method appends one node, computes its value immediately, and
//! returns a [`VarId`] handle. `backward` walks the tape from the loss node
//! toward the leaves, accumulating adjoints. The forward/backward rule for
//! every operator lives side by side in this file so each pair can be audited
//! together (and is cross-checked by `gradcheck`).

use std::sync::Arc;

use tcsl_tensor::matmul::{matmul, matmul_transa, matmul_transb};
use tcsl_tensor::reduce::{self, Axis};
use tcsl_tensor::window::{unfold_dilated, unfold_dilated_backward};
use tcsl_tensor::{Shape, Tensor};

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// A user-defined operator: a fused forward pass paired with its analytic
/// backward, registered on the tape via [`Graph::custom`] without growing
/// the closed internal `Op` enum.
///
/// The contract mirrors the built-in rules:
///
/// * `forward` computes the node value from the input values. It runs
///   eagerly at insertion time, exactly once per node.
/// * `backward` receives the adjoint of the output (`grad_out`), the input
///   values and the forward output, and returns one `Option<Tensor>` per
///   input — `Some(∂loss/∂input_i)` shaped like that input, or `None` for
///   inputs the op is not differentiable in (their gradient contribution is
///   zero). `backward` is invoked during [`Graph::backward`]'s reverse
///   topological walk, so every adjoint it sees is already fully
///   accumulated.
///
/// Implementations must be `Send + Sync`: graphs cross thread boundaries in
/// data-parallel training, and one op instance may be shared (via `Arc`)
/// between the clones a worker makes. State stashed by `forward` for
/// `backward` (e.g. argmin indices) therefore needs interior mutability
/// with a fallback to recomputation — see `ShapeletDistanceOp` in
/// `tcsl-shapelet` for the canonical pattern.
pub trait CustomOp: Send + Sync + std::fmt::Debug {
    /// Computes the output value from the input values.
    fn forward(&self, inputs: &[&Tensor]) -> Tensor;

    /// Computes per-input gradients given the output adjoint, the input
    /// values and the forward output. Must return exactly one entry per
    /// input.
    fn backward(
        &self,
        grad_out: &Tensor,
        inputs: &[&Tensor],
        output: &Tensor,
    ) -> Vec<Option<Tensor>>;
}

/// Recorded operator of a node, with whatever forward byproducts the
/// backward pass needs (arg indices, saved norms, ...).
#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    Div(VarId, VarId),
    Neg(VarId),
    AddScalar(VarId),
    MulScalar(VarId, f32),
    SqrtEps(VarId),
    Exp(VarId),
    LnEps(VarId, f32),
    Square(VarId),
    Relu(VarId),
    Tanh(VarId),
    Sigmoid(VarId),
    MatMul(VarId, VarId),
    MatMulTransB(VarId, VarId),
    Transpose(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    SumAxis(VarId, Axis),
    MeanAxis(VarId, Axis),
    MinAxis(VarId, Axis, Vec<usize>),
    MaxAxis(VarId, Axis, Vec<usize>),
    AddRowVec(VarId, VarId),
    AddColVec(VarId, VarId),
    Reshape(VarId, Shape),
    ConcatRows(Vec<VarId>),
    ConcatCols(Vec<VarId>),
    SliceCols(VarId, usize, usize),
    Unfold {
        input: VarId,
        len: usize,
        stride: usize,
        dilation: usize,
    },
    PadCols(VarId, usize, usize),
    RowNormalize(VarId, Vec<f32>),
    MaskDiagonal(VarId),
    LogSumExpRows(VarId),
    CrossEntropyLogits {
        logits: VarId,
        targets: Vec<usize>,
    },
    /// A user-defined fused operator ([`CustomOp`]). Held behind `Arc` so
    /// the tape stays `Clone` and `Send` — the op itself carries no
    /// per-node tape state.
    Custom {
        op: Arc<dyn CustomOp>,
        inputs: Vec<VarId>,
    },
}

struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// Gradients produced by [`Graph::backward`], indexed by [`VarId`].
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// Gradient of the loss with respect to `id`, if that node required one.
    pub fn get(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Takes ownership of the gradient for `id`.
    pub fn take(&mut self, id: VarId) -> Option<Tensor> {
        self.grads.get_mut(id.0).and_then(Option::take)
    }
}

/// A single-use computation tape. Build one per training step.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> VarId {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        VarId(self.nodes.len() - 1)
    }

    fn rg(&self, id: VarId) -> bool {
        self.nodes[id.0].requires_grad
    }

    // ------------------------------------------------------------- leaves

    /// Inserts a constant input (no gradient tracked).
    pub fn leaf(&mut self, value: Tensor) -> VarId {
        self.push(value, Op::Leaf, false)
    }

    /// Inserts a trainable input (gradient tracked).
    pub fn param(&mut self, value: Tensor) -> VarId {
        self.push(value, Op::Leaf, true)
    }

    // -------------------------------------------------------- elementwise

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        let r = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), r)
    }

    /// Elementwise `a − b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).sub(self.value(b));
        let r = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), r)
    }

    /// Elementwise `a ⊙ b`.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).mul(self.value(b));
        let r = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), r)
    }

    /// Elementwise `a / b`.
    pub fn div(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).div(self.value(b));
        let r = self.rg(a) || self.rg(b);
        self.push(v, Op::Div(a, b), r)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: VarId) -> VarId {
        let v = self.value(a).neg();
        let r = self.rg(a);
        self.push(v, Op::Neg(a), r)
    }

    /// Adds a scalar constant to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).add_scalar(s);
        let r = self.rg(a);
        self.push(v, Op::AddScalar(a), r)
    }

    /// Multiplies every element by a scalar constant.
    pub fn mul_scalar(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).scale(s);
        let r = self.rg(a);
        self.push(v, Op::MulScalar(a, s), r)
    }

    /// `sqrt(a + eps)` — the epsilon keeps the gradient finite at zero,
    /// which matters because shapelet distances can hit an exact match.
    pub fn sqrt_eps(&mut self, a: VarId, eps: f32) -> VarId {
        let v = self.value(a).add_scalar(eps).sqrt();
        let r = self.rg(a);
        self.push(v, Op::SqrtEps(a), r)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let v = self.value(a).exp();
        let r = self.rg(a);
        self.push(v, Op::Exp(a), r)
    }

    /// `ln(a + eps)`.
    pub fn ln_eps(&mut self, a: VarId, eps: f32) -> VarId {
        let v = self.value(a).add_scalar(eps).ln();
        let r = self.rg(a);
        self.push(v, Op::LnEps(a, eps), r)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        let v = self.value(a).square();
        let r = self.rg(a);
        self.push(v, Op::Square(a), r)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        let r = self.rg(a);
        self.push(v, Op::Relu(a), r)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::tanh);
        let r = self.rg(a);
        self.push(v, Op::Tanh(a), r)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let r = self.rg(a);
        self.push(v, Op::Sigmoid(a), r)
    }

    // ------------------------------------------------------------- linear

    /// Matrix product `a (m×k) · b (k×n)`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = matmul(self.value(a), self.value(b));
        let r = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMul(a, b), r)
    }

    /// Matrix product against a transposed right factor: `a (m×k) · bᵀ`
    /// with `b (n×k)`.
    pub fn matmul_transb(&mut self, a: VarId, b: VarId) -> VarId {
        let v = matmul_transb(self.value(a), self.value(b));
        let r = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMulTransB(a, b), r)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let v = self.value(a).transpose2();
        let r = self.rg(a);
        self.push(v, Op::Transpose(a), r)
    }

    /// Adds a length-`cols` vector to every row of a matrix.
    pub fn add_row_vec(&mut self, a: VarId, v: VarId) -> VarId {
        let out = self.value(a).add_row_vector(self.value(v));
        let r = self.rg(a) || self.rg(v);
        self.push(out, Op::AddRowVec(a, v), r)
    }

    /// Adds a length-`rows` vector to every column of a matrix.
    pub fn add_col_vec(&mut self, a: VarId, v: VarId) -> VarId {
        let out = self.value(a).add_col_vector(self.value(v));
        let r = self.rg(a) || self.rg(v);
        self.push(out, Op::AddColVec(a, v), r)
    }

    // --------------------------------------------------------- reductions

    /// Sum of all elements → scalar.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(reduce::sum(self.value(a)));
        let r = self.rg(a);
        self.push(v, Op::SumAll(a), r)
    }

    /// Mean of all elements → scalar.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(reduce::mean(self.value(a)));
        let r = self.rg(a);
        self.push(v, Op::MeanAll(a), r)
    }

    /// Per-axis sum of a matrix.
    pub fn sum_axis(&mut self, a: VarId, axis: Axis) -> VarId {
        let v = reduce::sum_axis(self.value(a), axis);
        let r = self.rg(a);
        self.push(v, Op::SumAxis(a, axis), r)
    }

    /// Per-axis mean of a matrix.
    pub fn mean_axis(&mut self, a: VarId, axis: Axis) -> VarId {
        let v = reduce::mean_axis(self.value(a), axis);
        let r = self.rg(a);
        self.push(v, Op::MeanAxis(a, axis), r)
    }

    /// Per-axis minimum; the backward pass routes gradient only to the
    /// minimizing element (min-pooling subgradient).
    pub fn min_axis(&mut self, a: VarId, axis: Axis) -> VarId {
        let (v, args) = reduce::min_axis(self.value(a), axis);
        let r = self.rg(a);
        self.push(v, Op::MinAxis(a, axis, args), r)
    }

    /// Per-axis maximum with arg-routed backward (max-pooling subgradient).
    pub fn max_axis(&mut self, a: VarId, axis: Axis) -> VarId {
        let (v, args) = reduce::max_axis(self.value(a), axis);
        let r = self.rg(a);
        self.push(v, Op::MaxAxis(a, axis, args), r)
    }

    // -------------------------------------------------------------- shape

    /// Reinterprets the buffer under a new shape.
    pub fn reshape(&mut self, a: VarId, shape: impl Into<Shape>) -> VarId {
        let old = self.value(a).shape().clone();
        let v = self.value(a).clone().reshape(shape);
        let r = self.rg(a);
        self.push(v, Op::Reshape(a, old), r)
    }

    /// Vertically concatenates matrices with equal column counts.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_rows(&tensors);
        let r = parts.iter().any(|&p| self.rg(p));
        self.push(v, Op::ConcatRows(parts.to_vec()), r)
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&tensors);
        let r = parts.iter().any(|&p| self.rg(p));
        self.push(v, Op::ConcatCols(parts.to_vec()), r)
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let src = self.value(a);
        let (rows, cols) = (src.rows(), src.cols());
        assert!(
            start < end && end <= cols,
            "bad column slice {start}..{end} of {cols}"
        );
        let mut out = Tensor::zeros([rows, end - start]);
        for i in 0..rows {
            out.row_mut(i).copy_from_slice(&src.row(i)[start..end]);
        }
        let r = self.rg(a);
        self.push(out, Op::SliceCols(a, start, end), r)
    }

    /// Sliding-window unfold of a `(D, T)` series into `(N_w, D·len)`
    /// windows (see [`tcsl_tensor::window::unfold_dilated`]).
    pub fn unfold(&mut self, a: VarId, len: usize, stride: usize, dilation: usize) -> VarId {
        let v = unfold_dilated(self.value(a), len, stride, dilation);
        let r = self.rg(a);
        self.push(
            v,
            Op::Unfold {
                input: a,
                len,
                stride,
                dilation,
            },
            r,
        )
    }

    /// Zero-pads the columns (time axis) of a matrix: `left` zeros before,
    /// `right` after. Used for causal convolution.
    pub fn pad_cols(&mut self, a: VarId, left: usize, right: usize) -> VarId {
        let src = self.value(a);
        let (rows, cols) = (src.rows(), src.cols());
        let mut out = Tensor::zeros([rows, left + cols + right]);
        for i in 0..rows {
            out.row_mut(i)[left..left + cols].copy_from_slice(src.row(i));
        }
        let r = self.rg(a);
        self.push(out, Op::PadCols(a, left, right), r)
    }

    // ----------------------------------------------------- normalization &
    // ----------------------------------------------------------- losses

    /// L2-normalizes each row: `y_i = x_i / sqrt(‖x_i‖² + eps)`.
    pub fn row_normalize(&mut self, a: VarId, eps: f32) -> VarId {
        let src = self.value(a);
        let (rows, cols) = (src.rows(), src.cols());
        let mut out = Tensor::zeros([rows, cols]);
        let mut norms = Vec::with_capacity(rows);
        for i in 0..rows {
            let row = src.row(i);
            let n = (row.iter().map(|&x| x * x).sum::<f32>() + eps).sqrt();
            norms.push(n);
            for (o, &x) in out.row_mut(i).iter_mut().zip(row.iter()) {
                *o = x / n;
            }
        }
        let r = self.rg(a);
        self.push(out, Op::RowNormalize(a, norms), r)
    }

    /// Replaces the diagonal of a square matrix with a large negative value
    /// so softmax ignores self-similarities (NT-Xent masking). Gradient to
    /// the diagonal is zero.
    pub fn mask_diagonal(&mut self, a: VarId) -> VarId {
        let src = self.value(a);
        assert_eq!(
            src.rows(),
            src.cols(),
            "mask_diagonal requires a square matrix"
        );
        let n = src.rows();
        let mut out = src.clone();
        for i in 0..n {
            out.set(&[i, i], -1e9);
        }
        let r = self.rg(a);
        self.push(out, Op::MaskDiagonal(a), r)
    }

    /// Per-row log-sum-exp of a matrix → vector.
    pub fn logsumexp_rows(&mut self, a: VarId) -> VarId {
        let src = self.value(a);
        let rows = src.rows();
        let mut out = Tensor::zeros([rows]);
        for i in 0..rows {
            out.as_mut_slice()[i] = lse(src.row(i));
        }
        let r = self.rg(a);
        self.push(out, Op::LogSumExpRows(a), r)
    }

    /// Mean softmax cross-entropy of `logits (B×C)` against integer
    /// `targets` → scalar. This is both the classification loss of the
    /// fine-tuning mode and the core of NT-Xent.
    pub fn cross_entropy_logits(&mut self, logits: VarId, targets: &[usize]) -> VarId {
        let src = self.value(logits);
        let (rows, cols) = (src.rows(), src.cols());
        assert_eq!(rows, targets.len(), "one target per logits row required");
        let mut total = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < cols, "target {t} out of range for {cols} classes");
            let row = src.row(i);
            total += (lse(row) - row[t]) as f64;
        }
        let v = Tensor::scalar((total / rows as f64) as f32);
        let r = self.rg(logits);
        self.push(
            v,
            Op::CrossEntropyLogits {
                logits,
                targets: targets.to_vec(),
            },
            r,
        )
    }

    // --------------------------------------------------------- custom ops

    /// Records a [`CustomOp`] node: runs the op's fused forward eagerly
    /// over the current input values and registers its analytic backward
    /// on the tape. Gradient tracking follows the usual rule — the node
    /// requires a gradient iff any input does.
    pub fn custom(&mut self, op: Arc<dyn CustomOp>, inputs: &[VarId]) -> VarId {
        let vals: Vec<&Tensor> = inputs.iter().map(|&i| self.value(i)).collect();
        let v = op.forward(&vals);
        let r = inputs.iter().any(|&i| self.rg(i));
        self.push(
            v,
            Op::Custom {
                op,
                inputs: inputs.to_vec(),
            },
            r,
        )
    }

    // ------------------------------------------------------ composed utils

    /// Mean squared error between two same-shape tensors → scalar.
    pub fn mse(&mut self, a: VarId, b: VarId) -> VarId {
        let d = self.sub(a, b);
        let s = self.square(d);
        self.mean_all(s)
    }

    // ----------------------------------------------------------- backward

    /// Reverse-mode sweep from the scalar node `loss`; returns per-node
    /// gradients for every node on a differentiable path.
    pub fn backward(&self, loss: VarId) -> Grads {
        assert_eq!(
            self.value(loss).numel(),
            1,
            "backward must start from a scalar, got shape {}",
            self.value(loss).shape()
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::full(self.value(loss).shape().clone(), 1.0));

        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            self.accumulate(idx, &g, &mut grads);
            grads[idx] = Some(g);
        }
        Grads { grads }
    }

    fn accumulate(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        // The delta expression is only evaluated when the input tracks
        // gradients — constant leaves (window matrices, targets, masks)
        // skip their whole backward computation, which roughly halves the
        // cost of training the shapelet transform.
        macro_rules! add_to {
            ($grads:expr, $id:expr, $delta:expr) => {{
                let id: VarId = $id;
                if self.rg(id) {
                    let delta: Tensor = $delta;
                    match &mut $grads[id.0] {
                        Some(acc) => acc.add_scaled_inplace(&delta, 1.0),
                        slot @ None => *slot = Some(delta),
                    }
                }
            }};
        }

        match &self.nodes[idx].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                add_to!(grads, *a, g.clone());
                add_to!(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                add_to!(grads, *a, g.clone());
                add_to!(grads, *b, g.neg());
            }
            Op::Mul(a, b) => {
                add_to!(grads, *a, g.mul(self.value(*b)));
                add_to!(grads, *b, g.mul(self.value(*a)));
            }
            Op::Div(a, b) => {
                let vb = self.value(*b);
                add_to!(grads, *a, g.div(vb));
                let va = self.value(*a);
                let gb = g.mul(va).div(&vb.mul(vb)).neg();
                add_to!(grads, *b, gb);
            }
            Op::Neg(a) => add_to!(grads, *a, g.neg()),
            Op::AddScalar(a) => add_to!(grads, *a, g.clone()),
            Op::MulScalar(a, s) => add_to!(grads, *a, g.scale(*s)),
            Op::SqrtEps(a) => {
                // y = sqrt(x+eps) → dy/dx = 1/(2y); y is this node's value.
                let y = &self.nodes[idx].value;
                add_to!(grads, *a, g.zip_map(y, |gv, yv| gv * 0.5 / yv));
            }
            Op::Exp(a) => add_to!(grads, *a, g.mul(&self.nodes[idx].value)),
            Op::LnEps(a, eps) => {
                let va = self.value(*a);
                add_to!(grads, *a, g.zip_map(va, |gv, xv| gv / (xv + eps)));
            }
            Op::Square(a) => {
                let va = self.value(*a);
                add_to!(grads, *a, g.zip_map(va, |gv, xv| 2.0 * gv * xv));
            }
            Op::Relu(a) => {
                let va = self.value(*a);
                add_to!(
                    grads,
                    *a,
                    g.zip_map(va, |gv, xv| if xv > 0.0 { gv } else { 0.0 })
                );
            }
            Op::Tanh(a) => {
                let y = &self.nodes[idx].value;
                add_to!(grads, *a, g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv)));
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[idx].value;
                add_to!(grads, *a, g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv)));
            }
            Op::MatMul(a, b) => {
                add_to!(grads, *a, matmul_transb(g, self.value(*b)));
                add_to!(grads, *b, matmul_transa(self.value(*a), g));
            }
            Op::MatMulTransB(a, b) => {
                // y = a·bᵀ → ∂a = g·b, ∂b = gᵀ·a.
                add_to!(grads, *a, matmul(g, self.value(*b)));
                add_to!(grads, *b, matmul_transa(g, self.value(*a)));
            }
            Op::Transpose(a) => add_to!(grads, *a, g.transpose2()),
            Op::SumAll(a) => {
                let shape = self.value(*a).shape().clone();
                add_to!(grads, *a, Tensor::full(shape, g.item()));
            }
            Op::MeanAll(a) => {
                let va = self.value(*a);
                let scale = g.item() / va.numel() as f32;
                add_to!(grads, *a, Tensor::full(va.shape().clone(), scale));
            }
            Op::SumAxis(a, axis) => {
                add_to!(grads, *a, broadcast_axis(self.value(*a), g, *axis, 1.0));
            }
            Op::MeanAxis(a, axis) => {
                let va = self.value(*a);
                let n = match axis {
                    Axis::Rows => va.rows(),
                    Axis::Cols => va.cols(),
                } as f32;
                add_to!(grads, *a, broadcast_axis(va, g, *axis, 1.0 / n));
            }
            Op::MinAxis(a, axis, args) | Op::MaxAxis(a, axis, args) => {
                let va = self.value(*a);
                let mut delta = Tensor::zeros(va.shape().clone());
                let cols = va.cols();
                match axis {
                    Axis::Rows => {
                        // One output per column j; gradient goes to (args[j], j).
                        for (j, (&arg, &gv)) in args.iter().zip(g.as_slice()).enumerate() {
                            delta.as_mut_slice()[arg * cols + j] += gv;
                        }
                    }
                    Axis::Cols => {
                        // One output per row i; gradient goes to (i, args[i]).
                        for (i, (&arg, &gv)) in args.iter().zip(g.as_slice()).enumerate() {
                            delta.as_mut_slice()[i * cols + arg] += gv;
                        }
                    }
                }
                add_to!(grads, *a, delta);
            }
            Op::AddRowVec(a, v) => {
                add_to!(grads, *a, g.clone());
                add_to!(grads, *v, reduce::sum_axis(g, Axis::Rows));
            }
            Op::AddColVec(a, v) => {
                add_to!(grads, *a, g.clone());
                add_to!(grads, *v, reduce::sum_axis(g, Axis::Cols));
            }
            Op::Reshape(a, old_shape) => {
                add_to!(grads, *a, g.clone().reshape(old_shape.clone()));
            }
            Op::ConcatRows(parts) => {
                let mut row_off = 0;
                for &p in parts {
                    let pr = self.value(p).rows();
                    let cols = self.value(p).cols();
                    let mut part = Tensor::zeros([pr, cols]);
                    for i in 0..pr {
                        part.row_mut(i).copy_from_slice(g.row(row_off + i));
                    }
                    row_off += pr;
                    add_to!(grads, p, part);
                }
            }
            Op::ConcatCols(parts) => {
                let mut col_off = 0;
                for &p in parts {
                    let (pr, pc) = (self.value(p).rows(), self.value(p).cols());
                    let mut part = Tensor::zeros([pr, pc]);
                    for i in 0..pr {
                        part.row_mut(i)
                            .copy_from_slice(&g.row(i)[col_off..col_off + pc]);
                    }
                    col_off += pc;
                    add_to!(grads, p, part);
                }
            }
            Op::SliceCols(a, start, end) => {
                let va = self.value(*a);
                let mut delta = Tensor::zeros(va.shape().clone());
                for i in 0..va.rows() {
                    delta.row_mut(i)[*start..*end].copy_from_slice(g.row(i));
                }
                add_to!(grads, *a, delta);
            }
            Op::Unfold {
                input,
                len,
                stride,
                dilation,
            } => {
                let va = self.value(*input);
                let (d, t) = (va.rows(), va.cols());
                add_to!(
                    grads,
                    *input,
                    unfold_dilated_backward(g, d, t, *len, *stride, *dilation)
                );
            }
            Op::PadCols(a, left, _right) => {
                let va = self.value(*a);
                let (rows, cols) = (va.rows(), va.cols());
                let mut delta = Tensor::zeros([rows, cols]);
                for i in 0..rows {
                    delta
                        .row_mut(i)
                        .copy_from_slice(&g.row(i)[*left..*left + cols]);
                }
                add_to!(grads, *a, delta);
            }
            Op::RowNormalize(a, norms) => {
                // y = x/n → ∂x = (g − y·(g·y)) / n per row.
                let y = &self.nodes[idx].value;
                let (rows, cols) = (y.rows(), y.cols());
                let mut delta = Tensor::zeros([rows, cols]);
                for i in 0..rows {
                    let yr = y.row(i);
                    let gr = g.row(i);
                    let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
                    let n = norms[i];
                    for ((d, &gv), &yv) in delta.row_mut(i).iter_mut().zip(gr.iter()).zip(yr.iter())
                    {
                        *d = (gv - yv * dot) / n;
                    }
                }
                add_to!(grads, *a, delta);
            }
            Op::MaskDiagonal(a) => {
                let n = g.rows();
                let mut delta = g.clone();
                for i in 0..n {
                    delta.set(&[i, i], 0.0);
                }
                add_to!(grads, *a, delta);
            }
            Op::LogSumExpRows(a) => {
                let va = self.value(*a);
                let (rows, cols) = (va.rows(), va.cols());
                let mut delta = Tensor::zeros([rows, cols]);
                for i in 0..rows {
                    let sm = softmax_row(va.row(i));
                    let gv = g.as_slice()[i];
                    for (d, p) in delta.row_mut(i).iter_mut().zip(sm) {
                        *d = gv * p;
                    }
                }
                add_to!(grads, *a, delta);
            }
            Op::CrossEntropyLogits { logits, targets } => {
                let va = self.value(*logits);
                let (rows, cols) = (va.rows(), va.cols());
                let scale = g.item() / rows as f32;
                let mut delta = Tensor::zeros([rows, cols]);
                for (i, &t) in targets.iter().enumerate() {
                    let sm = softmax_row(va.row(i));
                    let dr = delta.row_mut(i);
                    for (j, p) in sm.into_iter().enumerate() {
                        dr[j] = scale * (p - if j == t { 1.0 } else { 0.0 });
                    }
                }
                add_to!(grads, *logits, delta);
            }
            Op::Custom { op, inputs } => {
                let vals: Vec<&Tensor> = inputs.iter().map(|&i| self.value(i)).collect();
                let deltas = op.backward(g, &vals, &self.nodes[idx].value);
                assert_eq!(
                    deltas.len(),
                    inputs.len(),
                    "custom op {op:?} returned {} gradients for {} inputs",
                    deltas.len(),
                    inputs.len()
                );
                for (&input, delta) in inputs.iter().zip(deltas) {
                    if let Some(d) = delta {
                        debug_assert!(
                            d.shape().same_as(self.value(input).shape()),
                            "custom op {op:?} gradient shape {} != input shape {}",
                            d.shape(),
                            self.value(input).shape()
                        );
                        add_to!(grads, input, d);
                    }
                }
            }
        }
    }
}

/// Numerically stable log-sum-exp of a slice.
fn lse(row: &[f32]) -> f32 {
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !m.is_finite() {
        return m;
    }
    let s: f32 = row.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

fn softmax_row(row: &[f32]) -> Vec<f32> {
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = row.iter().map(|&x| (x - m).exp()).collect();
    let total: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Expands a per-axis gradient back to the full matrix shape, scaled.
fn broadcast_axis(like: &Tensor, g: &Tensor, axis: Axis, scale: f32) -> Tensor {
    let (rows, cols) = (like.rows(), like.cols());
    let mut out = Tensor::zeros([rows, cols]);
    match axis {
        Axis::Rows => {
            for i in 0..rows {
                for (o, &gv) in out.row_mut(i).iter_mut().zip(g.as_slice()) {
                    *o = gv * scale;
                }
            }
        }
        Axis::Cols => {
            for i in 0..rows {
                let gv = g.as_slice()[i] * scale;
                for o in out.row_mut(i).iter_mut() {
                    *o = gv;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_gradient() {
        // loss = sum((w * x + 2)^2), w = [1, -1], x = [3, 5]
        let mut g = Graph::new();
        let w = g.param(Tensor::from_vec(vec![1.0, -1.0], [2]));
        let x = g.leaf(Tensor::from_vec(vec![3.0, 5.0], [2]));
        let wx = g.mul(w, x);
        let shifted = g.add_scalar(wx, 2.0);
        let sq = g.square(shifted);
        let loss = g.sum_all(sq);
        // values: (3+2)^2 + (-5+2)^2 = 25 + 9 = 34
        assert_eq!(g.value(loss).item(), 34.0);
        let grads = g.backward(loss);
        // d/dw_i = 2(w_i x_i + 2) x_i → [2*5*3, 2*(-3)*5] = [30, -30]
        assert_eq!(grads.get(w).unwrap().as_slice(), &[30.0, -30.0]);
        // x is a leaf without grad
        assert!(grads.get(x).is_none());
    }

    #[test]
    fn matmul_gradients_match_known() {
        // loss = sum(A·B); dA = ones·Bᵀ, dB = Aᵀ·ones.
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let b = g.param(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(grads.get(b).unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn min_axis_routes_gradient_to_argmin() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![3.0, 1.0, 2.0, 0.5, 9.0, 4.0], [2, 3]));
        let m = g.min_axis(a, Axis::Cols);
        assert_eq!(g.value(m).as_slice(), &[1.0, 0.5]);
        let loss = g.sum_all(m);
        let grads = g.backward(loss);
        assert_eq!(
            grads.get(a).unwrap().as_slice(),
            &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut g = Graph::new();
        let logits = g.param(Tensor::from_vec(vec![2.0, 0.0, 0.0, 3.0], [2, 2]));
        let loss = g.cross_entropy_logits(logits, &[0, 1]);
        // CE_row0 = ln(e^2+e^0) - 2; CE_row1 = ln(e^0+e^3) - 3
        let want = (((2f32.exp() + 1.0).ln() - 2.0) + ((1.0 + 3f32.exp()).ln() - 3.0)) / 2.0;
        assert!((g.value(loss).item() - want).abs() < 1e-5);
        let grads = g.backward(loss);
        let gl = grads.get(logits).unwrap();
        // row sums of softmax-minus-onehot are 0
        assert!((gl.row(0)[0] + gl.row(0)[1]).abs() < 1e-6);
    }

    #[test]
    fn row_normalize_produces_unit_rows_and_tangent_grad() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![3.0, 4.0, 0.0, 2.0], [2, 2]));
        let n = g.row_normalize(a, 1e-12);
        let v = g.value(n);
        assert!((v.row(0)[0] - 0.6).abs() < 1e-5);
        assert!((v.row(0)[1] - 0.8).abs() < 1e-5);
        // Gradient of sum(y) is orthogonal to y per row: (g - y (g·y))/n.
        let loss = g.sum_all(n);
        let grads = g.backward(loss);
        let ga = grads.get(a).unwrap();
        // check row0: g=(1,1), y=(0.6,0.8), g·y=1.4, n=5 → ((1-0.84)/5,(1-1.12)/5)
        assert!((ga.row(0)[0] - 0.032).abs() < 1e-5);
        assert!((ga.row(0)[1] + 0.024).abs() < 1e-5);
    }

    #[test]
    fn mask_diagonal_blocks_gradient() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let m = g.mask_diagonal(a);
        assert_eq!(g.value(m).at2(0, 0), -1e9);
        assert_eq!(g.value(m).at2(0, 1), 2.0);
        let loss = g.sum_all(m);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_and_slice_round_trip_gradients() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![1.0, 2.0], [1, 2]));
        let b = g.param(Tensor::from_vec(vec![3.0, 4.0, 5.0], [1, 3]));
        let cat = g.concat_cols(&[a, b]);
        let sl = g.slice_cols(cat, 1, 4); // elements 2,3,4
        let loss = g.sum_all(sl);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().as_slice(), &[0.0, 1.0]);
        assert_eq!(grads.get(b).unwrap().as_slice(), &[1.0, 1.0, 0.0]);
    }

    #[test]
    fn unfold_gradient_counts_window_coverage() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]));
        let w = g.unfold(a, 2, 1, 1);
        let loss = g.sum_all(w);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().as_slice(), &[1.0, 2.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let mut g = Graph::new();
        let a = g.param(Tensor::ones([2, 2]));
        g.backward(a);
    }

    #[test]
    fn graph_and_grads_are_send() {
        // Data-parallel training builds one Graph per worker thread and
        // ships Grads back to the reducer; keep both thread-transferable.
        fn assert_send<T: Send>() {}
        assert_send::<Graph>();
        assert_send::<Grads>();
        assert_send::<VarId>();
    }

    /// Toy custom op for the tests: `y = (a ⊙ a) · s`, gradient `2·s·a·g`.
    #[derive(Debug)]
    struct SquareScale(f32);

    impl CustomOp for SquareScale {
        fn forward(&self, inputs: &[&Tensor]) -> Tensor {
            inputs[0].square().scale(self.0)
        }

        fn backward(
            &self,
            grad_out: &Tensor,
            inputs: &[&Tensor],
            _output: &Tensor,
        ) -> Vec<Option<Tensor>> {
            vec![Some(
                grad_out.zip_map(inputs[0], |g, x| 2.0 * self.0 * x * g),
            )]
        }
    }

    /// Two-input custom op returning `a − b` but declaring itself
    /// non-differentiable in `b` (`None` gradient slot).
    #[derive(Debug)]
    struct SubDetachB;

    impl CustomOp for SubDetachB {
        fn forward(&self, inputs: &[&Tensor]) -> Tensor {
            inputs[0].sub(inputs[1])
        }

        fn backward(
            &self,
            grad_out: &Tensor,
            _inputs: &[&Tensor],
            _output: &Tensor,
        ) -> Vec<Option<Tensor>> {
            vec![Some(grad_out.clone()), None]
        }
    }

    #[test]
    fn custom_op_forward_and_backward() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![1.0, -2.0, 3.0], [1, 3]));
        let y = g.custom(Arc::new(SquareScale(0.5)), &[a]);
        assert_eq!(g.value(y).as_slice(), &[0.5, 2.0, 4.5]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        // d/da_i = 2 * 0.5 * a_i = a_i.
        assert_eq!(grads.get(a).unwrap().as_slice(), &[1.0, -2.0, 3.0]);
    }

    #[test]
    fn custom_op_composes_with_builtin_ops() {
        // Same computation built twice: custom square-scale vs the built-in
        // ops, downstream of a matmul and upstream of a reduction. The
        // reverse walk must produce identical gradients.
        let run = |use_custom: bool| {
            let mut g = Graph::new();
            let a = g.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
            let b = g.leaf(Tensor::from_vec(vec![0.5, -1.0, 1.5, 0.25], [2, 2]));
            let m = g.matmul(a, b);
            let sq = if use_custom {
                g.custom(Arc::new(SquareScale(2.0)), &[m])
            } else {
                let s = g.square(m);
                g.mul_scalar(s, 2.0)
            };
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            (g.value(loss).item(), grads.get(a).unwrap().clone())
        };
        let (v1, g1) = run(true);
        let (v2, g2) = run(false);
        assert_eq!(v1, v2);
        assert_eq!(g1.as_slice(), g2.as_slice());
    }

    #[test]
    fn custom_op_none_gradient_slot_is_skipped() {
        let mut g = Graph::new();
        let a = g.param(Tensor::from_vec(vec![5.0, 6.0], [1, 2]));
        let b = g.param(Tensor::from_vec(vec![1.0, 2.0], [1, 2]));
        let y = g.custom(Arc::new(SubDetachB), &[a, b]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().as_slice(), &[1.0, 1.0]);
        // `b` tracks gradients but the op declared ∂/∂b = None.
        assert!(grads.get(b).is_none());
    }

    #[test]
    fn custom_op_on_constant_inputs_tracks_no_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones([2, 2]));
        let y = g.custom(Arc::new(SquareScale(1.0)), &[a]);
        let p = g.param(Tensor::ones([2, 2]));
        let z = g.mul(y, p);
        let loss = g.sum_all(z);
        let grads = g.backward(loss);
        assert!(grads.get(y).is_none(), "constant subgraph got a gradient");
        assert_eq!(grads.get(p).unwrap().as_slice(), &[1.0; 4]);
    }

    #[test]
    fn graph_with_custom_op_is_send() {
        // The Arc<dyn CustomOp> inside Op::Custom must not break the
        // worker-thread contract checked by `graph_and_grads_are_send`.
        let mut g = Graph::new();
        let a = g.param(Tensor::ones([1, 2]));
        g.custom(Arc::new(SquareScale(1.0)), &[a]);
        fn assert_send<T: Send>(_: &T) {}
        assert_send(&g);
    }

    #[test]
    fn grad_skipped_for_untracked_subgraph() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones([2, 2]));
        let b = g.leaf(Tensor::ones([2, 2]));
        let c = g.add(a, b);
        let p = g.param(Tensor::ones([2, 2]));
        let d = g.mul(c, p);
        let loss = g.sum_all(d);
        let grads = g.backward(loss);
        assert!(grads.get(c).is_none());
        assert_eq!(grads.get(p).unwrap().as_slice(), &[2.0; 4]);
    }
}

//! Composed loss builders shared by the CSL trainer and the contrastive
//! baselines.

use crate::graph::{Graph, VarId};

/// NT-Xent (normalized-temperature cross-entropy) between two view batches
/// `z1, z2` of shape `(B, F)`, where `z1[i]`/`z2[i]` are views of the same
/// instance. Embeddings are L2-normalized, the `2B × 2B` similarity matrix
/// is temperature-scaled, self-similarities are masked, and the loss is the
/// mean cross-entropy of identifying each embedding's positive partner.
pub fn nt_xent(g: &mut Graph, z1: VarId, z2: VarId, temperature: f32) -> VarId {
    assert!(temperature > 0.0, "temperature must be positive");
    let b = g.value(z1).rows();
    assert_eq!(g.value(z2).rows(), b, "view batches must have equal size");
    assert!(b >= 2, "NT-Xent needs at least two instances per batch");
    let z = g.concat_rows(&[z1, z2]);
    let zn = g.row_normalize(z, 1e-8);
    let sim = g.matmul_transb(zn, zn);
    let scaled = g.mul_scalar(sim, 1.0 / temperature);
    let masked = g.mask_diagonal(scaled);
    let targets: Vec<usize> = (0..2 * b).map(|i| (i + b) % (2 * b)).collect();
    g.cross_entropy_logits(masked, &targets)
}

/// The triplet logistic loss of Franceschi et al.: pushes the anchor toward
/// its positive and away from each negative via `−log σ(z_a·z_p) − Σ_n log
/// σ(−z_a·z_n)`. `anchors`, `positives` are `(B, F)`; `negatives` is
/// `(B·K, F)` with the `K` negatives of anchor `i` at rows `i·K..(i+1)·K`.
pub fn triplet_logistic(
    g: &mut Graph,
    anchors: VarId,
    positives: VarId,
    negatives: VarId,
    k_negatives: usize,
) -> VarId {
    let b = g.value(anchors).rows();
    assert_eq!(g.value(positives).rows(), b, "one positive per anchor");
    assert_eq!(
        g.value(negatives).rows(),
        b * k_negatives,
        "k negatives per anchor required"
    );
    // Positive term: σ(z_a · z_p), elementwise over matched rows.
    let prod = g.mul(anchors, positives);
    let pos_dots = g.sum_axis(prod, tcsl_tensor::reduce::Axis::Cols); // (B)
    let pos_sig = g.sigmoid(pos_dots);
    let pos_log = g.ln_eps(pos_sig, 1e-12);
    let pos_term = g.mean_all(pos_log);

    // Negative term: σ(−z_a · z_n) for each anchor's K negatives.
    let neg_dots = g.matmul_transb(anchors, negatives); // (B, B·K)
                                                        // Select matched blocks by masking: build a (B, B·K) {0,1} mask leaf.
    let mut mask = tcsl_tensor::Tensor::zeros([b, b * k_negatives]);
    for i in 0..b {
        for j in 0..k_negatives {
            mask.set(&[i, i * k_negatives + j], 1.0);
        }
    }
    let mask = g.leaf(mask);
    let neg_neg = g.neg(neg_dots);
    let neg_sig = g.sigmoid(neg_neg);
    let neg_log = g.ln_eps(neg_sig, 1e-12);
    let masked = g.mul(neg_log, mask);
    let per_anchor = g.sum_axis(masked, tcsl_tensor::reduce::Axis::Cols); // (B)
    let neg_term = g.mean_all(per_anchor);

    let total = g.add(pos_term, neg_term);
    g.mul_scalar(total, -1.0)
}

/// The temporal-neighbourhood logistic loss (TNC-style): discriminates
/// neighbouring from distant windows, `−mean[log σ(z_a·z_n)] −
/// mean[log σ(−z_a·z_d)]`. All inputs are `(B, F)` with matched rows.
pub fn neighbourhood_logistic(
    g: &mut Graph,
    anchors: VarId,
    neighbours: VarId,
    distants: VarId,
) -> VarId {
    let b = g.value(anchors).rows();
    assert_eq!(g.value(neighbours).rows(), b, "one neighbour per anchor");
    assert_eq!(g.value(distants).rows(), b, "one distant window per anchor");
    let axis = tcsl_tensor::reduce::Axis::Cols;

    let npro = g.mul(anchors, neighbours);
    let ndots = g.sum_axis(npro, axis);
    let nsig = g.sigmoid(ndots);
    let nlog = g.ln_eps(nsig, 1e-12);
    let npos = g.mean_all(nlog);

    let dpro = g.mul(anchors, distants);
    let ddots = g.sum_axis(dpro, axis);
    let dneg = g.neg(ddots);
    let dsig = g.sigmoid(dneg);
    let dlog = g.ln_eps(dsig, 1e-12);
    let dterm = g.mean_all(dlog);

    let total = g.add(npos, dterm);
    g.mul_scalar(total, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::seeded;
    use tcsl_tensor::Tensor;

    #[test]
    fn nt_xent_prefers_aligned_views() {
        let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let mut g = Graph::new();
        let (a, b) = (g.leaf(id.clone()), g.leaf(id));
        let good = nt_xent(&mut g, a, b, 0.2);
        let collapsed = Tensor::ones([2, 2]);
        let mut g2 = Graph::new();
        let (a, b) = (g2.leaf(collapsed.clone()), g2.leaf(collapsed));
        let bad = nt_xent(&mut g2, a, b, 0.2);
        assert!(g.value(good).item() < g2.value(bad).item());
    }

    #[test]
    fn triplet_rewards_positive_similarity() {
        // Anchor aligned with positive, orthogonal negatives → small loss.
        let a = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], [2, 2]);
        let n = Tensor::from_vec(vec![0.0, -2.0, -2.0, 0.0, 0.0, -2.0, -2.0, 0.0], [4, 2]);
        let mut g = Graph::new();
        let av = g.leaf(a.clone());
        let pv = g.leaf(a.clone());
        let nv = g.leaf(n);
        let good = triplet_logistic(&mut g, av, pv, nv, 2);

        // Anchor aligned with negatives instead → large loss.
        let mut g2 = Graph::new();
        let av = g2.leaf(a.clone());
        let pv = g2.leaf(a.neg());
        let nv = g2.leaf(Tensor::from_vec(
            vec![2.0, 0.0, 2.0, 0.0, 0.0, 2.0, 0.0, 2.0],
            [4, 2],
        ));
        let bad = triplet_logistic(&mut g2, av, pv, nv, 2);
        assert!(g.value(good).item() < g2.value(bad).item());
    }

    #[test]
    fn neighbourhood_loss_direction() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let mut g = Graph::new();
        let av = g.leaf(a.clone());
        let nv = g.leaf(a.scale(2.0));
        let dv = g.leaf(a.neg());
        let good = neighbourhood_logistic(&mut g, av, nv, dv);

        let mut g2 = Graph::new();
        let av = g2.leaf(a.clone());
        let nv = g2.leaf(a.neg());
        let dv = g2.leaf(a.scale(2.0));
        let bad = neighbourhood_logistic(&mut g2, av, nv, dv);
        assert!(g.value(good).item() < g2.value(bad).item());
    }

    #[test]
    fn all_losses_gradcheck() {
        let mut rng = seeded(33);
        let z1 = Tensor::randn([2, 3], &mut rng);
        let z2 = Tensor::randn([2, 3], &mut rng);
        let report = crate::gradcheck::gradcheck(&[z1.clone(), z2.clone()], 1e-2, |g, xs| {
            let a = g.param(xs[0].clone());
            let b = g.param(xs[1].clone());
            let loss = nt_xent(g, a, b, 0.5);
            (vec![a, b], loss)
        });
        assert!(report.passes(5e-2), "nt_xent: rel={}", report.max_rel_err);

        let negs = Tensor::randn([4, 3], &mut rng);
        let report = crate::gradcheck::gradcheck(&[z1.clone(), z2.clone(), negs], 1e-2, |g, xs| {
            let a = g.param(xs[0].clone());
            let p = g.param(xs[1].clone());
            let n = g.param(xs[2].clone());
            let loss = triplet_logistic(g, a, p, n, 2);
            (vec![a, p, n], loss)
        });
        assert!(report.passes(5e-2), "triplet: rel={}", report.max_rel_err);

        let d = Tensor::randn([2, 3], &mut rng);
        let report = crate::gradcheck::gradcheck(&[z1, z2, d], 1e-2, |g, xs| {
            let a = g.param(xs[0].clone());
            let n = g.param(xs[1].clone());
            let dd = g.param(xs[2].clone());
            let loss = neighbourhood_logistic(g, a, n, dd);
            (vec![a, n, dd], loss)
        });
        assert!(report.passes(5e-2), "tnc: rel={}", report.max_rel_err);
    }
}

//! First-order optimizers: SGD with momentum and Adam.
//!
//! Both operate on a [`ParamStore`] plus a gradient vector in store order
//! (the output of [`ParamStore::collect_grads`]). Optimizer state (momentum
//! buffers, Adam moments) is lazily shaped on the first step.

use crate::params::ParamStore;
use tcsl_tensor::Tensor;

/// A gradient-descent update rule.
pub trait Optimizer {
    /// Applies one update given gradients in store order.
    fn step(&mut self, params: &mut ParamStore, grads: &[Tensor]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0, 0.0)
    }

    /// SGD with momentum `mu` and weight decay `wd`.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "one gradient per parameter required"
        );
        if self.velocity.is_empty() {
            self.velocity = grads
                .iter()
                .map(|g| Tensor::zeros(g.shape().clone()))
                .collect();
        }
        for i in 0..params.len() {
            let p = params.get_mut(i);
            let mut g = grads[i].clone();
            if self.weight_decay > 0.0 {
                g.add_scaled_inplace(p, self.weight_decay);
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                // v ← μ·v + g ; p ← p − lr·v
                for (vv, gv) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vv = self.momentum * *vv + gv;
                }
                p.add_scaled_inplace(v, -self.lr);
            } else {
                p.add_scaled_inplace(&g, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction and optional weight decay.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully-parameterized constructor.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "one gradient per parameter required"
        );
        if self.m.is_empty() {
            self.m = grads
                .iter()
                .map(|g| Tensor::zeros(g.shape().clone()))
                .collect();
            self.v = grads
                .iter()
                .map(|g| Tensor::zeros(g.shape().clone()))
                .collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let p = params.get_mut(i);
            let mut g = grads[i].clone();
            if self.weight_decay > 0.0 {
                g.add_scaled_inplace(p, self.weight_decay);
            }
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for ((mv, vv), (&gv, pv)) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(g.as_slice().iter().zip(p.as_mut_slice().iter_mut()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes f(w) = ‖w − c‖² and asserts convergence to c.
    fn converges(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]);
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::zeros([3]));
        for _ in 0..steps {
            let mut g = Graph::new();
            let bound = ps.bind(&mut g);
            let c = g.leaf(target.clone());
            let loss = g.mse(bound[0], c);
            let mut grads = g.backward(loss);
            let gv = ps.collect_grads(&mut grads, &bound);
            opt.step(&mut ps, &gv);
        }
        ps.get(0).max_abs_diff(&target)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.5);
        assert!(converges(&mut opt, 200) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        assert!(converges(&mut opt, 300) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(converges(&mut opt, 500) < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        // With zero gradient and weight decay, parameters decay toward 0.
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::full([2], 1.0));
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        let zero = vec![Tensor::zeros([2])];
        for _ in 0..10 {
            opt.step(&mut ps, &zero);
        }
        assert!(ps.get(0).as_slice()[0] < 1.0);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "one gradient per parameter")]
    fn mismatched_grads_panic() {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::ones([1]));
        let mut opt = Sgd::new(0.1);
        opt.step(&mut ps, &[]);
    }
}

//! Finite-difference gradient checking.
//!
//! Every backward rule in [`crate::graph`] is validated by comparing the
//! analytic gradient against a central finite difference of the scalar loss.
//! The harness rebuilds the graph per perturbation (tapes are single-use),
//! so the function under test must be a pure builder.

use crate::graph::{Graph, VarId};
use tcsl_tensor::Tensor;

/// Result of a gradient check: worst absolute and relative deviation.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by gradient magnitude).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// Whether the check passes at the given relative tolerance (with an
    /// absolute floor of the same magnitude for near-zero gradients).
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err < tol || self.max_abs_err < tol
    }
}

/// Checks the gradient of `build` with respect to `inputs`.
///
/// `build` receives a fresh graph plus the current input tensors, inserts
/// them (as params) and returns a scalar loss node. Central differences use
/// step `h`.
pub fn gradcheck(
    inputs: &[Tensor],
    h: f32,
    build: impl Fn(&mut Graph, &[Tensor]) -> (Vec<VarId>, VarId),
) -> GradCheckReport {
    // Analytic pass.
    let mut g = Graph::new();
    let (ids, loss) = build(&mut g, inputs);
    assert_eq!(
        ids.len(),
        inputs.len(),
        "build must return one VarId per input"
    );
    let grads = g.backward(loss);
    let analytic: Vec<Tensor> = ids
        .iter()
        .zip(inputs)
        .map(|(&id, x)| {
            grads
                .get(id)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(x.shape().clone()))
        })
        .collect();

    let eval = |xs: &[Tensor]| -> f32 {
        let mut g = Graph::new();
        let (_, loss) = build(&mut g, xs);
        g.value(loss).item()
    };

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (pi, x) in inputs.iter().enumerate() {
        for e in 0..x.numel() {
            let mut plus = inputs.to_vec();
            plus[pi].as_mut_slice()[e] += h;
            let mut minus = inputs.to_vec();
            minus[pi].as_mut_slice()[e] -= h;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * h);
            let a = analytic[pi].as_slice()[e];
            let abs = (a - numeric).abs();
            let rel = abs / (a.abs().max(numeric.abs()).max(1e-3));
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::reduce::Axis;
    use tcsl_tensor::rng::seeded;

    const H: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn check(inputs: &[Tensor], build: impl Fn(&mut Graph, &[Tensor]) -> (Vec<VarId>, VarId)) {
        let report = gradcheck(inputs, H, build);
        assert!(
            report.passes(TOL),
            "gradcheck failed: abs={} rel={}",
            report.max_abs_err,
            report.max_rel_err
        );
    }

    #[test]
    fn elementwise_chain() {
        let mut rng = seeded(10);
        let x = Tensor::rand_uniform([3, 4], 0.5, 2.0, &mut rng);
        check(&[x], |g, xs| {
            let a = g.param(xs[0].clone());
            let s = g.sqrt_eps(a, 1e-6);
            let e = g.exp(s);
            let l = g.ln_eps(e, 1e-6);
            let q = g.square(l);
            let loss = g.mean_all(q);
            (vec![a], loss)
        });
    }

    #[test]
    fn div_and_activations() {
        let mut rng = seeded(11);
        let x = Tensor::rand_uniform([2, 3], -2.0, 2.0, &mut rng);
        let y = Tensor::rand_uniform([2, 3], 1.0, 3.0, &mut rng);
        check(&[x, y], |g, xs| {
            let a = g.param(xs[0].clone());
            let b = g.param(xs[1].clone());
            let d = g.div(a, b);
            let t = g.tanh(d);
            let s = g.sigmoid(t);
            let loss = g.sum_all(s);
            (vec![a, b], loss)
        });
    }

    #[test]
    fn matmul_chain() {
        let mut rng = seeded(12);
        let a = Tensor::randn([3, 4], &mut rng);
        let b = Tensor::randn([4, 2], &mut rng);
        check(&[a, b], |g, xs| {
            let a = g.param(xs[0].clone());
            let b = g.param(xs[1].clone());
            let c = g.matmul(a, b);
            let sq = g.square(c);
            let loss = g.mean_all(sq);
            (vec![a, b], loss)
        });
    }

    #[test]
    fn matmul_transb_chain() {
        let mut rng = seeded(13);
        let a = Tensor::randn([3, 5], &mut rng);
        let b = Tensor::randn([4, 5], &mut rng);
        check(&[a, b], |g, xs| {
            let a = g.param(xs[0].clone());
            let b = g.param(xs[1].clone());
            let c = g.matmul_transb(a, b);
            let loss = g.mean_all(c);
            (vec![a, b], loss)
        });
    }

    #[test]
    fn reductions_and_broadcast() {
        let mut rng = seeded(14);
        let a = Tensor::randn([4, 3], &mut rng);
        let v = Tensor::randn([3], &mut rng);
        check(&[a, v], |g, xs| {
            let a = g.param(xs[0].clone());
            let v = g.param(xs[1].clone());
            let shifted = g.add_row_vec(a, v);
            let per_col = g.mean_axis(shifted, Axis::Rows);
            let sq = g.square(per_col);
            let loss = g.sum_all(sq);
            (vec![a, v], loss)
        });
    }

    #[test]
    fn relu_with_separated_preactivations() {
        // Keep every preactivation at least H away from the kink so the
        // central difference stays on one side.
        let x = Tensor::from_vec(vec![1.0, -1.5, 2.0, -0.5, 0.75, -2.5], [2, 3]);
        check(&[x], |g, xs| {
            let x = g.param(xs[0].clone());
            let r = g.relu(x);
            let sq = g.square(r);
            let loss = g.sum_all(sq);
            (vec![x], loss)
        });
    }

    #[test]
    fn min_pooling_subgradient() {
        // Use well-separated values so the argmin is stable under ±h.
        let a = Tensor::from_vec(vec![5.0, 1.0, 3.0, 2.0, 8.0, 4.0], [2, 3]);
        check(&[a], |g, xs| {
            let a = g.param(xs[0].clone());
            let m = g.min_axis(a, Axis::Cols);
            let sq = g.square(m);
            let loss = g.sum_all(sq);
            (vec![a], loss)
        });
    }

    #[test]
    fn unfold_normalize_and_ce() {
        let mut rng = seeded(15);
        let x = Tensor::randn([2, 8], &mut rng);
        check(&[x], |g, xs| {
            let x = g.param(xs[0].clone());
            let w = g.unfold(x, 3, 1, 1);
            let n = g.row_normalize(w, 1e-6);
            let loss = g.cross_entropy_logits(n, &[0, 1, 2, 3, 0, 1]);
            (vec![x], loss)
        });
    }

    #[test]
    fn logsumexp_rows_gradient() {
        let mut rng = seeded(16);
        let x = Tensor::randn([3, 4], &mut rng);
        check(&[x], |g, xs| {
            let x = g.param(xs[0].clone());
            let l = g.logsumexp_rows(x);
            let loss = g.sum_all(l);
            (vec![x], loss)
        });
    }

    #[test]
    fn pad_transpose_slice() {
        let mut rng = seeded(17);
        let x = Tensor::randn([2, 5], &mut rng);
        check(&[x], |g, xs| {
            let x = g.param(xs[0].clone());
            let p = g.pad_cols(x, 2, 1);
            let t = g.transpose(p);
            let s = g.slice_cols(t, 0, 2);
            let sq = g.square(s);
            let loss = g.mean_all(sq);
            (vec![x], loss)
        });
    }

    #[test]
    fn dilated_unfold_gradient() {
        let mut rng = seeded(18);
        let x = Tensor::randn([1, 10], &mut rng);
        check(&[x], |g, xs| {
            let x = g.param(xs[0].clone());
            let w = g.unfold(x, 3, 1, 2);
            let sq = g.square(w);
            let loss = g.sum_all(sq);
            (vec![x], loss)
        });
    }

    /// A deliberately non-trivial custom op for the finite-difference
    /// harness: `y = tanh(a · bᵀ)` fused into one node, with the analytic
    /// backward written out by hand (not composed from built-in rules).
    #[derive(Debug)]
    struct FusedTanhMatmulTransB;

    impl crate::graph::CustomOp for FusedTanhMatmulTransB {
        fn forward(&self, inputs: &[&Tensor]) -> Tensor {
            tcsl_tensor::matmul::matmul_transb(inputs[0], inputs[1]).map(f32::tanh)
        }

        fn backward(
            &self,
            grad_out: &Tensor,
            inputs: &[&Tensor],
            output: &Tensor,
        ) -> Vec<Option<Tensor>> {
            // dL/d(pre) = g ⊙ (1 − y²); then the matmul_transb adjoints.
            let gpre = grad_out.zip_map(output, |g, y| g * (1.0 - y * y));
            let ga = tcsl_tensor::matmul::matmul(&gpre, inputs[1]);
            let gb = tcsl_tensor::matmul::matmul_transa(&gpre, inputs[0]);
            vec![Some(ga), Some(gb)]
        }
    }

    #[test]
    fn custom_op_gradient_matches_finite_differences() {
        // gradcheck must exercise Op::Custom exactly like a built-in rule:
        // the custom node sits mid-graph, with tracked params upstream and
        // further built-in ops downstream.
        let mut rng = seeded(20);
        let a = Tensor::randn([3, 4], &mut rng);
        let b = Tensor::randn([2, 4], &mut rng);
        check(&[a, b], |g, xs| {
            let a = g.param(xs[0].clone());
            let b = g.param(xs[1].clone());
            let y = g.custom(std::sync::Arc::new(FusedTanhMatmulTransB), &[a, b]);
            let sq = g.square(y);
            let loss = g.mean_all(sq);
            (vec![a, b], loss)
        });
    }

    #[test]
    fn custom_op_partial_gradients_check_against_declared_inputs() {
        // An op with a None gradient slot: the finite difference of the
        // *detached* input must see a flat loss (the analytic zero), which
        // only holds when the loss genuinely ignores perturbations routed
        // through no other path.
        #[derive(Debug)]
        struct AddDetachB;
        impl crate::graph::CustomOp for AddDetachB {
            fn forward(&self, inputs: &[&Tensor]) -> Tensor {
                // Forward ignores b entirely (treats it as metadata), so
                // the None backward slot is exactly right.
                inputs[0].clone()
            }
            fn backward(
                &self,
                grad_out: &Tensor,
                _inputs: &[&Tensor],
                _output: &Tensor,
            ) -> Vec<Option<Tensor>> {
                vec![Some(grad_out.clone()), None]
            }
        }
        let mut rng = seeded(21);
        let a = Tensor::randn([2, 3], &mut rng);
        let b = Tensor::randn([2, 3], &mut rng);
        check(&[a, b], |g, xs| {
            let a = g.param(xs[0].clone());
            let b = g.param(xs[1].clone());
            let y = g.custom(std::sync::Arc::new(AddDetachB), &[a, b]);
            let sq = g.square(y);
            let loss = g.sum_all(sq);
            (vec![a, b], loss)
        });
    }

    #[test]
    fn concat_rows_and_mask_diag() {
        let mut rng = seeded(19);
        let a = Tensor::randn([2, 3], &mut rng);
        let b = Tensor::randn([1, 3], &mut rng);
        check(&[a, b], |g, xs| {
            let a = g.param(xs[0].clone());
            let b = g.param(xs[1].clone());
            let z = g.concat_rows(&[a, b]);
            let s = g.matmul_transb(z, z); // 3×3 gram
            let m = g.mask_diagonal(s);
            let loss = g.logsumexp_rows(m);
            let loss = g.mean_all(loss);
            (vec![a, b], loss)
        });
    }
}

//! Named persistent parameter storage.
//!
//! A [`Graph`] is a single-use tape, so trainable state lives outside it in a
//! [`ParamStore`]. Each training step copies the current parameter values
//! into the graph as `param` leaves, runs forward/backward, then hands the
//! gradients (in store order) to an optimizer.

use crate::graph::{Grads, Graph, VarId};
use tcsl_tensor::Tensor;

/// An ordered collection of named trainable tensors.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter; returns its stable index. Names must be unique.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> usize {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "parameter name '{name}' registered twice"
        );
        self.names.push(name);
        self.values.push(value);
        self.values.len() - 1
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn numel(&self) -> usize {
        self.values.iter().map(Tensor::numel).sum()
    }

    /// Value of parameter `i`.
    pub fn get(&self, i: usize) -> &Tensor {
        &self.values[i]
    }

    /// Mutable value of parameter `i`.
    pub fn get_mut(&mut self, i: usize) -> &mut Tensor {
        &mut self.values[i]
    }

    /// Name of parameter `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Looks a parameter up by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Inserts every parameter into `graph` as a tracked leaf, returning the
    /// `VarId`s in store order.
    pub fn bind(&self, graph: &mut Graph) -> Vec<VarId> {
        self.values.iter().map(|v| graph.param(v.clone())).collect()
    }

    /// Collects the gradient for each bound parameter (zeros where a
    /// parameter did not participate in the loss).
    pub fn collect_grads(&self, grads: &mut Grads, bound: &[VarId]) -> Vec<Tensor> {
        assert_eq!(
            bound.len(),
            self.values.len(),
            "bind/collect length mismatch"
        );
        bound
            .iter()
            .zip(self.values.iter())
            .map(|(&id, v)| {
                grads
                    .take(id)
                    .unwrap_or_else(|| Tensor::zeros(v.shape().clone()))
            })
            .collect()
    }

    /// Iterates `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter())
    }

    /// A zeroed per-parameter gradient accumulator matching this store's
    /// shapes, for reducing gradients computed by independent worker
    /// subgraphs (data-parallel training).
    pub fn grad_accumulator(&self) -> GradAccumulator {
        GradAccumulator {
            sums: self
                .values
                .iter()
                .map(|v| Tensor::zeros(v.shape().clone()))
                .collect(),
            count: 0,
        }
    }
}

/// Accumulates per-parameter gradients from independent subgraphs.
///
/// Callers must invoke [`Self::accumulate`] in a **fixed order** (e.g. pair
/// index order) regardless of how many threads produced the gradients:
/// floating-point addition is not associative, so the reduction order — not
/// the execution schedule — is what makes data-parallel training
/// bit-for-bit reproducible at any thread count.
pub struct GradAccumulator {
    sums: Vec<Tensor>,
    count: usize,
}

impl GradAccumulator {
    /// Adds one worker's gradients (in store order) into the running sums.
    pub fn accumulate(&mut self, grads: &[Tensor]) {
        assert_eq!(
            grads.len(),
            self.sums.len(),
            "one gradient per parameter required"
        );
        for (acc, g) in self.sums.iter_mut().zip(grads) {
            acc.add_scaled_inplace(g, 1.0);
        }
        self.count += 1;
    }

    /// Number of gradient sets accumulated so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Finishes the reduction as the **mean** over accumulated sets — the
    /// reduction matching a loss defined as the mean of per-subgraph terms.
    pub fn into_mean(self) -> Vec<Tensor> {
        assert!(self.count > 0, "no gradients accumulated");
        let scale = 1.0 / self.count as f32;
        self.sums.into_iter().map(|t| t.scale(scale)).collect()
    }

    /// Finishes the reduction as the raw sums.
    pub fn into_sums(self) -> Vec<Tensor> {
        assert!(self.count > 0, "no gradients accumulated");
        self.sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut ps = ParamStore::new();
        let a = ps.register("w", Tensor::ones([2, 2]));
        let b = ps.register("b", Tensor::zeros([2]));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.numel(), 6);
        assert_eq!(ps.index_of("b"), Some(1));
        assert_eq!(ps.index_of("nope"), None);
        assert_eq!(ps.name(0), "w");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::ones([1]));
        ps.register("w", Tensor::ones([1]));
    }

    #[test]
    fn grad_accumulator_means_in_store_order() {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::from_vec(vec![1.0, 1.0], [2]));
        ps.register("b", Tensor::zeros([1]));
        let mut acc = ps.grad_accumulator();
        assert_eq!(acc.count(), 0);
        acc.accumulate(&[
            Tensor::from_vec(vec![2.0, 4.0], [2]),
            Tensor::from_vec(vec![1.0], [1]),
        ]);
        acc.accumulate(&[
            Tensor::from_vec(vec![6.0, 0.0], [2]),
            Tensor::from_vec(vec![3.0], [1]),
        ]);
        assert_eq!(acc.count(), 2);
        let mean = acc.into_mean();
        assert_eq!(mean[0].as_slice(), &[4.0, 2.0]);
        assert_eq!(mean[1].as_slice(), &[2.0]);
    }

    #[test]
    fn grad_accumulator_sums_without_scaling() {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::from_vec(vec![1.0], [1]));
        let mut acc = ps.grad_accumulator();
        acc.accumulate(&[Tensor::from_vec(vec![2.0], [1])]);
        acc.accumulate(&[Tensor::from_vec(vec![3.0], [1])]);
        assert_eq!(acc.into_sums()[0].as_slice(), &[5.0]);
    }

    #[test]
    #[should_panic(expected = "no gradients accumulated")]
    fn empty_accumulator_cannot_finish() {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::ones([1]));
        ps.grad_accumulator().into_mean();
    }

    #[test]
    #[should_panic(expected = "one gradient per parameter")]
    fn accumulate_length_mismatch_panics() {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::ones([1]));
        ps.grad_accumulator().accumulate(&[]);
    }

    #[test]
    fn bind_and_collect_round_trip() {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::from_vec(vec![2.0, 3.0], [2]));
        ps.register("unused", Tensor::ones([3]));

        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let sq = g.square(bound[0]);
        let loss = g.sum_all(sq);
        let mut grads = g.backward(loss);
        let collected = ps.collect_grads(&mut grads, &bound);
        assert_eq!(collected[0].as_slice(), &[4.0, 6.0]);
        // Unused parameter gets a zero gradient of matching shape.
        assert_eq!(collected[1].as_slice(), &[0.0, 0.0, 0.0]);
    }
}

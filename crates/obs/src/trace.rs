//! Structured run log: a JSONL event sink plus a `RUN_trace.json` summary.
//!
//! With instrumentation enabled ([`crate::enabled`]), [`emit`] appends one
//! JSON object per event to the sink. The sink is chosen on first emit:
//! a file at `TCSL_TRACE_OUT` (default `RUN_trace.jsonl`), or an in-memory
//! buffer when a test installed one via [`use_memory_sink`]. At the end of
//! a run, [`finish_run`] writes a summary JSON (counters, gauges, span
//! aggregates, run metadata) next to the event stream — for the default
//! path that is `RUN_trace.json`.
//!
//! Events are serialized with fields in insertion order and floats through
//! [`crate::json`], so two runs that emit the same logical events produce
//! byte-identical lines. Events deliberately carry **no timestamps**: any
//! wall-clock quantity (seconds, throughput) is an explicit named field,
//! which lets the determinism tests compare full events minus a short list
//! of known-nondeterministic field names.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::Mutex;

use crate::json;

/// A field value in a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized via [`json::write_f64`]; non-finite as strings).
    F64(f64),
    /// String.
    Str(String),
}

/// One structured event: a kind plus ordered `(name, value)` fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event kind, serialized under the `"event"` key.
    pub kind: &'static str,
    /// Fields in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event of the given kind.
    pub fn new(kind: &'static str) -> Event {
        Event {
            kind,
            fields: Vec::new(),
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, name: &'static str, v: u64) -> Event {
        self.fields.push((name, Value::U64(v)));
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, name: &'static str, v: i64) -> Event {
        self.fields.push((name, Value::I64(v)));
        self
    }

    /// Adds a float field.
    pub fn f64(mut self, name: &'static str, v: f64) -> Event {
        self.fields.push((name, Value::F64(v)));
        self
    }

    /// Adds an `f32` field (stored as `f64` without noise digits).
    pub fn f32(mut self, name: &'static str, v: f32) -> Event {
        self.fields.push((name, Value::F64(f64::from(v))));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, name: &'static str, v: impl Into<String>) -> Event {
        self.fields.push((name, Value::Str(v.into())));
        self
    }

    /// Looks a field up by name (test convenience).
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"event\":");
        json::write_str(&mut out, self.kind);
        for (name, value) in &self.fields {
            out.push(',');
            json::write_str(&mut out, name);
            out.push(':');
            match value {
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => json::write_f64(&mut out, *v),
                Value::Str(v) => json::write_str(&mut out, v),
            }
        }
        out.push('}');
        out
    }
}

enum Sink {
    /// Not yet chosen — resolved on first emit.
    Unset,
    /// Appending JSONL to a file at [`trace_out_path`].
    File(BufWriter<File>),
    /// Test buffer, drained by [`take_events`].
    Memory(Vec<Event>),
    /// The file could not be opened; events are dropped (the run itself
    /// must not fail because tracing can't write).
    Discard,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: Mutex<Sink> = Mutex::new(Sink::Unset);
    &SINK
}

/// The JSONL event-stream path: `TCSL_TRACE_OUT`, default
/// `RUN_trace.jsonl`.
pub fn trace_out_path() -> PathBuf {
    std::env::var("TCSL_TRACE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("RUN_trace.jsonl"))
}

/// The summary path derived from the event-stream path: `x.jsonl` →
/// `x.json`, anything else gets `.summary.json` appended. The default
/// stream `RUN_trace.jsonl` therefore summarizes to `RUN_trace.json`.
pub fn summary_path() -> PathBuf {
    let p = trace_out_path();
    match p.to_str() {
        Some(s) if s.ends_with(".jsonl") => PathBuf::from(&s[..s.len() - 1]),
        _ => {
            let mut s = p.into_os_string();
            s.push(".summary.json");
            PathBuf::from(s)
        }
    }
}

/// Routes events into an in-memory buffer instead of a file (tests), and
/// clears any previously buffered events.
pub fn use_memory_sink() {
    *sink().lock().unwrap_or_else(|p| p.into_inner()) = Sink::Memory(Vec::new());
}

/// Drains the in-memory sink. Empty if the sink is not a memory sink.
pub fn take_events() -> Vec<Event> {
    match &mut *sink().lock().unwrap_or_else(|p| p.into_inner()) {
        Sink::Memory(buf) => std::mem::take(buf),
        _ => Vec::new(),
    }
}

/// Forgets the current sink (closing any file) so the next emit re-resolves
/// it. Run isolation for tests and benchmarks.
pub fn reset_sink() {
    *sink().lock().unwrap_or_else(|p| p.into_inner()) = Sink::Unset;
}

/// Emits one event to the sink when instrumentation is enabled; a relaxed
/// load and a branch otherwise.
#[inline]
pub fn emit(event: Event) {
    if crate::enabled() {
        write_event(event);
    }
}

#[cold]
fn write_event(event: Event) {
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    if matches!(*guard, Sink::Unset) {
        let path = trace_out_path();
        *guard = match File::create(&path) {
            Ok(f) => Sink::File(BufWriter::new(f)),
            Err(e) => {
                eprintln!("tcsl-obs: cannot open trace sink {}: {e}", path.display());
                Sink::Discard
            }
        };
    }
    match &mut *guard {
        Sink::File(w) => {
            let mut line = event.to_json();
            line.push('\n');
            let _ = w.write_all(line.as_bytes());
        }
        Sink::Memory(buf) => buf.push(event),
        Sink::Unset | Sink::Discard => {}
    }
}

/// Serializes one histogram snapshot: totals, deterministic interpolated
/// percentiles, and the sparse bucket array (`"<bucket index>": count`,
/// zero buckets omitted — see `tcsl_obs::hist::bucket_lo`/`bucket_hi` for
/// the value range a bucket index covers).
fn write_hist(out: &mut String, h: &crate::hist::HistStat) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"count\":{},\"sum\":{},\"mean\":", h.count, h.sum);
    json::write_f64(out, h.mean());
    for (name, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)] {
        let _ = write!(out, ",\"{name}\":");
        json::write_f64(out, h.quantile(q));
    }
    out.push_str(",\"buckets\":{");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{i}\":{c}");
    }
    out.push_str("}}");
}

/// Renders the run summary JSON (`tcsl-run-trace-v2`): run metadata, all
/// counters (deterministic and schedule-class, each sorted by name),
/// gauges, histogram distributions (deterministic and host-shaped sets,
/// with derived percentiles), and span aggregates (sorted by path,
/// nanoseconds — each carrying its duration histogram when
/// `TCSL_TRACE_HIST` opted in).
pub fn summary_json(run: &str) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"tcsl-run-trace-v2\",\"run\":");
    json::write_str(&mut out, run);
    out.push_str(",\"counters\":{");
    for (i, (name, value)) in crate::counters::counter_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, name);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push_str("},\"sched_counters\":{");
    for (i, (name, value)) in crate::counters::sched_counter_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, name);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in crate::counters::gauge_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, name);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, stat)) in crate::hist::hist_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, name);
        out.push(':');
        write_hist(&mut out, stat);
    }
    out.push_str("},\"host_histograms\":{");
    for (i, (name, stat)) in crate::hist::host_hist_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, name);
        out.push(':');
        write_hist(&mut out, stat);
    }
    let span_hists: std::collections::BTreeMap<String, crate::hist::HistStat> =
        crate::spans::span_hist_snapshot().into_iter().collect();
    out.push_str("},\"spans\":{");
    for (i, (path, stat)) in crate::spans::span_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, path);
        out.push_str(&format!(
            ":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}",
            stat.count, stat.total_ns, stat.min_ns, stat.max_ns
        ));
        if let Some(h) = span_hists.get(path) {
            out.push_str(",\"hist\":");
            write_hist(&mut out, h);
        }
        out.push('}');
    }
    out.push_str("}}");
    out
}

/// Finishes a run: flushes the event stream and, when the sink is a file,
/// writes the summary JSON next to it (see [`summary_path`]). Returns the
/// summary path if one was written. No-op while disabled.
pub fn finish_run(run: &str) -> Option<PathBuf> {
    if !crate::enabled() {
        return None;
    }
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    match &mut *guard {
        Sink::File(w) => {
            let _ = w.flush();
        }
        _ => return None,
    }
    drop(guard);
    let path = summary_path();
    let body = summary_json(run);
    match std::fs::write(&path, body) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("tcsl-obs: cannot write summary {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn events_serialize_deterministically() {
        let ev = Event::new("epoch")
            .u64("epoch", 3)
            .f64("total", 0.5)
            .f32("contrast", 0.25)
            .i64("delta", -2)
            .str("phase", "pre\"train");
        assert_eq!(
            ev.to_json(),
            "{\"event\":\"epoch\",\"epoch\":3,\"total\":0.5,\"contrast\":0.25,\
             \"delta\":-2,\"phase\":\"pre\\\"train\"}"
        );
        assert_eq!(ev.field("epoch"), Some(&Value::U64(3)));
        assert_eq!(ev.field("missing"), None);
    }

    #[test]
    fn non_finite_event_fields_stay_valid_json() {
        let ev = Event::new("warn").f64("loss", f64::NAN);
        assert_eq!(ev.to_json(), "{\"event\":\"warn\",\"loss\":\"NaN\"}");
    }

    #[test]
    fn memory_sink_buffers_only_when_enabled() {
        let _g = testlock::hold();
        use_memory_sink();
        crate::set_enabled(false);
        emit(Event::new("dropped"));
        crate::set_enabled(true);
        emit(Event::new("kept").u64("n", 1));
        crate::set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "kept");
        assert!(take_events().is_empty(), "take_events drains");
        reset_sink();
    }

    #[test]
    fn summary_json_is_valid_and_lists_instruments() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        crate::set_hist_enabled(true);
        crate::counters::reset();
        crate::spans::reset();
        crate::hist::reset();
        crate::counters::TRAINER_PAIRS.add(7);
        crate::hist::TRAINER_BATCH_PAIRS.record(7);
        crate::hist::TRANSFORM_SERIES_NS.record(1500);
        {
            let _s = crate::spans::span("phase");
        }
        let s = summary_json("unit-test");
        crate::set_enabled(false);
        crate::set_hist_enabled(false);
        assert!(s.starts_with("{\"schema\":\"tcsl-run-trace-v2\""));
        assert!(s.contains("\"run\":\"unit-test\""));
        assert!(s.contains("\"trainer.pairs\":7"));
        assert!(s.contains("\"pairdist.tiles\":0"), "zero counters present");
        assert!(
            s.contains("\"sched_counters\":{\"pool.dispatch\":"),
            "schedule-class counters have their own section"
        );
        // Deterministic vs host histogram sections, both with derived
        // percentiles and sparse buckets.
        assert!(s.contains("\"histograms\":{"));
        assert!(s.contains("\"trainer.batch_pairs\":{\"count\":1,\"sum\":7,"));
        assert!(s.contains("\"host_histograms\":{"));
        assert!(s.contains("\"transform.series_ns\":{\"count\":1,\"sum\":1500,"));
        assert!(s.contains("\"p999\":"));
        let zero_hist = format!("\"{}\":0", crate::hist::bucket_of(0));
        assert!(
            !s.contains(&zero_hist.replace(":0", ":0,\"")),
            "zero buckets are omitted from the sparse map"
        );
        // The span carries its duration histogram (TCSL_TRACE_HIST was on).
        assert!(s.contains("\"phase\":{\"count\":1"));
        assert!(
            s.contains(",\"hist\":{\"count\":1,"),
            "span entries embed their histogram when the gate is on"
        );
        // Braces balance — cheap structural validity check.
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close);
        // And the writer's output round-trips through the crate's parser.
        let parsed = json::parse(&s).expect("summary parses");
        assert_eq!(
            parsed.get("schema").and_then(json::JsonValue::as_str),
            Some("tcsl-run-trace-v2")
        );
        assert!(parsed.get("histograms").is_some());
        crate::counters::reset();
        crate::spans::reset();
        crate::hist::reset();
    }

    #[test]
    fn summary_path_derives_from_stream_path() {
        // Pure string logic on the default — no env mutation (racy).
        assert_eq!(
            PathBuf::from("RUN_trace.json"),
            match "RUN_trace.jsonl" {
                s if s.ends_with(".jsonl") => PathBuf::from(&s[..s.len() - 1]),
                s => PathBuf::from(s),
            }
        );
    }
}

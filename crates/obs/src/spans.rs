//! Hierarchical spans with monotonic timing.
//!
//! [`span`] pushes a name onto a thread-local stack and returns a guard;
//! on drop the elapsed time is folded into a process-global aggregate keyed
//! by the slash-joined *span path* (e.g. `pretrain/epoch/batch`). Each path
//! accumulates count, total, min and max nanoseconds.
//!
//! Worker threads start with an empty stack, so a span opened on a
//! persistent-pool worker aggregates under its own name (one
//! `pool.worker.NN` path per worker, opened per *dispatch* — worker
//! lifetime no longer equals dispatch lifetime, so the per-dispatch span is
//! what keeps count/total meaningful) rather than under the caller's path —
//! parent/child nesting is per-thread by construction.
//!
//! Span *timings* are wall-clock and therefore not deterministic; the
//! determinism tests compare counter totals and event values only. Span
//! *paths and counts* are deterministic whenever the traced work is.
//!
//! [`Stopwatch`] is the shared clock path for the benchmark binaries: it
//! always measures (monotonic `Instant`), and records a span aggregate only
//! when instrumentation is enabled — so `BENCH_*.json` timings and trace
//! output come from one clock.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics for one span path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Sum of elapsed nanoseconds.
    pub total_ns: u64,
    /// Shortest single span, nanoseconds.
    pub min_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn fold(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// Registry entry: the always-on aggregate plus, when `TCSL_TRACE_HIST`
/// opted in ([`crate::hist_enabled`]), a log2 duration histogram for the
/// path — the data behind the percentile columns of `timecsl trace`.
struct SpanAgg {
    stat: SpanStat,
    hist: Option<Box<[u64; crate::hist::BUCKETS]>>,
}

impl SpanAgg {
    fn fold(&mut self, ns: u64) {
        self.stat.fold(ns);
        if crate::hist_enabled() {
            let buckets = self
                .hist
                .get_or_insert_with(|| Box::new([0; crate::hist::BUCKETS]));
            buckets[crate::hist::bucket_of(ns)] += 1;
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, SpanAgg>> {
    static REG: Mutex<BTreeMap<String, SpanAgg>> = Mutex::new(BTreeMap::new());
    &REG
}

/// RAII guard returned by [`span`]; records on drop. Disabled guards hold
/// nothing — not even a start time — so a disabled span never reads the
/// clock.
pub struct SpanGuard {
    inner: Option<(Instant, String)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, path)) = self.inner.take() {
            let ns = start.elapsed().as_nanos() as u64;
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
            let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
            reg.entry(path)
                .or_insert(SpanAgg {
                    stat: SpanStat {
                        count: 0,
                        total_ns: 0,
                        min_ns: u64::MAX,
                        max_ns: 0,
                    },
                    hist: None,
                })
                .fold(ns);
        }
    }
}

/// Opens a span named `name` under the current thread's span path. When
/// instrumentation is disabled this is a relaxed load and a branch — the
/// guard does nothing on drop.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    enter(name)
}

#[cold]
fn enter(name: &'static str) -> SpanGuard {
    let path = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    SpanGuard {
        inner: Some((Instant::now(), path)),
    }
}

/// Runs `f` inside a span named `name`.
#[inline]
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _g = span(name);
    f()
}

/// A monotonic stopwatch that doubles as a span: always measures, records
/// into the span registry only when enabled. The benchmark binaries use
/// this so their JSON timings and the trace share one clock path.
pub struct Stopwatch {
    start: Instant,
    guard: SpanGuard,
}

impl Stopwatch {
    /// Starts timing under span `name`.
    pub fn start(name: &'static str) -> Stopwatch {
        let guard = span(name);
        Stopwatch {
            start: Instant::now(),
            guard,
        }
    }

    /// Elapsed seconds so far, without stopping.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stops the watch, closing the span, and returns elapsed seconds.
    pub fn stop(self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        drop(self.guard);
        secs
    }
}

/// Snapshot of all span aggregates, sorted by path (BTreeMap order).
pub fn span_snapshot() -> Vec<(String, SpanStat)> {
    registry()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.stat))
        .collect()
}

/// Per-path duration histograms, sorted by path — present only for paths
/// that completed at least one span while [`crate::hist_enabled`] was on.
/// The `sum` of each stat is the path's aggregate `total_ns` (the one
/// clock both layers share), so the derived mean matches the span report.
pub fn span_hist_snapshot() -> Vec<(String, crate::hist::HistStat)> {
    registry()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .filter_map(|(k, v)| {
            v.hist.as_ref().map(|h| {
                (
                    k.clone(),
                    crate::hist::HistStat::from_buckets(**h, v.stat.total_ns),
                )
            })
        })
        .collect()
}

/// Clears all span aggregates (run isolation in tests and benchmarks).
pub fn reset() {
    registry().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = testlock::hold();
        crate::set_enabled(false);
        reset();
        {
            let _s = span("never");
        }
        assert!(span_snapshot().is_empty());
    }

    #[test]
    fn nested_spans_aggregate_under_joined_paths() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
        }
        let snap = span_snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        let inner = &snap[1].1;
        assert_eq!(inner.count, 3);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(inner.total_ns >= inner.max_ns);
        let outer = &snap[0].1;
        assert_eq!(outer.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn worker_threads_get_fresh_stacks() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        {
            let _outer = span("main_phase");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span("worker");
                })
                .join()
                .unwrap();
            });
        }
        let paths: Vec<String> = span_snapshot().into_iter().map(|(p, _)| p).collect();
        // The worker span is NOT nested under main_phase — fresh stack.
        assert_eq!(paths, vec!["main_phase".to_string(), "worker".to_string()]);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn span_histograms_are_opt_in_per_path() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        crate::set_hist_enabled(false);
        reset();
        {
            let _s = span("ungated");
        }
        assert!(
            span_hist_snapshot().is_empty(),
            "no histograms without TCSL_TRACE_HIST"
        );
        crate::set_hist_enabled(true);
        for _ in 0..5 {
            let _s = span("gated");
        }
        let hists = span_hist_snapshot();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, "gated");
        assert_eq!(hists[0].1.count, 5);
        let stat = span_snapshot()
            .into_iter()
            .find(|(p, _)| p == "gated")
            .unwrap()
            .1;
        assert_eq!(hists[0].1.sum, stat.total_ns, "one clock for both layers");
        assert!(hists[0].1.quantile(0.5) <= hists[0].1.quantile(0.99));
        crate::set_hist_enabled(false);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn stopwatch_measures_even_when_disabled() {
        let _g = testlock::hold();
        crate::set_enabled(false);
        reset();
        let sw = Stopwatch::start("probe");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = sw.stop();
        assert!(secs >= 0.001, "stopwatch must measure while disabled");
        assert!(span_snapshot().is_empty());
    }

    #[test]
    fn timed_returns_value_and_records() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        let v = timed("calc", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(span_snapshot()[0].0, "calc");
        crate::set_enabled(false);
        reset();
    }
}

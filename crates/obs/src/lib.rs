#![warn(missing_docs)]

//! # tcsl-obs
//!
//! Zero-dependency observability for the TimeCSL workspace: hierarchical
//! [`spans`], registered atomic [`counters`] and gauges, deterministic
//! log2-bucketed [`hist`]ograms (the p50/p99 layer), and a structured
//! JSONL run [`trace`] — the instrumentation layer behind the demo's
//! "diagnose the model" promise and the perf work the ROADMAP calls for.
//!
//! Like the `rand`/`proptest`/`criterion` shims, this crate is vendored
//! offline: it depends on nothing outside `std`, so every other crate in
//! the workspace (including `tcsl-tensor` at the bottom of the stack) can
//! depend on it without cycles.
//!
//! ## Enablement and the disabled fast path
//!
//! All instrumentation is **off by default**. It turns on when the
//! `TCSL_TRACE` environment variable is `1`/`true` at first use, or
//! programmatically via [`set_enabled`] (tests, benchmarks). Every hot-path
//! entry point ([`counters::Counter::add`], [`spans::span`]) checks one
//! process-global relaxed atomic and returns immediately when disabled —
//! a load and a predicted branch, small enough that `bench_pretrain`
//! asserts the serial-leg overhead estimate stays under 1%.
//!
//! ## Determinism contract
//!
//! Counters follow the repo's bit-invariance discipline: call sites
//! accumulate locally (per call, per tile, per batch — see
//! [`counters::LocalCounter`]) and merge into process-global `u64` atomics.
//! Unsigned addition is associative and commutative, so as long as the
//! *work* is a function of the input alone (which the `TCSL_THREADS`
//! contracts of `parallel_map`/`parallel_chunks_mut` guarantee), aggregated
//! counter totals are bit-identical for any thread count or schedule.
//! Span *timings*, gauges, and the schedule-class counters (pool dispatch
//! and wake totals — see [`counters::sched_counter_snapshot`]) carry no
//! such guarantee — reports list them, but determinism tests must exclude
//! them.
//!
//! ## Run telemetry
//!
//! With tracing enabled, [`trace::emit`] appends one JSON object per line
//! to the sink — a file at `TCSL_TRACE_OUT` (default `RUN_trace.jsonl`),
//! or an in-memory buffer in tests — and [`trace::finish_run`] writes a
//! `RUN_trace.json` summary of all counters, gauges and span aggregates.
//! See EXPERIMENTS.md for the field reference.

pub mod alloc_track;
pub mod counters;
pub mod hist;
pub mod json;
pub mod spans;
pub mod trace;

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialized (read `TCSL_TRACE` on first query), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// 0 = uninitialized (read `TCSL_TRACE_HIST` on first query), 1 = off,
/// 2 = on.
static HIST_ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether instrumentation is currently enabled. The hot-path gate: one
/// relaxed load and a compare once initialized.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

/// Cold path of [`enabled`]: resolve the `TCSL_TRACE` environment variable
/// once and cache the result.
#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("TCSL_TRACE")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false);
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Like [`enabled`], but **never** initializes from the environment:
/// returns `false` while the state is still unresolved. The one legitimate
/// caller is [`alloc_track`] — reading `TCSL_TRACE` allocates a `String`,
/// which would recurse straight back into the allocator hook.
#[inline]
pub fn enabled_no_init() -> bool {
    ENABLED.load(Ordering::Relaxed) == 2
}

/// Programmatically enables or disables instrumentation, overriding the
/// `TCSL_TRACE` environment variable. Tests and benchmarks use this to run
/// traced and untraced legs in one process.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether per-span-path duration histograms are enabled (`TCSL_TRACE_HIST`
/// is `1`/`true`, or [`set_hist_enabled`] was called). An opt-in *on top
/// of* [`enabled`]: span aggregates always keep count/total/min/max, but
/// bucketing every span duration costs a little more per drop, so the
/// distribution layer is off unless asked for — keeping the disabled-mode
/// overhead budget (`bench_pretrain`'s <1% assertion) untouched.
#[inline]
pub fn hist_enabled() -> bool {
    match HIST_ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_hist_from_env(),
    }
}

#[cold]
fn init_hist_from_env() -> bool {
    let on = std::env::var("TCSL_TRACE_HIST")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false);
    HIST_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically enables or disables per-span-path duration histograms,
/// overriding `TCSL_TRACE_HIST`.
pub fn set_hist_enabled(on: bool) {
    HIST_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Measures the per-call cost of the *disabled* instrumentation gate: a
/// tight loop of [`counters::Counter::add`] on a probe counter with tracing
/// forced off, returning seconds per call. `bench_pretrain` multiplies this
/// by the number of instrumentation hits a traced run records to bound the
/// disabled-path overhead of its serial leg.
pub fn disabled_probe_secs_per_op(iters: u64) -> f64 {
    static PROBE: counters::Counter = counters::Counter::new("obs.probe");
    let was = enabled();
    set_enabled(false);
    let start = std::time::Instant::now();
    for i in 0..iters.max(1) {
        PROBE.add(std::hint::black_box(i & 1));
    }
    let secs = start.elapsed().as_secs_f64() / iters.max(1) as f64;
    set_enabled(was);
    secs
}

#[cfg(test)]
pub(crate) mod testlock {
    //! Instrumentation state is process-global, so tests that flip
    //! [`super::set_enabled`] or reset registries serialize on this lock.
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        let _g = testlock::hold();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn disabled_probe_reports_sub_microsecond_gate() {
        let _g = testlock::hold();
        let was = enabled();
        let per_op = disabled_probe_secs_per_op(100_000);
        assert!(per_op >= 0.0);
        assert!(
            per_op < 1e-6,
            "disabled gate costs {per_op:.2e}s/op — the fast path is broken"
        );
        assert_eq!(enabled(), was, "probe must restore the enabled state");
    }
}

//! Registered atomic counters and gauges.
//!
//! A [`Counter`] is a named, monotonically increasing `u64`; a [`Gauge`] is
//! a named last-write-wins `u64`. Both live as `static`s — the well-known
//! ones every layer of the stack increments are defined here (so they are
//! always present in reports, zero-valued when a run never touched them),
//! and other crates can declare their own, which register themselves on
//! first use.
//!
//! **Determinism.** Counter totals are sums of per-call-site contributions
//! merged into one `u64` atomic with relaxed `fetch_add`. Unsigned addition
//! is associative and commutative, so the total depends only on *what work
//! ran*, never on thread count or schedule — the same contract as the
//! fixed-order gradient reduction. Hot loops accumulate into a
//! [`LocalCounter`] (a plain per-thread `u64`) and merge once, so tracing a
//! parallel region costs one atomic per work item rather than per element.
//! Gauges are last-write-wins and carry **no** cross-thread determinism
//! guarantee; determinism tests compare counters only.
//!
//! **Schedule-class counters.** A few counters measure the *execution
//! schedule* itself rather than the work — how many pool dispatches ran,
//! how many parked workers were woken. Their totals are monotone and exact,
//! but they legitimately differ between `TCSL_THREADS=1` (serial fallback:
//! zero dispatches) and `TCSL_THREADS=7`, so they live in a separate
//! well-known set reported by [`sched_counter_snapshot`] and are *excluded*
//! from [`counter_snapshot`], which the thread-count-invariance tests
//! compare verbatim.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A named monotonically increasing counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    /// Number of `add` invocations (not units added): each call is exactly
    /// one enabled-gate check, so this is what a *disabled* run of the same
    /// work pays — the quantity `counter_hits_upper_bound` prices out.
    calls: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Declares a counter. Use as a `static`:
    /// `static HITS: Counter = Counter::new("cache.hit");`
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n` when instrumentation is enabled; a relaxed load and a
    /// branch otherwise.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if crate::enabled() {
            self.record(n);
        }
    }

    #[cold]
    fn record(&'static self, n: u64) {
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            let well_known = WELL_KNOWN
                .iter()
                .chain(WELL_KNOWN_SCHED)
                .any(|c| std::ptr::eq(*c, self));
            if !well_known {
                dynamic()
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(self);
            }
        }
    }
}

/// A named last-write-wins value (e.g. a configured thread count). Not
/// covered by the counter determinism contract.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// Declares a gauge. Use as a `static`.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Stores `v` when instrumentation is enabled.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if crate::enabled() {
            self.record(v);
        }
    }

    #[cold]
    fn record(&'static self, v: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            let well_known = WELL_KNOWN_GAUGES.iter().any(|g| std::ptr::eq(*g, self));
            if !well_known {
                dynamic_gauges()
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(self);
            }
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Gauge name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Per-thread accumulator for a hot loop: adds into a plain `u64` and
/// merges the sum into its [`Counter`] once on drop (or [`flush`]). One
/// atomic operation per region instead of per element, with the same
/// order-independent total.
///
/// [`flush`]: LocalCounter::flush
pub struct LocalCounter {
    target: &'static Counter,
    pending: u64,
}

impl LocalCounter {
    /// Starts accumulating for `target`.
    pub fn new(target: &'static Counter) -> LocalCounter {
        LocalCounter { target, pending: 0 }
    }

    /// Adds locally — no atomics until the merge.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.pending += n;
    }

    /// Merges the pending sum now (drop does the same).
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.target.add(self.pending);
            self.pending = 0;
        }
    }
}

impl Drop for LocalCounter {
    fn drop(&mut self) {
        self.flush();
    }
}

// --- Well-known instruments (always present in reports) -----------------

/// Fused-path `WindowCache` hit (same series value, scale, stride reused).
pub static WINDOW_CACHE_HIT: Counter = Counter::new("window_cache.hit");
/// Fused-path `WindowCache` miss (a fresh `ScaleWindows` was computed).
pub static WINDOW_CACHE_MISS: Counter = Counter::new("window_cache.miss");
/// Dot products dispatched to the runtime AVX2+FMA kernels. Counted in
/// batches by the callers' loops (`count_dot_dispatch`), never inside
/// `dot`/`dot4` themselves.
pub static DOT_DISPATCH_AVX2_FMA: Counter = Counter::new("dot.dispatch.avx2_fma");
/// Dot products that took the portable scalar kernel (same batch counting).
pub static DOT_DISPATCH_SCALAR: Counter = Counter::new("dot.dispatch.scalar");
/// Mixed-precision f16 dots dispatched to the AVX-512F kernel (16 taps
/// per `vcvtph2ps`, f32 accumulation in 512-bit lanes).
pub static DOT_DISPATCH_F16_AVX512: Counter = Counter::new("dot.dispatch.f16_avx512");
/// Mixed-precision f16 dots dispatched to the AVX2+F16C kernel (f16 taps
/// converted in-register, f32 accumulation).
pub static DOT_DISPATCH_F16C: Counter = Counter::new("dot.dispatch.f16c");
/// Mixed-precision f16 dots that took the portable scalar kernel.
pub static DOT_DISPATCH_F16_SCALAR: Counter = Counter::new("dot.dispatch.f16_scalar");
/// Mixed-precision i16 dots dispatched to the AVX-512F/BW kernel.
pub static DOT_DISPATCH_I16_AVX512: Counter = Counter::new("dot.dispatch.i16_avx512");
/// Mixed-precision i16 dots dispatched to the AVX2+FMA widening kernel.
pub static DOT_DISPATCH_I16_AVX2: Counter = Counter::new("dot.dispatch.i16_avx2");
/// Mixed-precision i16 dots that took the portable scalar kernel.
pub static DOT_DISPATCH_I16_SCALAR: Counter = Counter::new("dot.dispatch.i16_scalar");
/// Corpus tiles processed by the pairwise-distance engine
/// (`pairdist` + `knn`): one per (row-block, column-tile) pair.
pub static PAIRDIST_TILES: Counter = Counter::new("pairdist.tiles");
/// View pairs pushed through contrastive pre-training (train + validation).
pub static TRAINER_PAIRS: Counter = Counter::new("trainer.pairs");
/// Labeled examples pushed through fine-tuning.
pub static FINETUNE_EXAMPLES: Counter = Counter::new("finetune.examples");
/// Shapelet groups pooled by the fully fused streaming engine.
pub static SHAPELET_POOL_FUSED: Counter = Counter::new("shapelet.pool.fused");
/// Shapelet groups pooled by the blocked (tiled scratch) fallback engine.
pub static SHAPELET_POOL_BLOCKED: Counter = Counter::new("shapelet.pool.blocked");
/// Inverted-file cells scanned by IVF index queries (one per probed
/// non-empty cell per query row).
pub static IVF_CELLS_PROBED: Counter = Counter::new("ivf.cells_probed");
/// Candidate corpus rows scored by IVF probes (the shortlist size the
/// sublinear path actually paid for, vs. the full corpus an exact scan
/// would touch).
pub static IVF_CANDIDATES: Counter = Counter::new("ivf.candidates");

// Failed requests by error class — one well-known counter per variant of
// the workspace `TcslError` taxonomy (`tcsl-obs` stays dependency-free, so
// the mapping is by the class's snake name; see [`error_counter`]). The CLI
// bumps these before `finish_run`, so a failed run's summary still carries
// a valid, attributed error tally.

/// Failed requests: configuration / API misuse (`TcslError::Config`).
pub static ERROR_CONFIG: Counter = Counter::new("error.config");
/// Failed requests: filesystem I/O (`TcslError::Io`).
pub static ERROR_IO: Counter = Counter::new("error.io");
/// Failed requests: text parsing (`TcslError::Parse`).
pub static ERROR_PARSE: Counter = Counter::new("error.parse");
/// Failed requests: model-file structure (`TcslError::ModelFormat`).
pub static ERROR_MODEL_FORMAT: Counter = Counter::new("error.model_format");
/// Failed requests: dimension mismatches (`TcslError::ShapeMismatch`).
pub static ERROR_SHAPE_MISMATCH: Counter = Counter::new("error.shape_mismatch");
/// Failed requests: empty inputs (`TcslError::EmptyInput`).
pub static ERROR_EMPTY_INPUT: Counter = Counter::new("error.empty_input");
/// Failed requests: NaN/inf inputs (`TcslError::NonFiniteInput`).
pub static ERROR_NON_FINITE_INPUT: Counter = Counter::new("error.non_finite_input");
/// Failed requests: broken internal invariants (`TcslError::Internal`).
pub static ERROR_INTERNAL: Counter = Counter::new("error.internal");

/// Looks up the failed-request counter for an error class by its snake
/// name (`TcslError::class().name()`). Unknown names — a class added to
/// the taxonomy without a counter here — fall back to [`ERROR_INTERNAL`]
/// so no failure goes untallied.
pub fn error_counter(class_name: &str) -> &'static Counter {
    match class_name {
        "config" => &ERROR_CONFIG,
        "io" => &ERROR_IO,
        "parse" => &ERROR_PARSE,
        "model_format" => &ERROR_MODEL_FORMAT,
        "shape_mismatch" => &ERROR_SHAPE_MISMATCH,
        "empty_input" => &ERROR_EMPTY_INPUT,
        "non_finite_input" => &ERROR_NON_FINITE_INPUT,
        _ => &ERROR_INTERNAL,
    }
}

/// Workers resident in the persistent thread pool. Written only when the
/// pool grows (lazy init / a dispatch that needed more workers), **never**
/// from the serial fallback path — the old per-dispatch last-writer-wins
/// write made nested and concurrent sections report whichever call ran
/// last. Per-dispatch engagement is counted by [`POOL_WAKE`] instead.
pub static PARALLEL_THREADS: Gauge = Gauge::new("parallel.threads");

/// Pool dispatches: one per `parallel_map`/`parallel_chunks_mut` call that
/// actually engaged the persistent pool (serial fallbacks don't count).
/// Schedule-class: depends on `TCSL_THREADS`, reported via
/// [`sched_counter_snapshot`].
pub static POOL_DISPATCH: Counter = Counter::new("pool.dispatch");

/// Parked pool workers woken across all dispatches (the dispatching caller
/// participates on its own thread and is not counted here). Schedule-class:
/// depends on `TCSL_THREADS`, reported via [`sched_counter_snapshot`].
pub static POOL_WAKE: Counter = Counter::new("pool.wake");

static WELL_KNOWN: &[&Counter] = &[
    &WINDOW_CACHE_HIT,
    &WINDOW_CACHE_MISS,
    &DOT_DISPATCH_AVX2_FMA,
    &DOT_DISPATCH_SCALAR,
    &DOT_DISPATCH_F16_AVX512,
    &DOT_DISPATCH_F16C,
    &DOT_DISPATCH_F16_SCALAR,
    &DOT_DISPATCH_I16_AVX512,
    &DOT_DISPATCH_I16_AVX2,
    &DOT_DISPATCH_I16_SCALAR,
    &PAIRDIST_TILES,
    &TRAINER_PAIRS,
    &FINETUNE_EXAMPLES,
    &SHAPELET_POOL_FUSED,
    &SHAPELET_POOL_BLOCKED,
    &IVF_CELLS_PROBED,
    &IVF_CANDIDATES,
    &ERROR_CONFIG,
    &ERROR_IO,
    &ERROR_PARSE,
    &ERROR_MODEL_FORMAT,
    &ERROR_SHAPE_MISMATCH,
    &ERROR_EMPTY_INPUT,
    &ERROR_NON_FINITE_INPUT,
    &ERROR_INTERNAL,
];

static WELL_KNOWN_GAUGES: &[&Gauge] = &[&PARALLEL_THREADS];

/// Schedule-class counters: exact totals that measure the execution
/// schedule, not the work — excluded from [`counter_snapshot`] (and thus
/// from the thread-count-invariance comparisons), reported separately.
static WELL_KNOWN_SCHED: &[&Counter] = &[&POOL_DISPATCH, &POOL_WAKE];

fn dynamic() -> &'static Mutex<Vec<&'static Counter>> {
    static DYN: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
    &DYN
}

fn dynamic_gauges() -> &'static Mutex<Vec<&'static Gauge>> {
    static DYN: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
    &DYN
}

/// All counters `(name, value)`, sorted by name — a fixed-order merge of
/// the well-known set and any dynamically registered counters, so two runs
/// that did the same work produce byte-identical listings.
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> =
        WELL_KNOWN.iter().map(|c| (c.name, c.value())).collect();
    out.extend(
        dynamic()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|c| (c.name, c.value())),
    );
    out.sort_by_key(|&(name, _)| name);
    out
}

/// Schedule-class counters `(name, value)`, sorted by name. These are
/// deliberately **not** part of [`counter_snapshot`]: their totals depend
/// on `TCSL_THREADS` (a serial run never dispatches to the pool), so
/// including them would break the thread-count-invariance contract the
/// determinism tests pin.
pub fn sched_counter_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = WELL_KNOWN_SCHED
        .iter()
        .map(|c| (c.name, c.value()))
        .collect();
    out.sort_by_key(|&(name, _)| name);
    out
}

/// All gauges `(name, value)`, sorted by name.
pub fn gauge_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = WELL_KNOWN_GAUGES
        .iter()
        .map(|g| (g.name, g.value()))
        .collect();
    out.extend(
        dynamic_gauges()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|g| (g.name, g.value())),
    );
    out.sort_by_key(|&(name, _)| name);
    out
}

/// Total number of `add` invocations across every counter — each one is
/// exactly one enabled-gate check, so this (plus span counts) bounds what a
/// *disabled* run of the same work pays at counter sites. Used by
/// `bench_pretrain`'s disabled-overhead estimate. Hot paths batch with
/// `add(n)` or [`LocalCounter`], so this is far below the value totals.
pub fn counter_hits_upper_bound() -> u64 {
    let mut out: u64 = WELL_KNOWN
        .iter()
        .chain(WELL_KNOWN_SCHED)
        .map(|c| c.calls.load(Ordering::Relaxed))
        .sum();
    out += dynamic()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .map(|c| c.calls.load(Ordering::Relaxed))
        .sum::<u64>();
    out
}

/// Zeroes every registered counter and gauge (run isolation in tests and
/// benchmarks).
pub fn reset() {
    for c in WELL_KNOWN.iter().chain(WELL_KNOWN_SCHED) {
        c.value.store(0, Ordering::Relaxed);
        c.calls.store(0, Ordering::Relaxed);
    }
    for c in dynamic().lock().unwrap_or_else(|p| p.into_inner()).iter() {
        c.value.store(0, Ordering::Relaxed);
        c.calls.store(0, Ordering::Relaxed);
    }
    for g in WELL_KNOWN_GAUGES {
        g.value.store(0, Ordering::Relaxed);
    }
    for g in dynamic_gauges()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
    {
        g.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    static TEST_COUNTER: Counter = Counter::new("test.dynamic.counter");
    static TEST_GAUGE: Gauge = Gauge::new("test.dynamic.gauge");

    #[test]
    fn disabled_counters_do_not_move() {
        let _g = testlock::hold();
        crate::set_enabled(false);
        let before = TEST_COUNTER.value();
        TEST_COUNTER.add(5);
        assert_eq!(TEST_COUNTER.value(), before);
    }

    #[test]
    fn enabled_counters_accumulate_and_register() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        TEST_COUNTER.add(2);
        TEST_COUNTER.add(3);
        assert_eq!(TEST_COUNTER.value(), 5);
        let snap = counter_snapshot();
        assert!(snap.contains(&("test.dynamic.counter", 5)));
        // Well-known counters are present even when untouched.
        assert!(snap.iter().any(|&(n, _)| n == "pairdist.tiles"));
        // Sorted by name: a fixed-order, deterministic listing.
        let names: Vec<_> = snap.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn hits_bound_counts_gate_checks_not_units() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        // A batched add is ONE gate check however many units it carries —
        // the disabled-overhead estimate must price calls, not values.
        TEST_COUNTER.add(1000);
        TEST_COUNTER.add(1);
        assert_eq!(TEST_COUNTER.value(), 1001);
        assert_eq!(counter_hits_upper_bound(), 2);
        crate::set_enabled(false);
        reset();
        assert_eq!(counter_hits_upper_bound(), 0);
    }

    #[test]
    fn local_counter_merges_once() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        {
            let mut local = LocalCounter::new(&TEST_COUNTER);
            for _ in 0..10 {
                local.add(3);
            }
        } // drop merges
        assert_eq!(TEST_COUNTER.value(), 30);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn local_counter_totals_are_schedule_independent() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        // 8 "workers" merging local sums concurrently: the total is exactly
        // the sum of contributions, whatever the interleaving.
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = LocalCounter::new(&TEST_COUNTER);
                    for _ in 0..1000 {
                        local.add(1);
                    }
                });
            }
        });
        assert_eq!(TEST_COUNTER.value(), 8000);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn sched_counters_stay_out_of_the_deterministic_snapshot() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        POOL_DISPATCH.add(3);
        POOL_WAKE.add(12);
        // Reported in their own snapshot...
        let sched = sched_counter_snapshot();
        assert!(sched.contains(&("pool.dispatch", 3)));
        assert!(sched.contains(&("pool.wake", 12)));
        // ...and absent from the deterministic one (the invariance tests
        // compare that snapshot verbatim across thread counts).
        let snap = counter_snapshot();
        assert!(snap.iter().all(|&(n, _)| !n.starts_with("pool.")));
        // Registered as well-known: they must not leak into the dynamic
        // registry (which counter_snapshot includes).
        reset();
        assert_eq!(
            sched_counter_snapshot(),
            vec![("pool.dispatch", 0), ("pool.wake", 0)]
        );
        // Disabled-overhead pricing still counts their gate checks.
        POOL_DISPATCH.add(1);
        assert_eq!(counter_hits_upper_bound(), 1);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn error_counters_resolve_by_class_name() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        // Every taxonomy class maps to its own well-known counter...
        error_counter("parse").add(1);
        error_counter("io").add(2);
        assert_eq!(ERROR_PARSE.value(), 1);
        assert_eq!(ERROR_IO.value(), 2);
        // ...and an unknown class lands on `internal`, never dropped.
        error_counter("not_a_class").add(1);
        assert_eq!(ERROR_INTERNAL.value(), 1);
        // Present (zero-valued when untouched) in the deterministic snapshot.
        let snap = counter_snapshot();
        for name in [
            "error.config",
            "error.io",
            "error.parse",
            "error.model_format",
            "error.shape_mismatch",
            "error.empty_input",
            "error.non_finite_input",
            "error.internal",
        ] {
            assert!(snap.iter().any(|&(n, _)| n == name), "missing {name}");
        }
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn gauges_last_write_wins_and_reset() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        TEST_GAUGE.set(7);
        TEST_GAUGE.set(9);
        assert_eq!(TEST_GAUGE.value(), 9);
        assert!(gauge_snapshot().contains(&("test.dynamic.gauge", 9)));
        reset();
        assert_eq!(TEST_GAUGE.value(), 0);
        crate::set_enabled(false);
    }
}

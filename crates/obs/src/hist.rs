//! Deterministic log2-bucketed histograms — the distribution layer behind
//! latency/size reporting (`p50`/`p99` columns in run summaries and the
//! `timecsl trace` report).
//!
//! A [`Histogram`] is a named, fixed-layout 64-bucket distribution over
//! `u64` values (nanoseconds, bytes, counts). Bucket `0` holds zeros and
//! bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)` (the last bucket is
//! open-ended), so **bucket assignment is a pure function of the recorded
//! value** — no run-dependent boundaries, no reservoir sampling. Buckets
//! are relaxed-atomic `u64`s merged exactly like counters: unsigned
//! addition commutes, so bucket totals depend only on *what values were
//! recorded*, never on thread count or schedule.
//!
//! **Determinism classes.** The same split as counters applies one level
//! up: a histogram of *input-determined values* (pairs per batch,
//! candidates per IVF query) has bit-identical bucket counts for any
//! `TCSL_THREADS` and belongs to the deterministic set ([`hist_snapshot`],
//! compared verbatim by the trace-determinism tests). A histogram of
//! *wall-clock or host-shaped values* (latencies, allocation sizes —
//! per-thread scratch makes even byte distributions schedule-dependent) is
//! exact but not invariant, and lives in the host set
//! ([`host_hist_snapshot`]), reported separately — the analogue of
//! span timings and `sched_counters`.
//!
//! Hot loops batch through a [`LocalHistogram`] (plain per-thread bucket
//! array, one atomic merge per region) mirroring
//! [`crate::counters::LocalCounter`]. Derived quantiles
//! ([`HistStat::quantile`]) use deterministic linear interpolation inside
//! the hit bucket, so two runs with identical buckets report bit-identical
//! percentiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of buckets: one zero bucket plus one per power of two.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: `0` for zero, else `64 - leading_zeros`
/// clamped to the last bucket — i.e. `⌊log2 v⌋ + 1`. Pure in `v`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i` (the last bucket is open-ended and
/// reports `u64::MAX`).
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        i if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A named log2-bucketed distribution. Declare as a `static`; the
/// well-known instances every layer records into are defined in this
/// module so they are always present in reports (zero-valued when a run
/// never touched them). There is deliberately no dynamic registry:
/// [`ALLOC_SIZE_BYTES`] is recorded from inside the global allocator,
/// where registration must never allocate.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    /// Sum of recorded values (deterministic for the same reasons the
    /// buckets are).
    sum: AtomicU64,
    /// Number of `record`/`flush` invocations — one enabled-gate check
    /// each, the quantity the disabled-overhead estimate prices.
    calls: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    /// Declares a histogram. Use as a `static`.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        }
    }

    /// Histogram name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one value when instrumentation is enabled; a relaxed load
    /// and a branch otherwise.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if crate::enabled() {
            self.record_slow(v);
        }
    }

    #[cold]
    fn record_slow(&'static self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a timer that records elapsed nanoseconds into this histogram
    /// on drop. Reads the clock only when instrumentation is enabled — a
    /// disabled timer is a no-op holding nothing.
    #[inline]
    pub fn start_timer(&'static self) -> HistTimer {
        HistTimer {
            inner: crate::enabled().then(|| (Instant::now(), self)),
        }
    }

    /// Current snapshot of this histogram.
    pub fn stat(&'static self) -> HistStat {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
            count += *slot;
        }
        HistStat {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    fn reset(&'static self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
    }
}

/// RAII latency probe returned by [`Histogram::start_timer`].
pub struct HistTimer {
    inner: Option<(Instant, &'static Histogram)>,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.inner.take() {
            hist.record_slow(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Per-thread accumulator for a hot loop: buckets values locally and
/// merges into its [`Histogram`] once on drop (or [`flush`]), costing one
/// batch of atomics per region instead of per element — same
/// order-independent totals.
///
/// [`flush`]: LocalHistogram::flush
pub struct LocalHistogram {
    target: &'static Histogram,
    pending: [u64; BUCKETS],
    pending_sum: u64,
    pending_calls: u64,
}

impl LocalHistogram {
    /// Starts accumulating for `target`.
    pub fn new(target: &'static Histogram) -> LocalHistogram {
        LocalHistogram {
            target,
            pending: [0; BUCKETS],
            pending_sum: 0,
            pending_calls: 0,
        }
    }

    /// Records locally — no atomics until the merge.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.pending[bucket_of(v)] += 1;
        self.pending_sum = self.pending_sum.wrapping_add(v);
        self.pending_calls += 1;
    }

    /// Merges pending buckets now (drop does the same). One gate check for
    /// the whole batch, like [`crate::counters::LocalCounter`].
    pub fn flush(&mut self) {
        if self.pending_calls == 0 {
            return;
        }
        if crate::enabled() {
            for (slot, n) in self.target.buckets.iter().zip(self.pending) {
                if n > 0 {
                    slot.fetch_add(n, Ordering::Relaxed);
                }
            }
            self.target
                .sum
                .fetch_add(self.pending_sum, Ordering::Relaxed);
            self.target.calls.fetch_add(1, Ordering::Relaxed);
        }
        self.pending = [0; BUCKETS];
        self.pending_sum = 0;
        self.pending_calls = 0;
    }
}

impl Drop for LocalHistogram {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Snapshot of one histogram: the full bucket array plus derived totals.
/// Merging ([`HistStat::merge`]) is element-wise unsigned addition —
/// associative and commutative, pinned by proptests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistStat {
    /// Count per bucket (see [`bucket_lo`]/[`bucket_hi`] for ranges).
    pub buckets: [u64; BUCKETS],
    /// Total recorded values (sum of all buckets).
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistStat {
    /// The all-zero histogram (merge identity).
    pub fn empty() -> HistStat {
        HistStat {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Builds a snapshot from a raw bucket array plus a known value sum
    /// (the span registry stores exactly that).
    pub fn from_buckets(buckets: [u64; BUCKETS], sum: u64) -> HistStat {
        HistStat {
            buckets,
            count: buckets.iter().sum(),
            sum,
        }
    }

    /// Element-wise merge of another snapshot into this one.
    pub fn merge(&mut self, other: &HistStat) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated by deterministic linear
    /// interpolation inside the bucket where the cumulative count crosses
    /// `q · count`. Pure in the bucket array: two runs with identical
    /// buckets report bit-identical percentiles, and the estimate is
    /// monotone in `q` (p50 ≤ p90 ≤ p99, pinned by proptests). Returns
    /// `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        let last = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return 0.0,
        };
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= rank || i == last {
                let lo = bucket_lo(i) as f64;
                // The open-ended last bucket interpolates over one octave
                // like its neighbours would, rather than to u64::MAX.
                let hi = if i >= BUCKETS - 1 {
                    bucket_lo(i) as f64 * 2.0
                } else {
                    bucket_hi(i) as f64
                };
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
            cum = next;
        }
        0.0
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// --- Well-known instruments ---------------------------------------------

// Deterministic set: recorded values are functions of the input alone, so
// bucket counts are bit-identical for any `TCSL_THREADS` (compared
// verbatim by `trace_determinism`).

/// View pairs per pre-training batch (batch-size distribution — the
/// trailing-batch fold and grain fan-out shape it).
pub static TRAINER_BATCH_PAIRS: Histogram = Histogram::new("trainer.batch_pairs");
/// Candidate corpus rows scanned per IVF query (the per-request shortlist
/// size the sublinear path pays — the companion distribution to the
/// `ivf.candidates` total).
pub static IVF_QUERY_CANDIDATES: Histogram = Histogram::new("ivf.query_candidates");

// Host set: wall-clock latencies and allocation sizes — exact, but
// schedule/host-shaped, so excluded from the determinism comparison like
// span timings and `sched_counters`.

/// Per-series fused-transform latency, nanoseconds (the serving-path unit
/// of work: one series in, one feature row out).
pub static TRANSFORM_SERIES_NS: Histogram = Histogram::new("transform.series_ns");
/// Per-tile pairwise-distance kernel time, nanoseconds (one (row-block,
/// corpus-tile) pair).
pub static PAIRDIST_TILE_NS: Histogram = Histogram::new("pairdist.tile_ns");
/// Per-query IVF latency, nanoseconds (centroid ranking + cell scans +
/// final sort for one query row).
pub static IVF_QUERY_NS: Histogram = Histogram::new("ivf.query_ns");
/// Time a `parallel_*` dispatch waited for the pool's job slot before its
/// work could start, nanoseconds. Schedule-class by construction, like the
/// `pool.*` counters.
pub static POOL_DISPATCH_WAIT_NS: Histogram = Histogram::new("pool.dispatch_wait_ns");
/// Per-batch pre-training step latency, nanoseconds (sampling, fan-out,
/// reduction and the optimizer step).
pub static TRAINER_BATCH_NS: Histogram = Histogram::new("trainer.batch_ns");
/// Allocation-size distribution, bytes, recorded by
/// [`crate::alloc_track::CountingAlloc`] in binaries that install it.
pub static ALLOC_SIZE_BYTES: Histogram = Histogram::new("alloc.size_bytes");

/// Records into [`ALLOC_SIZE_BYTES`] without consulting the enablement
/// gate. The only caller is [`crate::alloc_track::CountingAlloc::alloc`],
/// which has already checked [`crate::enabled_no_init`] — calling the
/// normal gate from inside the allocator could trigger the allocating
/// `TCSL_TRACE` env read and recurse. The body is pure atomics.
pub(crate) fn record_alloc_size_unchecked(v: u64) {
    ALLOC_SIZE_BYTES.record_slow(v);
}

static WELL_KNOWN_DET: &[&Histogram] = &[&TRAINER_BATCH_PAIRS, &IVF_QUERY_CANDIDATES];

static WELL_KNOWN_HOST: &[&Histogram] = &[
    &TRANSFORM_SERIES_NS,
    &PAIRDIST_TILE_NS,
    &IVF_QUERY_NS,
    &POOL_DISPATCH_WAIT_NS,
    &TRAINER_BATCH_NS,
    &ALLOC_SIZE_BYTES,
];

fn snapshot_of(set: &[&'static Histogram]) -> Vec<(&'static str, HistStat)> {
    let mut out: Vec<(&'static str, HistStat)> = set.iter().map(|h| (h.name, h.stat())).collect();
    out.sort_by_key(|&(name, _)| name);
    out
}

/// Deterministic histograms `(name, stat)`, sorted by name — the set whose
/// bucket counts are bit-identical across `TCSL_THREADS`, compared
/// verbatim by the trace-determinism tests.
pub fn hist_snapshot() -> Vec<(&'static str, HistStat)> {
    snapshot_of(WELL_KNOWN_DET)
}

/// Host-shaped histograms `(name, stat)`, sorted by name: latency and
/// allocation distributions — exact but wall-clock/schedule-dependent,
/// reported separately (the histogram analogue of `sched_counters`).
pub fn host_hist_snapshot() -> Vec<(&'static str, HistStat)> {
    snapshot_of(WELL_KNOWN_HOST)
}

/// Total `record`/`flush` invocations across every histogram — each is one
/// enabled-gate check, priced by `bench_pretrain`'s disabled-overhead
/// bound alongside counter and span hits.
pub fn hist_hits_upper_bound() -> u64 {
    WELL_KNOWN_DET
        .iter()
        .chain(WELL_KNOWN_HOST)
        .map(|h| h.calls.load(Ordering::Relaxed))
        .sum()
}

/// Zeroes every histogram (run isolation in tests and benchmarks).
pub fn reset() {
    for h in WELL_KNOWN_DET.iter().chain(WELL_KNOWN_HOST) {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    static TEST_HIST: Histogram = Histogram::new("test.hist");

    #[test]
    fn bucket_layout_is_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value sits inside its bucket's [lo, hi] range.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_lo(b) <= v && v <= bucket_hi(b), "v={v} bucket={b}");
        }
        // Buckets tile the line: hi(i) + 1 == lo(i + 1).
        for i in 0..BUCKETS - 2 {
            assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1));
        }
    }

    #[test]
    fn disabled_histograms_do_not_move() {
        let _g = testlock::hold();
        crate::set_enabled(false);
        let before = TEST_HIST.stat();
        TEST_HIST.record(42);
        let t = TEST_HIST.start_timer();
        drop(t);
        assert_eq!(TEST_HIST.stat(), before);
    }

    #[test]
    fn record_accumulates_and_snapshots() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        TEST_HIST.reset();
        TEST_HIST.record(0);
        TEST_HIST.record(5);
        TEST_HIST.record(5);
        TEST_HIST.record(1000);
        let s = TEST_HIST.stat();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[bucket_of(5)], 2);
        assert_eq!(s.buckets[bucket_of(1000)], 1);
        crate::set_enabled(false);
        TEST_HIST.reset();
    }

    #[test]
    fn local_histogram_merges_once_and_counts_one_call() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        TEST_HIST.reset();
        {
            let mut local = LocalHistogram::new(&TEST_HIST);
            for v in 0..100u64 {
                local.record(v);
            }
        } // drop merges
        let s = TEST_HIST.stat();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 4950);
        assert_eq!(TEST_HIST.calls.load(Ordering::Relaxed), 1);
        crate::set_enabled(false);
        TEST_HIST.reset();
    }

    #[test]
    fn timer_records_elapsed_ns_when_enabled() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        TEST_HIST.reset();
        {
            let _t = TEST_HIST.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = TEST_HIST.stat();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 1_000_000, "timer recorded {} ns", s.sum);
        crate::set_enabled(false);
        TEST_HIST.reset();
    }

    #[test]
    fn quantiles_interpolate_and_stay_ordered() {
        let mut s = HistStat::empty();
        assert_eq!(s.quantile(0.5), 0.0);
        // 100 values in bucket 7 ([64, 127]).
        s.buckets[7] = 100;
        s.count = 100;
        s.sum = 100 * 90;
        let p50 = s.quantile(0.5);
        let p90 = s.quantile(0.9);
        let p99 = s.quantile(0.99);
        assert!((64.0..=127.0).contains(&p50));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((s.mean() - 90.0).abs() < 1e-9);
        // All mass in one bucket: q=0 pins lo, q=1 pins hi.
        assert_eq!(s.quantile(0.0), 64.0);
        assert_eq!(s.quantile(1.0), 127.0);
    }

    #[test]
    fn well_known_sets_are_disjoint_and_sorted() {
        let _g = testlock::hold();
        crate::set_enabled(false);
        let det = hist_snapshot();
        let host = host_hist_snapshot();
        for (n, _) in &det {
            assert!(!host.iter().any(|(h, _)| h == n), "{n} in both sets");
        }
        for snap in [&det, &host] {
            let names: Vec<_> = snap.iter().map(|&(n, _)| n).collect();
            let mut sorted = names.clone();
            sorted.sort();
            assert_eq!(names, sorted);
        }
        assert!(det.iter().any(|&(n, _)| n == "trainer.batch_pairs"));
        assert!(host.iter().any(|&(n, _)| n == "transform.series_ns"));
        assert!(host.iter().any(|&(n, _)| n == "alloc.size_bytes"));
    }

    #[test]
    fn hits_bound_prices_calls_not_values() {
        let _g = testlock::hold();
        crate::set_enabled(true);
        reset();
        TRAINER_BATCH_PAIRS.record(10);
        TRAINER_BATCH_PAIRS.record(20);
        let mut local = LocalHistogram::new(&IVF_QUERY_CANDIDATES);
        for _ in 0..50 {
            local.record(3);
        }
        local.flush();
        // Two direct records + one batched flush = 3 gate checks.
        assert_eq!(hist_hits_upper_bound(), 3);
        crate::set_enabled(false);
        reset();
        assert_eq!(hist_hits_upper_bound(), 0);
    }
}

//! Minimal JSON writer *and reader* for the trace pipeline — no external
//! deps.
//!
//! The writer side is deterministic (fields serialize in insertion order,
//! floats via Rust's shortest round-trip formatting, non-finite floats as
//! strings so the stream stays valid JSON). The reader ([`parse`]) is a
//! recursive-descent parser sized for the artifacts this repo emits
//! (`RUN_trace.json` summaries, `BENCH_*.json` reports): it preserves
//! object key order, reports errors with line/column positions, and caps
//! nesting depth so hostile inputs (`tests/hostile_inputs.rs` feeds it
//! truncated and bit-flipped files) fail with a typed error instead of
//! exhausting the stack.

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as a JSON number, or as the strings `"NaN"` /
/// `"inf"` / `"-inf"` when non-finite (raw NaN would corrupt the stream).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
        // `{}` on a finite whole f64 prints no ".0"; keep it a JSON number
        // either way (5 and 5.0 are the same JSON number).
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Maximum container nesting [`parse`] accepts. The deepest artifact this
/// repo writes is four levels (`summary → spans → path → hist → buckets`);
/// 64 leaves headroom without letting a hostile file recurse unboundedly.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects keep their key order as written.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included — JSON has one number type).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in key order as written (duplicate keys: last one wins on
    /// [`JsonValue::get`], both retained in the vec).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and where (1-based line/column).
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What the parser expected or rejected.
    pub msg: String,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at line {}, column {}", self.msg, self.line, self.col)
    }
}

/// Parses one JSON document. Trailing non-whitespace, unterminated
/// containers, bad escapes and over-deep nesting are all errors — never
/// panics, whatever the input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        let (mut line, mut col) = (1, 1);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            msg: msg.into(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Unpaired surrogates map to the replacement
                            // char; the repo's own writer never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the byte
                    // stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err(format!("bad number '{text}'")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(f: impl FnOnce(&mut String)) -> String {
        let mut out = String::new();
        f(&mut out);
        out
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(s(|o| write_str(o, "plain")), "\"plain\"");
        assert_eq!(s(|o| write_str(o, "a\"b\\c\nd")), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(s(|o| write_str(o, "\u{1}")), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_non_finite_become_strings() {
        assert_eq!(s(|o| write_f64(o, 1.5)), "1.5");
        assert_eq!(s(|o| write_f64(o, -0.25)), "-0.25");
        assert_eq!(s(|o| write_f64(o, f64::NAN)), "\"NaN\"");
        assert_eq!(s(|o| write_f64(o, f64::INFINITY)), "\"inf\"");
        assert_eq!(s(|o| write_f64(o, f64::NEG_INFINITY)), "\"-inf\"");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut doc = String::from("{\"run\":");
        write_str(&mut doc, "pre\"train\n");
        doc.push_str(",\"secs\":");
        write_f64(&mut doc, 1.25);
        doc.push_str(",\"n\":42,\"neg\":-3,\"ok\":true,\"none\":null,\"xs\":[1,2.5,\"three\"]}");
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("run").and_then(JsonValue::as_str),
            Some("pre\"train\n")
        );
        assert_eq!(v.get("secs").and_then(JsonValue::as_f64), Some(1.25));
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("neg").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("neg").and_then(JsonValue::as_f64), Some(-3.0));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let xs = v.get("xs").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].as_str(), Some("three"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn objects_preserve_key_order() {
        let v = parse("{\"z\":1,\"a\":2,\"m\":3}").unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn hostile_inputs_error_with_positions_never_panic() {
        for (input, needle) in [
            ("", "unexpected end"),
            ("{\"a\":1", "expected ',' or '}'"),
            ("{\"a\" 1}", "expected ':'"),
            ("[1,2", "expected ',' or ']'"),
            ("\"unterminated", "unterminated string"),
            ("{\"a\":tru}", "expected 'true'"),
            ("nul", "expected 'null'"),
            ("{\"a\":1}x", "trailing data"),
            ("{\"a\":1e999}", "bad number"),
            ("\"bad \\q escape\"", "bad escape"),
            ("\"\\uZZZZ\"", "bad \\u escape"),
            ("\u{1}", "unexpected byte"),
        ] {
            let e = parse(input).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "input {input:?}: got {e}, wanted {needle:?}"
            );
        }
        // Error positions are 1-based line/column.
        let e = parse("{\n  \"a\": }").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8), "{e}");
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = parse(&deep).unwrap_err();
        assert!(e.msg.contains("nesting deeper"), "{e}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins_on_get() {
        let v = parse("{\"k\":1,\"k\":2}").unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(v.as_obj().unwrap().len(), 2, "both occurrences retained");
    }
}

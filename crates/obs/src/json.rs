//! Minimal JSON writer for the trace sink — no external deps, output is
//! deterministic (fields serialize in insertion order, floats via Rust's
//! shortest round-trip formatting, non-finite floats as strings so the
//! stream stays valid JSON).

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as a JSON number, or as the strings `"NaN"` /
/// `"inf"` / `"-inf"` when non-finite (raw NaN would corrupt the stream).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
        // `{}` on a finite whole f64 prints no ".0"; keep it a JSON number
        // either way (5 and 5.0 are the same JSON number).
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(f: impl FnOnce(&mut String)) -> String {
        let mut out = String::new();
        f(&mut out);
        out
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(s(|o| write_str(o, "plain")), "\"plain\"");
        assert_eq!(s(|o| write_str(o, "a\"b\\c\nd")), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(s(|o| write_str(o, "\u{1}")), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_non_finite_become_strings() {
        assert_eq!(s(|o| write_f64(o, 1.5)), "1.5");
        assert_eq!(s(|o| write_f64(o, -0.25)), "-0.25");
        assert_eq!(s(|o| write_f64(o, f64::NAN)), "\"NaN\"");
        assert_eq!(s(|o| write_f64(o, f64::INFINITY)), "\"inf\"");
        assert_eq!(s(|o| write_f64(o, f64::NEG_INFINITY)), "\"-inf\"");
    }
}

//! Allocation tracking shared by the benchmark binaries and the trainer's
//! run telemetry.
//!
//! [`CountingAlloc`] wraps the system allocator and tracks live bytes, the
//! high-water mark and total bytes ever requested, so benchmarks can report
//! the fused kernels' peak-allocation contract (no term proportional to
//! `N_w × D·len`, in inference *or* training) and the trainer can report
//! per-epoch peak allocation in its trace events.
//!
//! Each binary that wants the numbers declares its own global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tcsl_obs::alloc_track::CountingAlloc =
//!     tcsl_obs::alloc_track::CountingAlloc;
//! ```
//!
//! (The `#[global_allocator]` attribute must live in the binary — a library
//! cannot impose an allocator on every consumer.) Without it, the counters
//! simply stay at zero and [`alloc_profile`] reports zeros.
//!
//! This module lives in `tcsl-obs` (the bottom of the dependency stack) so
//! `tcsl-core` can read the counters without depending on `tcsl-bench`;
//! `tcsl_bench::alloc_track` re-exports it for the existing call sites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Allocation-counting wrapper around the system allocator.
pub struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOTAL: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
            TOTAL.fetch_add(layout.size(), Ordering::Relaxed);
            // Size-distribution histogram. Gated on `enabled_no_init`, not
            // `enabled`: first-use init reads `TCSL_TRACE`, which allocates
            // a `String` and would recurse straight back in here. Until
            // some non-allocator call site resolves the gate, sizes are
            // simply not recorded — matching the "counters stay zero
            // without opt-in" contract of this module.
            if crate::enabled_no_init() {
                crate::hist::record_alloc_size_unchecked(layout.size() as u64);
            }
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Bytes currently live (zero unless the running binary installed
/// [`CountingAlloc`] as its global allocator).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live bytes since the last [`reset_counters`].
///
/// Read-only: safe to call from inside a profiled region (e.g. the
/// trainer's per-epoch telemetry) without clobbering an enclosing
/// [`alloc_profile`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak/total counters to the current live level.
pub fn reset_counters() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    TOTAL.store(0, Ordering::Relaxed);
}

/// Allocation profile of one profiled call — see [`alloc_profile`].
#[derive(Clone, Copy, Debug)]
pub struct AllocStats {
    /// High-water mark of bytes allocated *on top of* the pre-existing
    /// live set, over one call.
    pub peak_extra: usize,
    /// Total bytes requested over one call.
    pub total: usize,
}

impl AllocStats {
    /// `peak_extra` in MiB.
    pub fn peak_extra_mb(&self) -> f64 {
        self.peak_extra as f64 / (1024.0 * 1024.0)
    }

    /// `total` in MiB.
    pub fn total_mb(&self) -> f64 {
        self.total as f64 / (1024.0 * 1024.0)
    }
}

/// Allocation profile of a single invocation of `f`.
///
/// Threads spawned by `f` share the global counters, so the profile of a
/// parallel region is the whole process's allocation behaviour — exactly
/// what a peak-memory contract is about.
pub fn alloc_profile<T, F: FnMut() -> T>(mut f: F) -> (T, AllocStats) {
    let before_live = LIVE.load(Ordering::Relaxed);
    reset_counters();
    let out = f();
    let stats = AllocStats {
        peak_extra: PEAK.load(Ordering::Relaxed).saturating_sub(before_live),
        total: TOTAL.load(Ordering::Relaxed),
    };
    (out, stats)
}

//! Property tests for the deterministic histogram core (DESIGN.md,
//! "Observability": bucket totals must be a pure function of the recorded
//! multiset — independent of merge order, batching, and thread count).

use proptest::prelude::*;
use tcsl_obs::hist::{bucket_hi, bucket_lo, bucket_of, HistStat, Histogram, LocalHistogram};

/// Builds a `HistStat` from raw values the same way the atomics do.
fn stat_of(values: &[u64]) -> HistStat {
    let mut buckets = [0u64; tcsl_obs::hist::BUCKETS];
    let mut sum = 0u64;
    for &v in values {
        buckets[bucket_of(v)] += 1;
        sum = sum.wrapping_add(v);
    }
    HistStat::from_buckets(buckets, sum)
}

/// Values spanning every octave class: zeros, small ints, and wide-range
/// magnitudes built from a (mantissa, shift) pair so high buckets are hit.
fn value() -> impl Strategy<Value = u64> {
    (0u64..1024, 0u32..54).prop_map(|(m, s)| m << (s % 54))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative_and_associative(
        xs in collection::vec(value(), 0..40),
        ys in collection::vec(value(), 0..40),
        zs in collection::vec(value(), 0..40),
    ) {
        let (a, b, c) = (stat_of(&xs), stat_of(&ys), stat_of(&zs));

        // a + b == b + a
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);

        // (a + b) + c == a + (b + c)
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);

        // Merging matches recording the concatenated multiset directly.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        prop_assert_eq!(ab_c, stat_of(&all));
    }

    #[test]
    fn bucket_totals_are_thread_count_invariant(
        values in collection::vec(value(), 1..200),
    ) {
        // The same multiset recorded serially and split across 7 scoped
        // threads (the CI determinism leg's TCSL_THREADS value) must land
        // bit-identical bucket totals: integer atomic adds commute exactly.
        static SERIAL: Histogram = Histogram::new("prop.serial");
        static THREADED: Histogram = Histogram::new("prop.threaded");
        tcsl_obs::set_enabled(true);

        for &v in &values {
            SERIAL.record(v);
        }
        let chunk = values.len().div_ceil(7);
        std::thread::scope(|s| {
            for part in values.chunks(chunk) {
                s.spawn(move || {
                    let mut local = LocalHistogram::new(&THREADED);
                    for &v in part {
                        local.record(v);
                    }
                    // Drop flushes the remainder batch.
                });
            }
        });

        // Both sides accumulate the same multiset every case, so the
        // cumulative stats stay equal without any global reset.
        prop_assert_eq!(SERIAL.stat(), THREADED.stat());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in collection::vec(value(), 1..120),
    ) {
        let st = stat_of(&values);
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut prev = f64::NEG_INFINITY;
        for q in qs {
            let v = st.quantile(q);
            prop_assert!(v.is_finite(), "q{q} not finite");
            prop_assert!(v >= prev, "quantile not monotone at q{q}: {v} < {prev}");
            prev = v;
        }

        // Every quantile lies within the populated bucket range (the open
        // last bucket interpolates at most one octave past its floor).
        let lo_bucket = (0..tcsl_obs::hist::BUCKETS)
            .find(|&i| st.buckets[i] > 0)
            .unwrap();
        let hi_bucket = (0..tcsl_obs::hist::BUCKETS)
            .rfind(|&i| st.buckets[i] > 0)
            .unwrap();
        let lo = bucket_lo(lo_bucket) as f64;
        let hi = bucket_hi(hi_bucket) as f64;
        prop_assert!(st.quantile(0.0) >= lo);
        prop_assert!(st.quantile(1.0) <= hi);
        prop_assert!(st.mean() >= 0.0);
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this API-compatible subset instead: the [`Rng`] trait with `gen` /
//! `gen_range`, the [`SeedableRng`] trait, and a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64). Streams are
//! deterministic per seed but are **not** bit-compatible with upstream
//! `rand` — nothing in the workspace depends on upstream streams, only on
//! same-seed reproducibility (see `tcsl-tensor`'s determinism tests).

/// A source of uniformly random 64-bit words plus the derived sampling
/// methods the workspace uses.
pub trait Rng {
    /// The next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a primitive type (`Standard`
    /// distribution in upstream terms: floats in `[0, 1)`, integers over
    /// their full range, fair bools).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self.next_u64())
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    /// Panics on an empty range, like upstream.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        (self.gen::<f64>()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a fresh RNG word — the upstream `Standard`
/// distribution, folded into a trait.
pub trait Standard: Sized {
    /// Builds a sample from one uniformly random 64-bit word.
    fn from_rng(word: u64) -> Self;
}

impl Standard for u64 {
    fn from_rng(word: u64) -> Self {
        word
    }
}
impl Standard for u32 {
    fn from_rng(word: u64) -> Self {
        (word >> 32) as u32
    }
}
impl Standard for usize {
    fn from_rng(word: u64) -> Self {
        word as usize
    }
}
impl Standard for bool {
    fn from_rng(word: u64) -> Self {
        word >> 63 == 1
    }
}
impl Standard for f32 {
    fn from_rng(word: u64) -> Self {
        // 24 high bits → [0, 1) with full f32 mantissa resolution.
        ((word >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for f64 {
    fn from_rng(word: u64) -> Self {
        ((word >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over an interval — upstream's
/// `SampleUniform`. The generic [`SampleRange`] impls below hang off this
/// trait so type inference behaves like upstream's (one blanket impl per
/// range shape keeps the element type linked to the range's).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_in(lo: Self, hi: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self {
                if inclusive {
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + next() as $t;
                    }
                    lo + (next() % (span + 1)) as $t
                } else {
                    let span = (hi - lo) as u64;
                    lo + (next() % span) as $t
                }
            }
        }
    )*};
}
int_uniform!(usize, u64, u32, i64, i32);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, _inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self {
                let u = <$t as Standard>::from_rng(next());
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Ranges that can be sampled uniformly — upstream's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample using `next` as the word source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, next)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    /// Deterministic per seed; not stream-compatible with upstream StdRng.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let i = r.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = r.gen_range(0usize..=0);
            assert_eq!(j, 0);
            let x = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_covers_support() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(6);
        let _ = r.gen_range(5usize..5);
    }
}

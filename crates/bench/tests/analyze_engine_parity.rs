//! End-to-end parity of the blocked pairwise-distance engine on *learned*
//! representations: the analyzer and t-SNE routing used by
//! `exp_demo_uwave` / `exp_pipeline` (pre-train → transform → analyze)
//! must produce identical labels/assignments to the naive oracle path it
//! replaced — not just on synthetic blobs, but on real pipeline output.

use tcsl_analyzers::anomaly::KnnDistance;
use tcsl_analyzers::classify::KnnClassifier;
use tcsl_analyzers::cluster::{Agglomerative, KMeans};
use tcsl_analyzers::index::{IndexBackend, IvfIndex};
use tcsl_analyzers::{AnomalyScorer, Classifier, Clusterer};
use tcsl_core::{CslConfig, TimeCsl};
use tcsl_data::archive;
use tcsl_shapelet::{Measure, ShapeletConfig};
use tcsl_tensor::pairdist::{knn_oracle, pairdist, pairdist_oracle};
use tcsl_tensor::Tensor;

/// Pre-trains the small MotifEasy model the explore-session tests use and
/// returns train/test representations with their labels.
fn representations() -> (Tensor, Vec<usize>, Tensor, Vec<usize>) {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, test) = archive::generate_split(&entry, 61);
    let scfg = ShapeletConfig {
        lengths: vec![8, 16],
        k_per_group: 3,
        measures: vec![Measure::Euclidean, Measure::Cosine],
        stride: 1,
    };
    let ccfg = CslConfig {
        epochs: 2,
        batch_size: 8,
        grains: vec![1.0],
        seed: 3,
        ..Default::default()
    };
    let (model, _) = TimeCsl::pretrain(&train, Some(scfg), &ccfg);
    let ytr = train.labels().unwrap().to_vec();
    let yte = test.labels().unwrap().to_vec();
    let ztr = model.transform(&train).unwrap();
    let zte = model.transform(&test).unwrap();
    (ztr, ytr, zte, yte)
}

#[test]
fn engine_routing_matches_oracle_paths_end_to_end() {
    let (ztr, ytr, zte, _) = representations();
    let k = 3;

    // k-NN classification: identical predicted labels to a full oracle
    // scan with the same vote and tie-break rules.
    let mut clf = KnnClassifier::new(k);
    clf.fit(&ztr, &ytr).unwrap();
    let fast = clf.predict(&zte).unwrap();
    let n_classes = ytr.iter().copied().max().unwrap() + 1;
    let slow: Vec<usize> = knn_oracle(&zte, &ztr, k)
        .into_iter()
        .map(|nn| {
            let mut votes = vec![0usize; n_classes];
            for &(idx, _) in &nn {
                votes[ytr[idx]] += 1;
            }
            let top = *votes.iter().max().unwrap();
            nn.iter()
                .find(|(idx, _)| votes[ytr[*idx]] == top)
                .map(|&(idx, _)| ytr[idx])
                .unwrap()
        })
        .collect();
    assert_eq!(fast, slow, "kNN labels drifted from the oracle scan");

    // Anomaly scoring: same mean-of-k-nearest values (to distance-level
    // tolerance — the two formulas round differently) from the same
    // neighbour sets.
    let mut scorer = KnnDistance::new(k);
    scorer.fit(&ztr).unwrap();
    let fast_scores = scorer.score(&zte).unwrap();
    let slow_scores: Vec<f32> = knn_oracle(&zte, &ztr, k + 1)
        .into_iter()
        .map(|nn| {
            let dists: Vec<f32> = nn.iter().map(|&(_, d)| d.sqrt()).collect();
            let start = usize::from(dists.first().is_some_and(|&d| d < 1e-12));
            let rest = &dists[start..];
            if rest.is_empty() {
                0.0
            } else {
                let take = k.min(rest.len());
                rest[..take].iter().sum::<f32>() / take as f32
            }
        })
        .collect();
    for (i, (f, s)) in fast_scores.iter().zip(&slow_scores).enumerate() {
        assert!(
            (f - s).abs() <= 1e-3 * s.abs().max(1.0),
            "anomaly score {i}: {f} vs oracle {s}"
        );
    }

    // Agglomerative clustering: the engine-built distance matrix must cut
    // to the same assignment as the oracle-built one.
    let ag = Agglomerative::new(2);
    let fast_assign = ag.clone().fit_predict(&zte).unwrap();
    let oracle_matrix = pairdist_oracle(&zte, &zte).sqrt();
    assert_eq!(
        fast_assign,
        ag.fit_predict_from_distances(&oracle_matrix),
        "agglomerative assignments drifted from the oracle matrix"
    );

    // k-means: every fitted assignment must be the scalar-scan argmin of
    // its row against the fitted centers (strict `<`, lowest index wins).
    let mut km = KMeans::new(2);
    let assign = km.fit_predict(&zte).unwrap();
    let centers = km.centers().unwrap();
    for (i, &got) in assign.iter().enumerate() {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..centers.rows() {
            let d: f32 = zte
                .row(i)
                .iter()
                .zip(centers.row(c))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assert_eq!(got, best, "k-means row {i} not assigned to argmin center");
    }

    // t-SNE affinity input: the engine matrix agrees with the oracle to
    // matrix scale (this is the only distance pass inside `explore::tsne`).
    let fast_d2 = pairdist(&zte, &zte);
    let slow_d2 = pairdist_oracle(&zte, &zte);
    let scale = slow_d2
        .as_slice()
        .iter()
        .fold(1.0f32, |acc, &v| acc.max(v.abs()));
    assert!(
        fast_d2.max_abs_diff(&slow_d2) / scale < 1e-4,
        "t-SNE affinity distances drifted: {}",
        fast_d2.max_abs_diff(&slow_d2)
    );
}

#[test]
fn ivf_full_probe_matches_exact_backend_on_learned_representations() {
    // The nprobe == nlist parity contract, end-to-end on real pipeline
    // output rather than synthetic grids: the IVF-backed analyzers must be
    // indistinguishable from the exact-backend ones — identical predicted
    // labels, bit-identical anomaly scores, bit-identical raw neighbour
    // lists out of the index itself.
    let (ztr, ytr, zte, _) = representations();
    let (k, nlist) = (3, 5);
    let full = IndexBackend::Ivf {
        nlist,
        nprobe: nlist,
    };

    let index = IvfIndex::build(&ztr, nlist, 0);
    let exact_nn = tcsl_tensor::pairdist::knn(&zte, &ztr, k);
    let ivf_nn = index.knn(&zte, k, index.nlist()).unwrap();
    for (i, (e, v)) in exact_nn.iter().zip(&ivf_nn).enumerate() {
        assert_eq!(e.len(), v.len(), "query {i}");
        for (&(ei, ed), &(vi, vd)) in e.iter().zip(v) {
            assert_eq!(ei, vi, "query {i}");
            assert_eq!(ed.to_bits(), vd.to_bits(), "query {i}");
        }
    }

    let mut exact_clf = KnnClassifier::new(k);
    exact_clf.fit(&ztr, &ytr).unwrap();
    let mut ivf_clf = KnnClassifier::with_backend(k, full);
    ivf_clf.fit(&ztr, &ytr).unwrap();
    assert_eq!(
        exact_clf.predict(&zte).unwrap(),
        ivf_clf.predict(&zte).unwrap(),
        "IVF-backed kNN labels drifted from the exact backend"
    );

    let mut exact_scorer = KnnDistance::new(k);
    exact_scorer.fit(&ztr).unwrap();
    let mut ivf_scorer = KnnDistance::with_backend(k, full);
    ivf_scorer.fit(&ztr).unwrap();
    let es = exact_scorer.score(&zte).unwrap();
    let vs = ivf_scorer.score(&zte).unwrap();
    for (i, (e, v)) in es.iter().zip(&vs).enumerate() {
        assert_eq!(e.to_bits(), v.to_bits(), "anomaly score {i}");
    }
}

//! Microbenchmark: shapelet-transform throughput — the fused streaming
//! kernel against the unfold+matmul oracle, across series lengths and
//! variable counts. The per-query cost of the freezing mode.
//!
//! For allocator-pressure numbers and the headline speedup table, run the
//! `bench_transform` *binary* instead (writes `BENCH_transform.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcsl_data::TimeSeries;
use tcsl_shapelet::transform::{transform_series, transform_series_oracle};
use tcsl_shapelet::{ShapeletBank, ShapeletConfig};
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapelet_transform");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    for &t in &[128usize, 256, 512] {
        for &d in &[1usize, 3] {
            let mut rng = seeded(1);
            let mut bank = ShapeletBank::new(&ShapeletConfig::adaptive(t), d);
            bank.randomize(&mut rng);
            let series = TimeSeries::new(Tensor::randn([d, t], &mut rng));
            group.bench_with_input(BenchmarkId::new(format!("fused_d{d}"), t), &t, |b, _| {
                b.iter(|| transform_series(&bank, &series))
            });
            group.bench_with_input(BenchmarkId::new(format!("naive_d{d}"), t), &t, |b, _| {
                b.iter(|| transform_series_oracle(&bank, &series))
            });
        }
    }
    group.finish();
}

fn bench_transform_long_stride(c: &mut Criterion) {
    // The capped-window configuration used on multi-thousand-step series
    // (E1d): cost should grow sub-quadratically thanks to the stride.
    let mut group = c.benchmark_group("shapelet_transform_long");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for &t in &[1024usize, 4096] {
        let mut rng = seeded(2);
        let mut bank = ShapeletBank::new(&ShapeletConfig::adaptive_long(t, 256), 1);
        bank.randomize(&mut rng);
        let series = TimeSeries::new(Tensor::randn([1, t], &mut rng));
        group.bench_with_input(BenchmarkId::new("capped256_fused", t), &t, |b, _| {
            b.iter(|| transform_series(&bank, &series))
        });
        group.bench_with_input(BenchmarkId::new("capped256_naive", t), &t, |b, _| {
            b.iter(|| transform_series_oracle(&bank, &series))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transform, bench_transform_long_stride);
criterion_main!(benches);

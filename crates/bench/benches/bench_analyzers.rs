//! Microbenchmark: analyzer fitting cost on shapelet-sized feature
//! matrices — the "Run Analyzer" latency of the freezing mode.

use criterion::{criterion_group, criterion_main, Criterion};
use tcsl_analyzers::anomaly::IsolationForest;
use tcsl_analyzers::classify::{GradientBoosting, LinearSvm, LogisticRegression};
use tcsl_analyzers::cluster::KMeans;
use tcsl_analyzers::{AnomalyScorer, Classifier, Clusterer};
use tcsl_tensor::rng::{gauss, seeded};
use tcsl_tensor::Tensor;

fn blobs(n_per: usize, k: usize, dim: usize) -> (Tensor, Vec<usize>) {
    let mut rng = seeded(5);
    let mut data = Vec::new();
    let mut y = Vec::new();
    for c in 0..k {
        for _ in 0..n_per {
            for d in 0..dim {
                data.push(if d % k == c { 4.0 } else { 0.0 } + gauss(&mut rng));
            }
            y.push(c);
        }
    }
    (Tensor::from_vec(data, [n_per * k, dim]), y)
}

fn bench_analyzers(c: &mut Criterion) {
    let (x, y) = blobs(40, 4, 120); // 160 series × the default D_repr
    let mut group = c.benchmark_group("analyzers_fit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("linear_svm", |b| {
        b.iter(|| {
            let mut m = LinearSvm::new();
            m.fit(&x, &y).expect("bench features are well-formed");
            m.predict(&x)
        })
    });
    group.bench_function("logreg", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::new().with_iterations(50);
            m.fit(&x, &y).expect("bench features are well-formed");
            m.predict(&x)
        })
    });
    group.bench_function("gbdt_r10", |b| {
        b.iter(|| {
            let mut m = GradientBoosting::new(10);
            m.fit(&x, &y).expect("bench features are well-formed");
            m.predict(&x)
        })
    });
    group.bench_function("kmeans", |b| b.iter(|| KMeans::new(4).fit_predict(&x)));
    group.bench_function("iforest", |b| {
        b.iter(|| {
            let mut m = IsolationForest::new();
            m.fit(&x).expect("bench features are well-formed");
            m.score(&x)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analyzers);
criterion_main!(benches);

//! Microbenchmark: t-SNE layout cost for the interactive exploration view
//! (Fig. 3e) at typical dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcsl_explore::tsne::{tsne, TsneConfig};
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

fn bench_tsne(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsne");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[40usize, 80] {
        let mut rng = seeded(4);
        let x = Tensor::randn([n, 24], &mut rng);
        let cfg = TsneConfig {
            iterations: 100,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("iter100", n), &n, |b, _| {
            b.iter(|| tsne(&x, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tsne);
criterion_main!(benches);

//! Microbenchmark: DTW's quadratic scaling in series length — the cost
//! curve behind the long-series axis (E1d), where the shapelet transform's
//! capped-window cost overtakes DTW-1NN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcsl_baselines::dtw::dtw_distance;
use tcsl_data::TimeSeries;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw_distance");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for &t in &[64usize, 128, 256, 512] {
        let mut rng = seeded(3);
        let a = TimeSeries::new(Tensor::randn([1, t], &mut rng));
        let b = TimeSeries::new(Tensor::randn([1, t], &mut rng));
        group.bench_with_input(BenchmarkId::new("full", t), &t, |bch, _| {
            bch.iter(|| dtw_distance(&a, &b, None))
        });
        group.bench_with_input(BenchmarkId::new("band10pct", t), &t, |bch, _| {
            bch.iter(|| dtw_distance(&a, &b, Some(t / 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dtw);
criterion_main!(benches);

//! Microbenchmark: the per-call cost of the observability layer in both
//! states — the disabled gate (one relaxed atomic load, the price every
//! hot loop pays unconditionally) and the enabled recording paths
//! (counter increments, span enter/exit, thread-local batching).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tcsl_obs::counters::{LocalCounter, PAIRDIST_TILES, WINDOW_CACHE_HIT};
use tcsl_obs::spans::span;

fn bench_disabled(c: &mut Criterion) {
    tcsl_obs::set_enabled(false);
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("counter_add", |b| {
        b.iter(|| WINDOW_CACHE_HIT.add(black_box(1)));
    });
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| drop(span(black_box("bench.noop"))));
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    tcsl_obs::trace::use_memory_sink();
    tcsl_obs::set_enabled(true);
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("counter_add", |b| {
        b.iter(|| WINDOW_CACHE_HIT.add(black_box(1)));
    });
    group.bench_function("local_counter_add", |b| {
        let mut local = LocalCounter::new(&PAIRDIST_TILES);
        b.iter(|| local.add(black_box(1)));
    });
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| drop(span(black_box("bench.noop"))));
    });
    group.finish();
    tcsl_obs::set_enabled(false);
    tcsl_obs::trace::reset_sink();
    tcsl_obs::counters::reset();
    tcsl_obs::spans::reset();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);

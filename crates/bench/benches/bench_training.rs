//! Microbenchmark: one pre-training step of CSL vs the CNN contrastive
//! baseline — the per-step side of the Figure-1 training-efficiency axis.

use criterion::{criterion_group, criterion_main, Criterion};
use tcsl_baselines::{CnnArch, CnnUrl, Objective, UrlConfig};
use tcsl_core::{pretrain, CslConfig};
use tcsl_data::archive;
use tcsl_shapelet::{init::init_from_data, ShapeletBank, ShapeletConfig};
use tcsl_tensor::rng::seeded;

fn bench_csl_epoch(c: &mut Criterion) {
    let entry = archive::by_name("MotifEasy").unwrap();
    let (train, _) = archive::generate_split(&entry, 9);
    let train = train.znormed();
    let scfg = ShapeletConfig::adaptive(train.max_len());
    let mut group = c.benchmark_group("pretraining_one_epoch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("csl", |b| {
        b.iter_batched(
            || {
                let mut bank = ShapeletBank::new(&scfg, 1);
                init_from_data(&mut bank, &train, 2, &mut seeded(1));
                bank
            },
            |mut bank| {
                let cfg = CslConfig {
                    epochs: 1,
                    batch_size: 16,
                    seed: 1,
                    ..Default::default()
                };
                pretrain(&mut bank, &train, &cfg)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("cnn_simclr", |b| {
        b.iter_batched(
            || {
                CnnUrl::new(
                    1,
                    Objective::InstanceContrast,
                    CnnArch::default(),
                    UrlConfig {
                        epochs: 1,
                        batch_size: 16,
                        seed: 1,
                        ..Default::default()
                    },
                )
            },
            |mut url| url.pretrain(&train),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_csl_epoch);
criterion_main!(benches);

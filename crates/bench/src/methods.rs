//! Unified wrappers around every representation method the experiments
//! compare, so the harness can treat "train on this dataset, embed that
//! one" uniformly.

use std::time::Duration;
use tcsl_baselines::{features, CnnArch, CnnUrl, Objective, UrlConfig};
use tcsl_core::{CslConfig, TimeCsl};
use tcsl_data::Dataset;
use tcsl_shapelet::ShapeletConfig;
use tcsl_tensor::Tensor;

/// The representation methods of the Figure-1 comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Contrastive Shapelet Learning (this paper).
    Csl,
    /// CNN encoder + SimCLR/TS2Vec-style instance contrasting.
    CnnSimclr,
    /// CNN encoder + T-Loss-style triplet loss.
    CnnTloss,
    /// CNN encoder + TNC-style temporal neighbourhood coding.
    CnnTnc,
    /// Hand-crafted statistical features (no training).
    StatFeatures,
}

impl Method {
    /// All representation methods, CSL first.
    pub const ALL: [Method; 5] = [
        Method::Csl,
        Method::CnnSimclr,
        Method::CnnTloss,
        Method::CnnTnc,
        Method::StatFeatures,
    ];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Csl => "CSL",
            Method::CnnSimclr => "CNN-SimCLR",
            Method::CnnTloss => "CNN-TLoss",
            Method::CnnTnc => "CNN-TNC",
            Method::StatFeatures => "StatFeat",
        }
    }
}

/// A trained representation: a name, its training cost, and an embed
/// function.
pub struct TrainedRepr {
    /// Method display name.
    pub name: &'static str,
    /// Unsupervised training wall time (zero for untrained methods).
    pub train_time: Duration,
    embed: Box<dyn Fn(&Dataset) -> Tensor + Send + Sync>,
}

impl TrainedRepr {
    /// Embeds a dataset into the method's feature space.
    pub fn encode(&self, ds: &Dataset) -> Tensor {
        (self.embed)(ds)
    }
}

/// Epoch budget shared by all trained methods (so the efficiency axis
/// compares time per equal epochs).
pub const EPOCHS: usize = 10;

/// Trains `method` on `train`. `long_series` switches CSL to its capped-
/// window configuration (and shrinks the CNN batch) for multi-thousand-step
/// series.
pub fn train_method(method: Method, train: &Dataset, seed: u64, long_series: bool) -> TrainedRepr {
    match method {
        Method::Csl => {
            let csl_cfg = CslConfig {
                epochs: EPOCHS,
                batch_size: 16,
                seed,
                ..Default::default()
            };
            let shapelet_cfg = if long_series {
                Some(ShapeletConfig::adaptive_long(train.max_len(), 256))
            } else {
                None
            };
            let (model, report) = TimeCsl::pretrain(train, shapelet_cfg, &csl_cfg);
            TrainedRepr {
                name: Method::Csl.name(),
                train_time: report.wall_time,
                embed: Box::new(move |ds| {
                    model
                        .transform(ds)
                        .expect("bench datasets are non-empty and finite")
                }),
            }
        }
        Method::CnnSimclr | Method::CnnTloss | Method::CnnTnc => {
            let objective = match method {
                Method::CnnSimclr => Objective::InstanceContrast,
                Method::CnnTloss => Objective::Triplet,
                _ => Objective::TemporalNeighbourhood,
            };
            let arch = CnnArch::default();
            let cfg = UrlConfig {
                epochs: EPOCHS,
                batch_size: if long_series { 8 } else { 16 },
                seed,
                ..Default::default()
            };
            let mut url = CnnUrl::new(train.n_vars(), objective, arch, cfg);
            let (time, _curve) = url.pretrain(&train.znormed());
            TrainedRepr {
                name: method.name(),
                train_time: time,
                embed: Box::new(move |ds| url.encode(&ds.znormed())),
            }
        }
        Method::StatFeatures => TrainedRepr {
            name: Method::StatFeatures.name(),
            train_time: Duration::ZERO,
            embed: Box::new(|ds| features::extract_dataset(&ds.znormed())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_data::archive;

    #[test]
    fn every_method_trains_and_encodes() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let (train, test) = archive::generate_split(&entry, 500);
        let small = train.subset(&(0..12).collect::<Vec<_>>(), "small");
        for m in Method::ALL {
            let repr = train_method(m, &small, 1, false);
            let z = repr.encode(&test);
            assert_eq!(z.rows(), test.len(), "{}", repr.name);
            assert!(z.all_finite(), "{}", repr.name);
            if m != Method::StatFeatures {
                assert!(repr.train_time.as_nanos() > 0);
            }
        }
    }
}

//! Quantized-inference benchmark: the fused transform served from f32,
//! f16 and i16 tap banks, on the paper's adaptive serving shape.
//!
//! ```text
//! cargo run --release -p tcsl-bench --bin bench_quant          # full
//! cargo run --release -p tcsl-bench --bin bench_quant -- --smoke
//! ```
//!
//! Per case and precision leg the bench reports ns/series, modeled bytes
//! streamed (taps + windows — the traffic the half-width bank halves on
//! the tap side), allocator pressure, the max |quantized − f32| transform
//! error, and whether every shapelet's best-match window (argmin) agrees
//! with the f32 leg. Full mode asserts both half-width legs are ≥ 1.5×
//! faster than f32 at T=4096 with exact argmin parity; the error column is
//! bounded by the same analytic budget the proptests enforce.
//!
//! Prints a one-line JSON summary per case and writes the full report to
//! `BENCH_quant.json` (see EXPERIMENTS.md for the format).

use std::fmt::Write as _;

use tcsl_bench::alloc_track::{alloc_profile, CountingAlloc};
use tcsl_data::TimeSeries;
use tcsl_obs::spans::Stopwatch;
use tcsl_shapelet::matching::best_match;
use tcsl_shapelet::transform::transform_series;
use tcsl_shapelet::{BankPrecision, ShapeletBank, ShapeletConfig};
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Seconds per call for each closure, timed **interleaved**: every round
/// runs one batch of each leg back to back, and each leg keeps its fastest
/// round. Sequential per-leg timing (the `bench_transform` protocol) is
/// biased by slow drift — frequency scaling or a noisy neighbour between
/// the f32 leg and the quantized legs shows up as a phantom (de)speedup;
/// round-robin batches expose every leg to the same machine state.
fn time_legs<F: FnMut(usize)>(n_legs: usize, mut f: F, budget: f64, rounds: usize) -> Vec<f64> {
    let mut iters = vec![0usize; n_legs];
    for (leg, it) in iters.iter_mut().enumerate() {
        f(leg); // warm-up (page in buffers, populate the bank cache)
        let probe = Stopwatch::start("bench.quant_probe");
        f(leg);
        let once = probe.stop();
        *it = ((budget / once.max(1e-9)) as usize).clamp(2, 4_000);
    }
    let mut best = vec![f64::INFINITY; n_legs];
    for _ in 0..rounds {
        for leg in 0..n_legs {
            let watch = Stopwatch::start("bench.quant_batch");
            for _ in 0..iters[leg] {
                f(leg);
            }
            best[leg] = best[leg].min(watch.stop() / iters[leg] as f64);
        }
    }
    best
}

struct Leg {
    precision: BankPrecision,
    secs_per_series: f64,
    peak_extra_mb: f64,
    bytes_streamed_per_series: u64,
    max_transform_error: f64,
    argmin_agreement: bool,
}

/// Modeled bytes of tap + window traffic per fused transform call: every
/// window re-reads all `K` tap rows at the leg's element width, and is
/// itself read once per 4-shapelet block (f32 window data in every leg —
/// only the tap stream changes width).
fn modeled_bytes_streamed(bank: &ShapeletBank, t: usize) -> u64 {
    let tap_elt = match bank.precision() {
        BankPrecision::Full => 4,
        BankPrecision::F16 | BankPrecision::I16 => 2,
    };
    let mut total = 0u64;
    for g in bank.groups() {
        let width = bank.d * g.len;
        let n = tcsl_tensor::window::count_windows(t.max(g.len), g.len, g.stride) as u64;
        total += n * (g.k() * width * tap_elt) as u64 + n * (g.k().div_ceil(4) * width) as u64 * 4;
    }
    total
}

/// Argmin parity: every (group, shapelet) localizes to the same window in
/// `bank` as in the f32 reference.
fn argmins_agree(reference: &ShapeletBank, bank: &ShapeletBank, series: &TimeSeries) -> bool {
    reference.groups().iter().enumerate().all(|(gi, g)| {
        (0..g.k()).all(|k| {
            best_match(reference, gi, k, series).start == best_match(bank, gi, k, series).start
        })
    })
}

fn profile_leg(
    bank: &ShapeletBank,
    reference: &ShapeletBank,
    series: &TimeSeries,
    full_feats: &[f32],
    t: usize,
    secs: f64,
) -> Leg {
    let mut run = || {
        std::hint::black_box(transform_series(bank, series).expect("bench series are well-formed"));
    };
    let ((), allocs) = alloc_profile(&mut run);
    let feats = transform_series(bank, series).expect("bench series are well-formed");
    let max_err = feats
        .iter()
        .zip(full_feats)
        .map(|(&q, &f)| (q - f).abs() as f64)
        .fold(0f64, f64::max);
    Leg {
        precision: bank.precision(),
        secs_per_series: secs,
        peak_extra_mb: allocs.peak_extra_mb(),
        bytes_streamed_per_series: modeled_bytes_streamed(bank, t),
        max_transform_error: max_err,
        argmin_agreement: argmins_agree(reference, bank, series),
    }
}

fn leg_json(leg: &Leg, f32_secs: f64) -> String {
    format!(
        "{{\"precision\":\"{}\",\"ns_per_series\":{:.0},\"series_per_sec\":{:.2},\"peak_alloc_mb\":{:.4},\"bytes_streamed_per_series\":{},\"max_transform_error\":{:.3e},\"argmin_agreement\":{},\"speedup_vs_f32\":{:.2}}}",
        leg.precision.name(),
        leg.secs_per_series * 1e9,
        1.0 / leg.secs_per_series,
        leg.peak_extra_mb,
        leg.bytes_streamed_per_series,
        leg.max_transform_error,
        leg.argmin_agreement,
        f32_secs / leg.secs_per_series
    )
}

struct Case {
    label: &'static str,
    t: usize,
    d: usize,
    cfg: ShapeletConfig,
    /// Full-mode acceptance case: both half-width legs must be ≥ 1.5×
    /// with exact argmin parity.
    gated: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { 0.02 } else { 0.2 };
    let cases: Vec<Case> = if smoke {
        vec![Case {
            label: "adaptive_T512_d1",
            t: 512,
            d: 1,
            cfg: ShapeletConfig::adaptive(512),
            gated: false,
        }]
    } else {
        vec![
            Case {
                label: "adaptive_T512_d1",
                t: 512,
                d: 1,
                cfg: ShapeletConfig::adaptive(512),
                gated: false,
            },
            Case {
                label: "adaptive_T1024_d3",
                t: 1024,
                d: 3,
                cfg: ShapeletConfig::adaptive(1024),
                gated: false,
            },
            Case {
                label: "adaptive_T4096_d1",
                t: 4096,
                d: 1,
                cfg: ShapeletConfig::adaptive(4096),
                gated: false,
            },
            // The acceptance shape: the paper's longest adaptive scale
            // (0.8·T) alone, with K a multiple of the engine's 4-shapelet
            // block. At this scale a 4-row tap block is ~52 KiB of f32 —
            // past L1 — so the transform is bound by the tap stream and
            // halving it shows up as wall-clock. The shorter adaptive
            // scales above are reported unguarded: their tap rows are cache
            // resident, so quantization saves memory, not time (see
            // EXPERIMENTS.md).
            Case {
                label: "serving_T4096_d1",
                t: 4096,
                d: 1,
                cfg: ShapeletConfig {
                    lengths: vec![3277],
                    k_per_group: 8,
                    measures: tcsl_shapelet::Measure::ALL.to_vec(),
                    stride: 1,
                },
                gated: true,
            },
        ]
    };

    let mut entries = Vec::new();
    for case in &cases {
        // Seed pinned per case: argmin parity on random data is a property
        // of the (bank, series) draw — near-ties can flip under a half-ULP
        // tap perturbation, which is exactly what the gated case must not
        // show on its committed draw.
        let mut rng = seeded(7);
        let mut bank = ShapeletBank::new(&case.cfg, case.d);
        bank.randomize(&mut rng);
        let series = TimeSeries::new(Tensor::randn([case.d, case.t], &mut rng));
        let full_feats = transform_series(&bank, &series).expect("bench series are well-formed");

        let mut banks = vec![bank.clone()];
        for scheme in [
            tcsl_tensor::quant::QuantScheme::F16,
            tcsl_tensor::quant::QuantScheme::I16,
        ] {
            let mut qb = bank.clone();
            qb.quantize(scheme).expect("bench taps are finite");
            banks.push(qb);
        }
        let secs = time_legs(
            banks.len(),
            |leg| {
                std::hint::black_box(
                    transform_series(&banks[leg], &series).expect("bench series are well-formed"),
                );
            },
            budget,
            5,
        );

        let f32_secs = secs[0];
        let profiled: Vec<Leg> = banks
            .iter()
            .zip(&secs)
            .map(|(b, &leg_secs)| profile_leg(b, &bank, &series, &full_feats, case.t, leg_secs))
            .collect();
        let legs: Vec<String> = profiled.iter().map(|l| leg_json(l, f32_secs)).collect();

        let mut entry = String::new();
        let _ = write!(
            entry,
            "{{\"case\":\"{}\",\"t\":{},\"d\":{},\"stride\":{},\"lengths\":{:?},\"k_per_group\":{},\"legs\":[{}]}}",
            case.label,
            case.t,
            case.d,
            case.cfg.stride,
            case.cfg.lengths,
            case.cfg.k_per_group,
            legs.join(",")
        );
        println!("{entry}");
        entries.push(entry);

        // Gate after printing, so a failing run still shows its numbers.
        if !smoke && case.gated {
            for (b, leg) in banks.iter().zip(&profiled) {
                if b.precision() == BankPrecision::Full {
                    continue;
                }
                let speedup = f32_secs / leg.secs_per_series;
                assert!(
                    speedup >= 1.5,
                    "{}: {} only {speedup:.2}x faster than f32 (need >= 1.5x)",
                    case.label,
                    b.precision().name()
                );
                assert!(
                    leg.argmin_agreement,
                    "{}: {} argmin disagrees with f32",
                    case.label,
                    b.precision().name()
                );
            }
        }
    }

    let report = format!(
        "{{\"bench\":\"quant\",\"schema_version\":{},\"unit_note\":\"fused transform from f32 vs half-width tap banks; bytes_streamed_per_series = modeled tap+window traffic; max_transform_error vs the f32 leg; argmin_agreement = every shapelet localizes to the same window\",\"cases\":[\n  {}\n]}}\n",
        tcsl_bench::contract::SCHEMA_VERSION,
        entries.join(",\n  ")
    );
    tcsl_bench::contract::write_report(
        "BENCH_quant.json",
        "quant",
        &report,
        &[
            "cases[].legs[].precision",
            "cases[].legs[].ns_per_series",
            "cases[].legs[].bytes_streamed_per_series",
            "cases[].legs[].max_transform_error",
            "cases[].legs[].speedup_vs_f32",
            "cases[].legs[].argmin_agreement=true",
        ],
    );
}

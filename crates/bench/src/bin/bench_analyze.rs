//! Representation-space analysis benchmark: the naive scalar distance
//! paths the analyzers used before the blocked [`pairdist`] engine vs the
//! engine itself, with allocator pressure per leg.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p tcsl-bench --bin bench_analyze          # full
//! cargo run --release -p tcsl-bench --bin bench_analyze -- --smoke
//! ```
//!
//! Four cases, mirroring the rewired consumers:
//!
//! * `knn_predict` — full-matrix scalar scan + per-row sort + vote (the old
//!   `KnnClassifier::predict`) vs the heap-bounded streaming top-k path.
//!   Predicted labels must be identical; in full mode the blocked leg must
//!   be ≥ 2× faster and its peak allocation below the naive full-matrix
//!   leg.
//! * `kmeans_fit` — a faithful replica of the old scalar Lloyd/k-means++
//!   loop vs `KMeans::fit_predict` on the engine. Assignments are compared
//!   by NMI (rounding in the k-means++ probability walk may legitimately
//!   flip a pick, so bit-equality is not asserted).
//! * `tsne_affinities` — the old O(N²·F) scalar double loop that fed the
//!   t-SNE affinity pass vs one `pairdist(x, x)` call.
//! * `pairdist_pool_modes` — the engine's row-block fan-out on the
//!   persistent worker pool vs `TCSL_POOL=scoped` per-call thread
//!   spawning at the same explicit thread count; output matrices must be
//!   bit-identical across modes (the spawn tax is pure overhead).
//!
//! Prints a one-line JSON summary per case and writes the full report to
//! `BENCH_analyze.json` (see EXPERIMENTS.md for the format).

use std::fmt::Write as _;

use rand::Rng;
use tcsl_analyzers::classify::KnnClassifier;
use tcsl_analyzers::cluster::KMeans;
use tcsl_analyzers::{Classifier, Clusterer};
use tcsl_bench::alloc_track::{alloc_profile, AllocStats, CountingAlloc};
use tcsl_eval::metrics::clustering::nmi;
use tcsl_obs::spans::Stopwatch;
use tcsl_tensor::pairdist::{knn_oracle, pairdist};
use tcsl_tensor::rng::{gauss, seeded};
use tcsl_tensor::Tensor;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Gaussian blobs: `classes` centers `sep` apart on a diagonal lattice,
/// `n_per` points each, `dim` features. (A local copy of the analyzers'
/// test-only `testutil::blobs` — test utilities are not exported.)
fn blobs(classes: usize, n_per: usize, dim: usize, sep: f32, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = seeded(seed);
    let mut data = Vec::with_capacity(classes * n_per * dim);
    let mut labels = Vec::with_capacity(classes * n_per);
    for c in 0..classes {
        for _ in 0..n_per {
            for d in 0..dim {
                let center = if d % classes == c {
                    sep * c as f32
                } else {
                    0.0
                };
                data.push(center + gauss(&mut rng));
            }
            labels.push(c);
        }
    }
    (Tensor::from_vec(data, [classes * n_per, dim]), labels)
}

/// One timed leg: the result, the best (minimum) wall-clock seconds over
/// `reps` identical runs, and the allocation profile of the
/// minimum-peak run.
struct Leg<T> {
    value: T,
    best_secs: f64,
    allocs: AllocStats,
}

fn run_leg<T>(reps: usize, mut f: impl FnMut() -> T) -> Leg<T> {
    let mut best_secs = f64::INFINITY;
    let mut best_allocs: Option<AllocStats> = None;
    let mut value = None;
    for _ in 0..reps {
        let watch = Stopwatch::start("bench.analyze_leg");
        let (v, allocs) = alloc_profile(&mut f);
        best_secs = best_secs.min(watch.stop());
        // Min peak over reps: the steady-state figure, free of one-time
        // lazy initialization in the first run.
        if best_allocs.is_none_or(|b| allocs.peak_extra < b.peak_extra) {
            best_allocs = Some(allocs);
        }
        value = Some(v);
    }
    Leg {
        value: value.expect("reps >= 1"),
        best_secs,
        allocs: best_allocs.expect("reps >= 1"),
    }
}

fn leg_json<T>(l: &Leg<T>) -> String {
    format!(
        "{{\"secs\":{:.4},\"peak_alloc_mb\":{:.4},\"total_alloc_mb\":{:.4}}}",
        l.best_secs,
        l.allocs.peak_extra_mb(),
        l.allocs.total_mb()
    )
}

/// The old `KnnClassifier::predict`: full oracle distance matrix, per-row
/// sort, truncate to `k`, majority vote with nearest tie-break.
fn naive_knn_predict(train_x: &Tensor, train_y: &[usize], x: &Tensor, k: usize) -> Vec<usize> {
    let n_classes = train_y.iter().copied().max().unwrap_or(0) + 1;
    knn_oracle(x, train_x, k)
        .into_iter()
        .map(|nn| {
            let mut votes = vec![0usize; n_classes];
            for &(idx, _) in &nn {
                votes[train_y[idx]] += 1;
            }
            let top = *votes.iter().max().expect("at least one class");
            nn.iter()
                .find(|(idx, _)| votes[train_y[*idx]] == top)
                .map(|&(idx, _)| train_y[idx])
                .expect("non-empty neighbourhood")
        })
        .collect()
}

/// The old scalar k-means (sq_dist scans in k-means++ seeding, assignment
/// and inertia), kept verbatim as the benchmark's naive leg.
mod naive_kmeans {
    use super::*;

    fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
    }

    fn plus_plus_init(k: usize, x: &Tensor, rng: &mut impl Rng) -> Tensor {
        let n = x.rows();
        let mut centers: Vec<usize> = vec![rng.gen_range(0..n)];
        let mut d2: Vec<f32> = (0..n)
            .map(|i| sq_dist(x.row(i), x.row(centers[0])))
            .collect();
        while centers.len() < k.min(n) {
            let total: f32 = d2.iter().sum();
            let next = if total <= 1e-12 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut pick = n - 1;
                for (i, &d) in d2.iter().enumerate() {
                    if target < d {
                        pick = i;
                        break;
                    }
                    target -= d;
                }
                pick
            };
            centers.push(next);
            for (i, slot) in d2.iter_mut().enumerate() {
                let nd = sq_dist(x.row(i), x.row(next));
                if nd < *slot {
                    *slot = nd;
                }
            }
        }
        let f = x.cols();
        let mut out = Tensor::zeros([centers.len(), f]);
        for (c, &i) in centers.iter().enumerate() {
            out.row_mut(c).copy_from_slice(x.row(i));
        }
        out
    }

    fn lloyd(max_iter: usize, x: &Tensor, mut centers: Tensor) -> (Vec<usize>, f32) {
        let (n, f) = (x.rows(), x.cols());
        let k = centers.rows();
        let mut assign = vec![0usize; n];
        for _ in 0..max_iter {
            let mut changed = false;
            for (i, slot) in assign.iter_mut().enumerate() {
                let row = x.row(i);
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for c in 0..k {
                    let d = sq_dist(row, centers.row(c));
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let mut sums = Tensor::zeros([k, f]);
            let mut counts = vec![0usize; k];
            for i in 0..n {
                counts[assign[i]] += 1;
                for (s, &v) in sums.row_mut(assign[i]).iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            for (c, &count) in counts.iter().enumerate() {
                if count > 0 {
                    let inv = 1.0 / count as f32;
                    for (dst, &s) in centers.row_mut(c).iter_mut().zip(sums.row(c)) {
                        *dst = s * inv;
                    }
                }
            }
        }
        let inertia: f32 = (0..n)
            .map(|i| sq_dist(x.row(i), centers.row(assign[i])))
            .sum();
        (assign, inertia)
    }

    pub fn fit_predict(k: usize, restarts: usize, seed: u64, x: &Tensor) -> Vec<usize> {
        let mut rng = seeded(seed);
        let mut best: Option<(Vec<usize>, f32)> = None;
        for _ in 0..restarts.max(1) {
            let init = plus_plus_init(k, x, &mut rng);
            let run = lloyd(100, x, init);
            match &best {
                Some((_, bi)) if *bi <= run.1 => {}
                _ => best = Some(run),
            }
        }
        best.expect("at least one restart").0
    }
}

/// The old affinity-pass distance loop from `explore::tsne`: scalar sums
/// over the upper triangle with symmetric writes.
fn naive_affinity_matrix(x: &Tensor) -> Vec<f32> {
    let (n, f) = (x.rows(), x.cols());
    let mut d2 = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0f32;
            for d in 0..f {
                let diff = x.at2(i, d) - x.at2(j, d);
                s += diff * diff;
            }
            d2[i * n + j] = s;
            d2[j * n + i] = s;
        }
    }
    d2
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let reps = if smoke { 1 } else { 3 };
    // N ≥ 2000 representation rows in full mode, per the roadmap's
    // "analysis at interactive scale" target.
    let (n_train_per, n_query_per, n_tsne_per, dim) = if smoke {
        (86, 22, 64, 32)
    } else {
        (683, 171, 683, 128)
    };
    let classes = 3;
    let k = 5;

    let mut entries = Vec::new();

    // --- Case 1: k-NN classifier predict -------------------------------
    {
        let (train_x, train_y) = blobs(classes, n_train_per, dim, 4.0, 21);
        let (query_x, _) = blobs(classes, n_query_per, dim, 4.0, 22);
        let naive = run_leg(reps, || naive_knn_predict(&train_x, &train_y, &query_x, k));
        let mut clf = KnnClassifier::new(k);
        clf.fit(&train_x, &train_y)
            .expect("bench features are well-formed");
        let blocked = run_leg(reps, || {
            clf.predict(&query_x)
                .expect("bench features are well-formed")
        });
        let labels_identical = naive.value == blocked.value;
        assert!(
            labels_identical,
            "knn_predict: blocked engine changed predicted labels"
        );
        let speedup = naive.best_secs / blocked.best_secs;
        if !smoke {
            assert!(
                speedup >= 2.0,
                "knn_predict: blocked leg only {speedup:.2}x over naive (need >= 2x)"
            );
            assert!(
                blocked.allocs.peak_extra < naive.allocs.peak_extra,
                "knn_predict: heap-bounded top-k peak allocation ({:.4} MiB) is not below \
                 the naive full-matrix leg ({:.4} MiB)",
                blocked.allocs.peak_extra_mb(),
                naive.allocs.peak_extra_mb()
            );
        }
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"case\":\"knn_predict\",\"n_train\":{},\"n_query\":{},\"dim\":{},\"k\":{},\"naive\":{},\"blocked\":{},\"speedup\":{:.2},\"labels_identical\":{}}}",
            train_x.rows(),
            query_x.rows(),
            dim,
            k,
            leg_json(&naive),
            leg_json(&blocked),
            speedup,
            labels_identical
        );
        println!("{e}");
        entries.push(e);
    }

    // --- Case 2: k-means fit_predict -----------------------------------
    {
        let (x, _) = blobs(classes, n_train_per, dim, 6.0, 31);
        let naive = run_leg(reps, || naive_kmeans::fit_predict(classes, 4, 0, &x));
        let blocked = run_leg(reps, || {
            KMeans::new(classes)
                .fit_predict(&x)
                .expect("bench features are well-formed")
        });
        let agreement = nmi(&naive.value, &blocked.value);
        let speedup = naive.best_secs / blocked.best_secs;
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"case\":\"kmeans_fit\",\"n\":{},\"dim\":{},\"k_clusters\":{},\"naive\":{},\"blocked\":{},\"speedup\":{:.2},\"agreement_nmi\":{:.4}}}",
            x.rows(),
            dim,
            classes,
            leg_json(&naive),
            leg_json(&blocked),
            speedup,
            agreement
        );
        println!("{e}");
        entries.push(e);
    }

    // --- Case 3: t-SNE affinity distances ------------------------------
    {
        let (x, _) = blobs(classes, n_tsne_per, dim, 5.0, 41);
        let naive = run_leg(reps, || naive_affinity_matrix(&x));
        let blocked = run_leg(reps, || pairdist(&x, &x));
        let n = x.rows();
        // Agreement relative to the matrix scale (the norms identity
        // cancels catastrophically on individual small distances, so
        // per-element relative error is not the meaningful figure).
        let scale = naive.value.iter().fold(1.0f32, |acc, &v| acc.max(v.abs())) as f64;
        let mut max_rel = 0.0f64;
        for i in 0..n {
            for (j, &nv) in naive.value[i * n..(i + 1) * n].iter().enumerate() {
                let bv = blocked.value.at2(i, j);
                max_rel = max_rel.max((nv - bv).abs() as f64 / scale);
            }
        }
        assert!(
            max_rel < 1e-4,
            "tsne_affinities: blocked matrix drifts from naive ({max_rel:.2e} of matrix scale)"
        );
        let speedup = naive.best_secs / blocked.best_secs;
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"case\":\"tsne_affinities\",\"n\":{},\"dim\":{},\"naive\":{},\"blocked\":{},\"speedup\":{:.2},\"max_rel_diff\":{:.3e}}}",
            n,
            dim,
            leg_json(&naive),
            leg_json(&blocked),
            speedup,
            max_rel
        );
        println!("{e}");
        entries.push(e);
    }

    // --- Case 4: pairdist fan-out mode (persistent pool vs scoped spawn)
    {
        let (x, _) = blobs(classes, n_tsne_per, dim, 5.0, 51);
        // The default thread count on a 1-core host is 1 (serial — no
        // fan-out at all), so pin an explicit count: one context per core,
        // oversubscribed to 4 on 1-core hosts, matching bench_pretrain.
        let threads = if host_cores > 1 { host_cores } else { 4 };
        std::env::set_var("TCSL_THREADS", threads.to_string());
        let pooled = run_leg(reps, || pairdist(&x, &x));
        std::env::set_var("TCSL_POOL", "scoped");
        let scoped = run_leg(reps, || pairdist(&x, &x));
        std::env::remove_var("TCSL_POOL");
        std::env::remove_var("TCSL_THREADS");
        // Row-block ownership is a function of the chunk index alone, so
        // the fan-out mechanism must never show up in the output bits.
        let matrices_identical = pooled.value == scoped.value;
        assert!(
            matrices_identical,
            "pairdist_pool_modes: persistent-pool and scoped-spawn matrices differ"
        );
        let pool_vs_scoped = scoped.best_secs / pooled.best_secs;
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"case\":\"pairdist_pool_modes\",\"n\":{},\"dim\":{},\"threads\":{},\"pooled\":{},\"scoped\":{},\"pool_vs_scoped\":{:.2},\"matrices_identical\":{}}}",
            x.rows(),
            dim,
            threads,
            leg_json(&pooled),
            leg_json(&scoped),
            pool_vs_scoped,
            matrices_identical
        );
        println!("{e}");
        entries.push(e);
    }

    let report = format!(
        "{{\"bench\":\"analyze\",\"schema_version\":{},\"host_cores\":{},\"smoke\":{},\"unit_note\":\"naive = pre-engine scalar distance paths (full-matrix scan for kNN, per-point scans for k-means, double loop for affinities); blocked = pairdist engine (norms + AVX2/FMA dot kernels, heap-bounded top-k for kNN); secs are min over {} runs; peak_alloc_mb = high-water mark above pre-call live bytes (min over runs); labels_identical = blocked kNN predictions bit-equal to the naive scan; agreement_nmi compares k-means assignments (k-means++ picks may round differently); pairdist_pool_modes = the same pairdist call fanned out on the persistent pool vs TCSL_POOL=scoped per-call spawning at an explicit thread count, matrices asserted bit-identical\",\"cases\":[\n  {}\n]}}\n",
        tcsl_bench::contract::SCHEMA_VERSION,
        host_cores,
        smoke,
        reps,
        entries.join(",\n  ")
    );
    tcsl_bench::contract::write_report(
        "BENCH_analyze.json",
        "analyze",
        &report,
        &[
            "cases[].speedup",
            "cases[].blocked.peak_alloc_mb",
            "cases[].labels_identical=true",
            "cases[].matrices_identical=true",
        ],
    );
}

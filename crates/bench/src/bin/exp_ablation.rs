//! E6 (extension) — ablations of CSL's design choices, the decisions the
//! research paper motivates: multi-scale banks, multiple (dis)similarity
//! measures, multi-grained contrasting, the multi-scale alignment term, and
//! data-driven shapelet initialization.
//!
//! For each variant, the freeze-mode SVM accuracy is averaged over three
//! archive datasets.
//!
//! Usage: `cargo run -p tcsl-bench --release --bin exp_ablation`

use tcsl_analyzers::classify::LinearSvm;
use tcsl_analyzers::Classifier;
use tcsl_core::{pretrain, CslConfig};
use tcsl_data::archive;
use tcsl_eval::metrics::classification::accuracy;
use tcsl_eval::Table;
use tcsl_shapelet::init::init_from_data;
use tcsl_shapelet::transform::transform_dataset;
use tcsl_shapelet::{Measure, ShapeletBank, ShapeletConfig};
use tcsl_tensor::rng::seeded;

const DATASETS: [&str; 3] = ["MotifMulti", "GestureSmall", "PeriodicWave"];
const SEED: u64 = 9;

struct Variant {
    name: &'static str,
    shapelet: fn(usize) -> ShapeletConfig,
    csl: fn() -> CslConfig,
    random_init: bool,
}

fn base_shapelets(t: usize) -> ShapeletConfig {
    ShapeletConfig::adaptive(t)
}

fn base_csl() -> CslConfig {
    CslConfig {
        epochs: 10,
        batch_size: 16,
        seed: SEED,
        ..Default::default()
    }
}

fn main() {
    let variants: Vec<Variant> = vec![
        Variant {
            name: "full CSL",
            shapelet: base_shapelets,
            csl: base_csl,
            random_init: false,
        },
        Variant {
            name: "no alignment (λ=0)",
            shapelet: base_shapelets,
            csl: || CslConfig {
                alignment_weight: 0.0,
                ..base_csl()
            },
            random_init: false,
        },
        Variant {
            name: "single grain (1.0)",
            shapelet: base_shapelets,
            csl: || CslConfig {
                grains: vec![1.0],
                ..base_csl()
            },
            random_init: false,
        },
        Variant {
            name: "euclidean only",
            shapelet: |t| ShapeletConfig {
                measures: vec![Measure::Euclidean],
                ..base_shapelets(t)
            },
            csl: base_csl,
            random_init: false,
        },
        Variant {
            name: "single scale (0.2T)",
            shapelet: |t| {
                let len = ((t as f32) * 0.2).ceil() as usize;
                ShapeletConfig {
                    lengths: vec![len.max(3)],
                    ..base_shapelets(t)
                }
            },
            csl: base_csl,
            random_init: false,
        },
        Variant {
            name: "K=3 per group",
            shapelet: |t| ShapeletConfig {
                k_per_group: 3,
                ..base_shapelets(t)
            },
            csl: base_csl,
            random_init: false,
        },
        Variant {
            name: "random init",
            shapelet: base_shapelets,
            csl: base_csl,
            random_init: true,
        },
        Variant {
            name: "no training (init only)",
            shapelet: base_shapelets,
            csl: || CslConfig {
                epochs: 1,
                learning_rate: 1e-9,
                ..base_csl()
            },
            random_init: false,
        },
    ];

    let mut table = Table::new(
        &std::iter::once("variant")
            .chain(DATASETS.iter().copied())
            .chain(std::iter::once("mean"))
            .collect::<Vec<_>>(),
    );
    for v in &variants {
        let mut scores = Vec::new();
        for name in DATASETS {
            let entry = archive::by_name(name).expect("dataset");
            let (train, test) = archive::generate_split(&entry, SEED);
            let normed_train = train.znormed();
            let scfg = (v.shapelet)(normed_train.max_len());
            let mut bank = ShapeletBank::new(&scfg, normed_train.n_vars());
            if v.random_init {
                bank.randomize(&mut seeded(SEED));
            } else {
                init_from_data(&mut bank, &normed_train, 4, &mut seeded(SEED));
            }
            pretrain(&mut bank, &normed_train, &(v.csl)());
            let ztr =
                transform_dataset(&bank, &normed_train).expect("ablation datasets are well-formed");
            let zte = transform_dataset(&bank, &test.znormed())
                .expect("ablation datasets are well-formed");
            let mut svm = LinearSvm::new();
            svm.fit(&ztr, train.labels().unwrap())
                .expect("ablation features are well-formed");
            let pred = svm
                .predict(&zte)
                .expect("ablation features are well-formed");
            scores.push(accuracy(&pred, test.labels().unwrap()));
        }
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let mut row = scores;
        row.push(mean);
        table.row_metric(v.name, &row);
        println!("  finished variant: {}", v.name);
    }
    println!("\n=== E6: CSL design ablations (freeze-mode SVM accuracy) ===");
    println!("{}", table.to_ascii());
    println!(
        "expected shape: the full configuration is at or near the top; dropping\n\
         scales/measures or skipping training costs accuracy, data-driven init\n\
         beats random init."
    );
}

//! E5 — renders the paper's **Figure 3** panels headlessly: (a) raw series,
//! (b) shapelet↔subsequence match, (c) learned shapelets, (d) tabular
//! feature view with per-shapelet sorting, (e) t-SNE of the representation.
//! Output: SVG/text files under `target/fig3/`.
//!
//! Usage: `cargo run -p tcsl-bench --release --bin exp_explore_render`

use std::fs;
use std::path::PathBuf;
use tcsl_core::{CslConfig, TimeCsl};
use tcsl_data::archive;
use tcsl_explore::{svg, ExploreSession, TsneConfig};

fn main() -> std::io::Result<()> {
    let out = PathBuf::from("target/fig3");
    fs::create_dir_all(&out)?;

    let entry = archive::by_name("GestureFull").expect("archive entry");
    let (train, test) = archive::generate_split(&entry, 31);
    let csl_cfg = CslConfig {
        epochs: 10,
        batch_size: 16,
        seed: 5,
        ..Default::default()
    };
    let (model, report) = TimeCsl::pretrain(&train, None, &csl_cfg);

    fs::write(
        out.join("learning_curve.svg"),
        svg::learning_curve_chart(&report.epoch_total, "CSL training loss (step 2 diagnostic)"),
    )?;

    let session = ExploreSession::new(model, test.clone()).expect("fig3 render inputs are valid");

    // (a) raw time series — a few per class.
    for i in [0usize, 10, 20] {
        fs::write(
            out.join(format!("a_series_{i}.svg")),
            session
                .render_series(i)
                .expect("fig3 render inputs are valid"),
        )?;
    }
    // (c) learned shapelets — one per scale.
    let scales = session.model().bank().scales();
    for (si, len) in scales.iter().enumerate() {
        // First feature column of that scale.
        let col = session
            .model()
            .bank()
            .scale_columns()
            .into_iter()
            .find(|(l, _)| l == len)
            .map(|(_, r)| r.start)
            .unwrap();
        fs::write(
            out.join(format!("c_shapelet_scale{si}_len{len}.svg")),
            session
                .render_shapelet(col)
                .expect("fig3 render inputs are valid"),
        )?;
    }
    // (b) the Match button.
    let m = session
        .match_shapelet(0, 0)
        .expect("fig3 render inputs are valid");
    println!(
        "match: shapelet 0 ↔ series 0 at t={}..{} ({} {:.4})",
        m.start,
        m.start + m.len,
        m.measure.name(),
        m.score
    );
    fs::write(
        out.join("b_match.svg"),
        session
            .render_match(0, 0)
            .expect("fig3 render inputs are valid"),
    )?;

    // (d) tabular view, sorted by the first euclidean shapelet.
    let table = session
        .tabular(Some(&[0, 1, 2, 3, 4, 5]))
        .expect("fig3 render inputs are valid");
    let order = table.sort_by(0, true);
    fs::write(out.join("d_tabular.txt"), table.render(Some(&order)))?;

    // (e) t-SNE of the full representation, coloured by class.
    let cfg = TsneConfig {
        iterations: 300,
        ..Default::default()
    };
    fs::write(
        out.join("e_tsne.svg"),
        session
            .render_tsne(None, &cfg)
            .expect("fig3 render inputs are valid"),
    )?;

    println!("Figure 3 panels written to {}", out.display());
    Ok(())
}

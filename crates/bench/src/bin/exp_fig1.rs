//! E1 — regenerates the paper's **Figure 1**: the aggregate comparison of
//! CSL against the competitors along five axes (classification, clustering,
//! anomaly detection, long-series representation, training efficiency),
//! reported as per-dataset scores plus average ranks (smaller = better).
//!
//! Usage:
//! ```text
//! cargo run -p tcsl-bench --release --bin exp_fig1 -- [classification|clustering|anomaly|long|efficiency|all]
//! ```

use tcsl_bench::harness::{run_anomaly_entry, run_classification_entry, run_long_entry};
use tcsl_data::archive;
use tcsl_eval::ranking::{average_ranks, Direction};
use tcsl_eval::Table;

const SEED: u64 = 2024;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "classification" => classification_and_friends(true, false, false),
        "clustering" => classification_and_friends(false, true, false),
        "efficiency" => classification_and_friends(false, false, true),
        "anomaly" => anomaly(),
        "long" => long(),
        "all" => {
            classification_and_friends(true, true, true);
            anomaly();
            long();
        }
        other => {
            eprintln!(
                "unknown axis '{other}'; use classification|clustering|anomaly|long|efficiency|all"
            );
            std::process::exit(2);
        }
    }
}

/// The classification suite drives three Figure-1 axes at once: accuracy
/// (E1a), clustering NMI (E1b) and training time (E1e).
fn classification_and_friends(do_acc: bool, do_nmi: bool, do_eff: bool) {
    let entries = archive::classification_suite();
    println!(
        "\n=== Figure 1: classification suite ({} datasets) ===",
        entries.len()
    );
    let results: Vec<_> = entries
        .iter()
        .map(|e| {
            let r = run_classification_entry(e, SEED);
            println!("  finished {}", r.dataset);
            r
        })
        .collect();
    let methods = results[0].methods.clone();

    if do_acc {
        println!("\n--- E1a: classification accuracy (freeze-mode SVM; DTW-1NN raw) ---");
        let mut table = Table::new(
            &std::iter::once("dataset")
                .chain(methods.iter().copied())
                .collect::<Vec<_>>(),
        );
        for r in &results {
            table.row_metric(&r.dataset, &r.accuracy);
        }
        println!("{}", table.to_ascii());
        let scores: Vec<Vec<f64>> = results.iter().map(|r| r.accuracy.clone()).collect();
        print_ranks("accuracy", &methods, &scores, Direction::HigherIsBetter);
    }

    if do_nmi {
        println!("\n--- E1b: clustering NMI (k-means on representations; DTW excluded) ---");
        let repr_methods: Vec<&str> = methods[..5].to_vec();
        let mut table = Table::new(
            &std::iter::once("dataset")
                .chain(repr_methods.iter().copied())
                .collect::<Vec<_>>(),
        );
        for r in &results {
            table.row_metric(&r.dataset, &r.nmi[..5]);
        }
        println!("{}", table.to_ascii());
        let scores: Vec<Vec<f64>> = results.iter().map(|r| r.nmi[..5].to_vec()).collect();
        print_ranks("NMI", &repr_methods, &scores, Direction::HigherIsBetter);
    }

    if do_eff {
        println!("\n--- E1e: training efficiency (pre-training seconds, equal epochs) ---");
        let trained: Vec<&str> = vec![methods[0], methods[1], methods[2], methods[3]];
        let mut table = Table::new(
            &std::iter::once("dataset")
                .chain(trained.iter().copied())
                .collect::<Vec<_>>(),
        );
        for r in &results {
            table.row_metric(&r.dataset, &r.train_time[..4]);
        }
        println!("{}", table.to_ascii());
        let scores: Vec<Vec<f64>> = results.iter().map(|r| r.train_time[..4].to_vec()).collect();
        print_ranks("train time", &trained, &scores, Direction::LowerIsBetter);
    }
}

/// E1c: anomaly detection — isolation forest over each representation.
fn anomaly() {
    let entries = archive::anomaly_suite();
    println!(
        "\n=== Figure 1: anomaly-detection suite ({} datasets) ===",
        entries.len()
    );
    let mut all_scores = Vec::new();
    let mut methods: Vec<&str> = Vec::new();
    let mut table: Option<Table> = None;
    for e in &entries {
        let (name, ms, aucs) = run_anomaly_entry(e, SEED);
        if table.is_none() {
            methods = ms.clone();
            table = Some(Table::new(
                &std::iter::once("dataset")
                    .chain(ms.iter().copied())
                    .collect::<Vec<_>>(),
            ));
        }
        table.as_mut().unwrap().row_metric(&name, &aucs);
        all_scores.push(aucs);
        println!("  finished {name}");
    }
    println!("\n--- E1c: anomaly ROC-AUC (isolation forest on representations) ---");
    println!("{}", table.unwrap().to_ascii());
    print_ranks("AUC", &methods, &all_scores, Direction::HigherIsBetter);
}

/// E1d: long-series representation — accuracy and total time vs T.
fn long() {
    let entries = archive::long_suite();
    println!(
        "\n=== Figure 1: long-series suite ({} datasets) ===",
        entries.len()
    );
    let mut acc_scores = Vec::new();
    let mut time_scores = Vec::new();
    let mut methods: Vec<&str> = Vec::new();
    let mut acc_table: Option<Table> = None;
    let mut time_table: Option<Table> = None;
    for e in &entries {
        let r = run_long_entry(e, SEED);
        if acc_table.is_none() {
            methods = r.methods.clone();
            let headers: Vec<&str> = std::iter::once("dataset")
                .chain(methods.iter().copied())
                .collect();
            acc_table = Some(Table::new(&headers));
            time_table = Some(Table::new(&headers));
        }
        acc_table
            .as_mut()
            .unwrap()
            .row_metric(&r.dataset, &r.accuracy);
        time_table
            .as_mut()
            .unwrap()
            .row_metric(&r.dataset, &r.total_time);
        acc_scores.push(r.accuracy);
        time_scores.push(r.total_time);
        println!("  finished {}", r.dataset);
    }
    println!("\n--- E1d: long-series accuracy ---");
    println!("{}", acc_table.unwrap().to_ascii());
    print_ranks("accuracy", &methods, &acc_scores, Direction::HigherIsBetter);
    println!("--- E1d: long-series total wall time (train+encode+classify, s) ---");
    println!("{}", time_table.unwrap().to_ascii());
    print_ranks("time", &methods, &time_scores, Direction::LowerIsBetter);
}

fn print_ranks(metric: &str, methods: &[&str], scores: &[Vec<f64>], dir: Direction) {
    let summary = average_ranks(methods, scores, dir);
    let mut table = Table::new(&["method", "avg rank", "wins"]);
    for (i, m) in summary.methods.iter().enumerate() {
        table.row(vec![
            m.clone(),
            format!("{:.2}", summary.mean_ranks[i]),
            summary.wins[i].to_string(),
        ]);
    }
    println!("average ranks by {metric} (1 = best):");
    println!("{}", table.to_ascii());
    println!("best method: {}\n", summary.methods[summary.best_method()]);
}

//! E3 — regenerates the §2.2 semi-supervised study (§5.5 of the CSL
//! paper): fine-tuned CSL (unsupervised pre-training on all series + joint
//! fine-tuning on the labeled fraction) against a supervised CNN trained
//! from scratch, across label fractions. The paper reports CSL ahead by
//! 7–10% below 20% labels, with the gap closing as labels grow.
//!
//! Usage: `cargo run -p tcsl-bench --release --bin exp_semisup`

use tcsl_baselines::fcn::FcnConfig;
use tcsl_baselines::{CnnArch, SupervisedCnn};
use tcsl_bench::harness::{labeled_fraction, svm_accuracy};
use tcsl_core::{CslConfig, FineTuneConfig, TimeCsl};
use tcsl_data::archive;
use tcsl_eval::metrics::classification::accuracy;
use tcsl_eval::Table;

const FRACTIONS: [f32; 5] = [0.05, 0.1, 0.2, 0.5, 1.0];

fn main() {
    // GestureSmall: 4 classes — a scale at which the from-scratch CNN is a
    // competent ceiling at 100% labels, so the *convergence* of the gap is
    // visible (on the 8-class variant the small CNN never gets off the
    // ground and the comparison degenerates).
    let entry = archive::by_name("GestureSmall").expect("archive entry");
    let (train, test) = archive::generate_split(&entry, 71);
    let yte = test.labels().unwrap();
    println!(
        "E3: {} train / {} test, {} classes; label fractions {FRACTIONS:?}",
        train.len(),
        test.len(),
        train.n_classes()
    );

    // Pre-train once on everything, unlabeled.
    let csl_cfg = CslConfig {
        epochs: 12,
        batch_size: 16,
        seed: 2,
        ..Default::default()
    };
    let (pretrained, _) = TimeCsl::pretrain(&train, None, &csl_cfg);

    let mut table = Table::new(&[
        "labels",
        "fine-tuned CSL",
        "freeze CSL + SVM",
        "supervised CNN",
        "CSL - CNN gap",
    ]);
    for frac in FRACTIONS {
        let labeled = labeled_fraction(&train, frac, 42 + (frac * 1000.0) as u64);

        // Fine-tuning mode.
        let mut model = pretrained.clone();
        let (head, _) = model.fine_tune(
            &labeled,
            &FineTuneConfig {
                epochs: 25,
                seed: 2,
                ..Default::default()
            },
        );
        let zte = model
            .transform(&test)
            .expect("bench datasets are well-formed");
        let ft_acc = accuracy(&head.predict(&zte), yte);

        // Freeze mode on the same labeled set (ablation: how much does
        // fine-tuning add?).
        let frz_acc = svm_accuracy(
            &pretrained
                .transform(&labeled)
                .expect("bench datasets are well-formed"),
            labeled.labels().unwrap(),
            &pretrained
                .transform(&test)
                .expect("bench datasets are well-formed"),
            yte,
        );

        // Supervised CNN from scratch on the labeled fraction only.
        let mut fcn = SupervisedCnn::new(
            train.n_vars(),
            train.n_classes(),
            CnnArch {
                hidden: 24,
                out: 48,
                kernel: 3,
                dilations: vec![1, 2, 4, 8],
            },
            FcnConfig {
                epochs: 40,
                seed: 2,
                ..Default::default()
            },
        );
        fcn.fit(&labeled.znormed());
        let fcn_acc = accuracy(&fcn.predict(&test.znormed()), yte);

        table.row(vec![
            format!("{:.0}%", frac * 100.0),
            format!("{ft_acc:.3}"),
            format!("{frz_acc:.3}"),
            format!("{fcn_acc:.3}"),
            format!("{:+.3}", ft_acc - fcn_acc),
        ]);
        println!("  finished fraction {:.0}%", frac * 100.0);
    }
    println!("\n{}", table.to_ascii());
    println!(
        "paper shape: fine-tuned CSL ahead of the supervised method by a clear\n\
         margin below 20% labels (paper: 7-10%), converging as labels grow."
    );
}

//! Transform benchmark trajectory: naive (unfold + matmul oracle) vs the
//! fused streaming kernel, with wall-clock throughput and allocator
//! pressure per series.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p tcsl-bench --bin bench_transform
//! ```
//!
//! Prints a one-line JSON summary per configuration and writes the full
//! report to `BENCH_transform.json` (see EXPERIMENTS.md for the format).

use std::fmt::Write as _;

use tcsl_bench::alloc_track::{alloc_profile, CountingAlloc};
use tcsl_data::TimeSeries;
use tcsl_obs::spans::Stopwatch;
use tcsl_shapelet::transform::{transform_series, transform_series_oracle};
use tcsl_shapelet::{ShapeletBank, ShapeletConfig};
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Seconds per call: the fastest of 5 batches, each sized to ~0.2s.
/// Min-of-batches filters out scheduling noise from shared machines, which
/// would otherwise dominate the naive/fused ratio run to run.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm-up (page in buffers, populate the bank cache)
    let probe = Stopwatch::start("bench.transform_probe");
    f();
    let once = probe.stop();
    let iters = ((0.2 / once.max(1e-9)) as usize).clamp(2, 4_000);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let watch = Stopwatch::start("bench.transform_batch");
        for _ in 0..iters {
            f();
        }
        best = best.min(watch.stop() / iters as f64);
    }
    best
}

struct EngineReport {
    secs_per_series: f64,
    series_per_sec: f64,
    peak_extra_mb: f64,
    total_mb_per_series: f64,
    bytes_streamed_per_series: u64,
}

fn profile_engine<F: FnMut()>(mut f: F, bytes_streamed: u64) -> EngineReport {
    let secs = time_per_call(&mut f);
    let ((), allocs) = alloc_profile(&mut f);
    EngineReport {
        secs_per_series: secs,
        series_per_sec: 1.0 / secs,
        peak_extra_mb: allocs.peak_extra_mb(),
        total_mb_per_series: allocs.total_mb(),
        bytes_streamed_per_series: bytes_streamed,
    }
}

fn engine_json(r: &EngineReport) -> String {
    format!(
        "{{\"ms_per_series\":{:.4},\"series_per_sec\":{:.2},\"peak_alloc_mb\":{:.4},\"total_alloc_mb_per_series\":{:.4},\"bytes_streamed_per_series\":{}}}",
        r.secs_per_series * 1e3,
        r.series_per_sec,
        r.peak_extra_mb,
        r.total_mb_per_series,
        r.bytes_streamed_per_series
    )
}

/// Modeled bytes of tap + window traffic one transform call streams, per
/// series (the quantity the quantized bank halves on the tap side). Fused:
/// every window re-reads all `K` tap rows (`tap_bytes` each) and is itself
/// read once per 4-shapelet block. Naive: the unfold writes + matmul reads
/// the window matrix, and the matmul streams the f32 tap matrix once per
/// window row.
fn modeled_bytes_streamed(bank: &ShapeletBank, t: usize, tap_elt_bytes: usize, naive: bool) -> u64 {
    let mut total = 0u64;
    for g in bank.groups() {
        let width = bank.d * g.len;
        let n = tcsl_tensor::window::count_windows(t.max(g.len), g.len, g.stride) as u64;
        total += if naive {
            // unfold write + matmul read of each window row, f32 taps
            // re-streamed per window.
            n * (width as u64) * 8 + n * (g.k() * width) as u64 * 4
        } else {
            n * (g.k() * width * tap_elt_bytes) as u64 + n * (g.k().div_ceil(4) * width) as u64 * 4
        };
    }
    total
}

struct Case {
    label: &'static str,
    t: usize,
    d: usize,
    cfg: ShapeletConfig,
}

fn main() {
    // The headline configuration of the acceptance criteria — the paper's
    // adaptive config (lengths p·T for p up to 0.8, K=10, stride 1) on a
    // 4096-step series — plus smaller grid points for the trajectory.
    let cases = vec![
        Case {
            label: "adaptive_T512_d1",
            t: 512,
            d: 1,
            cfg: ShapeletConfig::adaptive(512),
        },
        Case {
            label: "adaptive_T1024_d3",
            t: 1024,
            d: 3,
            cfg: ShapeletConfig::adaptive(1024),
        },
        Case {
            label: "adaptive_T4096_d1",
            t: 4096,
            d: 1,
            cfg: ShapeletConfig::adaptive(4096),
        },
        Case {
            label: "capped256_T4096_d1",
            t: 4096,
            d: 1,
            cfg: ShapeletConfig::adaptive_long(4096, 256),
        },
    ];

    let mut entries = Vec::new();
    for case in &cases {
        let mut rng = seeded(7);
        let mut bank = ShapeletBank::new(&case.cfg, case.d);
        bank.randomize(&mut rng);
        let series = TimeSeries::new(Tensor::randn([case.d, case.t], &mut rng));

        let naive = profile_engine(
            || {
                std::hint::black_box(transform_series_oracle(&bank, &series));
            },
            modeled_bytes_streamed(&bank, case.t, 4, true),
        );
        let fused = profile_engine(
            || {
                std::hint::black_box(
                    transform_series(&bank, &series).expect("bench series are well-formed"),
                );
            },
            modeled_bytes_streamed(&bank, case.t, 4, false),
        );
        let speedup = naive.secs_per_series / fused.secs_per_series;

        let mut entry = String::new();
        let _ = write!(
            entry,
            "{{\"case\":\"{}\",\"t\":{},\"d\":{},\"stride\":{},\"lengths\":{:?},\"k_per_group\":{},\"naive\":{},\"fused\":{},\"speedup\":{:.2}}}",
            case.label,
            case.t,
            case.d,
            case.cfg.stride,
            case.cfg.lengths,
            case.cfg.k_per_group,
            engine_json(&naive),
            engine_json(&fused),
            speedup
        );
        println!("{entry}");
        entries.push(entry);
    }

    let report = format!(
        "{{\"bench\":\"transform\",\"schema_version\":{},\"unit_note\":\"naive = unfold+matmul oracle, fused = streaming kernel; peak_alloc_mb = high-water mark above pre-call live bytes\",\"cases\":[\n  {}\n]}}\n",
        tcsl_bench::contract::SCHEMA_VERSION,
        entries.join(",\n  ")
    );
    tcsl_bench::contract::write_report(
        "BENCH_transform.json",
        "transform",
        &report,
        &[
            "cases[].speedup",
            "cases[].naive.ms_per_series",
            "cases[].fused.ms_per_series",
            "cases[].fused.peak_alloc_mb",
            "cases[].fused.bytes_streamed_per_series",
        ],
    );
}

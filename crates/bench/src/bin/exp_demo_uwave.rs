//! E2 — regenerates the §3 demonstration walkthrough on the gesture data
//! (UWaveGestureLibrary stand-in): SVM accuracy when restricting the
//! learned bank to each single shapelet length, then to all lengths.
//!
//! Paper's reported numbers: 0.75 @ L=31, 0.85 @ L=97, 0.89 @ L=188,
//! 0.91 with all shapelets — accuracy grows with shapelet length and the
//! full multi-scale bank is best. The *shape* of that curve is what this
//! binary reproduces.
//!
//! Usage: `cargo run -p tcsl-bench --release --bin exp_demo_uwave`

use tcsl_bench::harness::svm_accuracy;
use tcsl_core::{CslConfig, TimeCsl};
use tcsl_data::archive;
use tcsl_eval::Table;

fn main() {
    let entry = archive::by_name("GestureFull").expect("archive entry");
    let (train, test) = archive::generate_split(&entry, 31);
    println!(
        "E2: gesture dataset (UWave stand-in): {} train / {} test, D={}, {} classes, T={}",
        train.len(),
        test.len(),
        train.n_vars(),
        train.n_classes(),
        train.max_len()
    );

    let csl_cfg = CslConfig {
        epochs: 12,
        batch_size: 16,
        seed: 1,
        ..Default::default()
    };
    let (model, report) = TimeCsl::pretrain(&train, None, &csl_cfg);
    println!(
        "pre-trained {} shapelets over scales {:?} in {:.2?}\n",
        model.repr_dim(),
        model.bank().scales(),
        report.wall_time
    );

    let ytr = train.labels().unwrap();
    let yte = test.labels().unwrap();
    let mut table = Table::new(&["shapelet selection", "SVM accuracy", "paper (shape)"]);
    let paper = ["0.75 (L=31)", "0.85 (L=97)", "—", "0.89 (L=188)"];
    let mut per_scale = Vec::new();
    for (i, len) in model.bank().scales().into_iter().enumerate() {
        let sub = model.with_scale(len).expect("model has this scale");
        let acc = svm_accuracy(
            &sub.transform(&train).expect("uwave data is well-formed"),
            ytr,
            &sub.transform(&test).expect("uwave data is well-formed"),
            yte,
        );
        per_scale.push(acc);
        table.row(vec![
            format!("length {len} only"),
            format!("{acc:.3}"),
            paper.get(i).unwrap_or(&"—").to_string(),
        ]);
    }
    let all = svm_accuracy(
        &model.transform(&train).expect("uwave data is well-formed"),
        ytr,
        &model.transform(&test).expect("uwave data is well-formed"),
        yte,
    );
    table.row(vec![
        "ALL shapelets".into(),
        format!("{all:.3}"),
        "0.91".into(),
    ]);
    println!("{}", table.to_ascii());

    let monotone = per_scale.windows(2).all(|w| w[1] >= w[0] - 0.02);
    println!(
        "shape check: accuracy non-decreasing with length: {}",
        if monotone { "YES" } else { "NO" }
    );
    println!(
        "shape check: all-scales ({all:.3}) >= best single scale ({:.3}): {}",
        per_scale.iter().copied().fold(0.0f64, f64::max),
        if all >= per_scale.iter().copied().fold(0.0f64, f64::max) - 0.02 {
            "YES"
        } else {
            "NO"
        }
    );
}

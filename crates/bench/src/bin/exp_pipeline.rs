//! E4 — exercises the paper's **Figure 2** pipeline end to end: one
//! unsupervised pre-training run, then classification, clustering and
//! anomaly detection all from the same Shapelet Transformer, in both
//! freezing and fine-tuning modes.
//!
//! Usage: `cargo run -p tcsl-bench --release --bin exp_pipeline`

use tcsl_analyzers::anomaly::{IsolationForest, KnnDistance};
use tcsl_analyzers::classify::{GradientBoosting, KnnClassifier, LinearSvm, LogisticRegression};
use tcsl_analyzers::cluster::{Agglomerative, KMeans};
use tcsl_analyzers::{AnomalyScorer, Classifier, Clusterer};
use tcsl_core::{CslConfig, FineTuneConfig, TimeCsl};
use tcsl_data::archive;
use tcsl_eval::metrics::anomaly::roc_auc;
use tcsl_eval::metrics::classification::accuracy;
use tcsl_eval::metrics::clustering::{adjusted_rand_index, nmi};
use tcsl_eval::Table;

fn main() {
    // --- pre-train once -------------------------------------------------
    let entry = archive::by_name("MotifMulti").expect("archive entry");
    let (train, test) = archive::generate_split(&entry, 4);
    println!(
        "E4: unified pipeline on {} ({} train / {} test, {} classes)",
        entry.name,
        train.len(),
        test.len(),
        train.n_classes()
    );
    let csl_cfg = CslConfig {
        epochs: 12,
        batch_size: 16,
        seed: 4,
        ..Default::default()
    };
    let (model, report) = TimeCsl::pretrain(&train, None, &csl_cfg);
    println!(
        "pre-trained {} shapelets in {:.2?} ({} steps)\n",
        model.repr_dim(),
        report.wall_time,
        report.n_steps
    );

    let ztr = model
        .transform(&train)
        .expect("pipeline demo data is well-formed");
    let zte = model
        .transform(&test)
        .expect("pipeline demo data is well-formed");
    let ytr = train.labels().unwrap();
    let yte = test.labels().unwrap();

    // --- freezing mode: swap analyzers freely ---------------------------
    println!("--- freezing mode: classification analyzers on the same features ---");
    let mut table = Table::new(&["analyzer", "accuracy"]);
    let analyzers: Vec<(&str, Box<dyn Classifier>)> = vec![
        ("SVM", Box::new(LinearSvm::new())),
        ("logistic regression", Box::new(LogisticRegression::new())),
        ("3-NN", Box::new(KnnClassifier::new(3))),
        ("GBDT", Box::new(GradientBoosting::new(20))),
    ];
    for (name, mut clf) in analyzers {
        clf.fit(&ztr, ytr)
            .expect("pipeline demo data is well-formed");
        let pred = clf
            .predict(&zte)
            .expect("pipeline demo data is well-formed");
        table.row(vec![name.into(), format!("{:.3}", accuracy(&pred, yte))]);
    }
    println!("{}", table.to_ascii());

    println!("--- freezing mode: clustering analyzers ---");
    let mut table = Table::new(&["analyzer", "NMI", "ARI"]);
    let mut km = KMeans::new(train.n_classes());
    let assign = km
        .fit_predict(&zte)
        .expect("pipeline demo data is well-formed");
    table.row(vec![
        "k-means".into(),
        format!("{:.3}", nmi(&assign, yte)),
        format!("{:.3}", adjusted_rand_index(&assign, yte)),
    ]);
    let mut ag = Agglomerative::new(train.n_classes());
    let assign = ag
        .fit_predict(&zte)
        .expect("pipeline demo data is well-formed");
    table.row(vec![
        "agglomerative".into(),
        format!("{:.3}", nmi(&assign, yte)),
        format!("{:.3}", adjusted_rand_index(&assign, yte)),
    ]);
    println!("{}", table.to_ascii());

    println!("--- freezing mode: anomaly scorers (imposter noise series) ---");
    let mut rng = tcsl_tensor::rng::seeded(9);
    let imposters: Vec<tcsl_data::TimeSeries> = (0..20)
        .map(|_| tcsl_data::TimeSeries::new(tcsl_tensor::Tensor::randn([2, 160], &mut rng)))
        .collect();
    let imposter_ds = tcsl_data::Dataset::unlabeled("imposters", imposters);
    let zimp = model
        .transform(&imposter_ds)
        .expect("pipeline demo data is well-formed");
    let truth: Vec<bool> = (0..zte.rows())
        .map(|_| false)
        .chain((0..20).map(|_| true))
        .collect();
    let mut table = Table::new(&["scorer", "ROC-AUC"]);
    for (name, scorer) in [
        (
            "isolation forest",
            &mut (Box::new(IsolationForest::new()) as Box<dyn AnomalyScorer>),
        ),
        (
            "kNN distance",
            &mut (Box::new(KnnDistance::new(5)) as Box<dyn AnomalyScorer>),
        ),
    ] {
        scorer.fit(&ztr).expect("pipeline demo data is well-formed");
        let mut scores = scorer
            .score(&zte)
            .expect("pipeline demo data is well-formed");
        scores.extend(
            scorer
                .score(&zimp)
                .expect("pipeline demo data is well-formed"),
        );
        table.row(vec![
            name.into(),
            format!("{:.3}", roc_auc(&scores, &truth)),
        ]);
    }
    println!("{}", table.to_ascii());

    // --- fine-tuning mode -----------------------------------------------
    println!("--- fine-tuning mode: linear head, shapelets updated jointly ---");
    let mut tuned = model.clone();
    let (head, ft_report) = tuned.fine_tune(
        &train,
        &FineTuneConfig {
            epochs: 15,
            seed: 4,
            ..Default::default()
        },
    );
    let zte_tuned = tuned
        .transform(&test)
        .expect("pipeline demo data is well-formed");
    let acc = accuracy(&head.predict(&zte_tuned), yte);
    println!(
        "fine-tuned accuracy = {acc:.3} (loss {:.4} → {:.4} over {} epochs)",
        ft_report.epoch_loss[0],
        ft_report.epoch_loss.last().unwrap(),
        ft_report.epoch_loss.len()
    );
}

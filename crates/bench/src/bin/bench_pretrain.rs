//! Pre-training benchmark: serial (`TCSL_THREADS=1`) vs data-parallel
//! gradient computation — with a bit-for-bit determinism check between the
//! two legs — plus the fused custom-op training path vs the eager-graph
//! oracle it replaced, with allocator pressure per leg.
//!
//! The parallel leg runs twice: once on the persistent worker pool (the
//! default) and once with `TCSL_POOL=scoped` forcing the old per-call
//! spawn path, with bit-equality asserted across all three legs. A
//! dispatch microbench prices the per-call overhead of each mode (the
//! spawn tax the pool removes), and one instrumented rep collects the
//! pool's per-thread busy-time spans (`pool.worker.NN` / `pool.caller`)
//! into the report.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p tcsl-bench --bin bench_pretrain          # full
//! cargo run --release -p tcsl-bench --bin bench_pretrain -- --smoke
//! ```
//!
//! Prints a one-line JSON summary per configuration and writes the full
//! report to `BENCH_pretrain.json` (see EXPERIMENTS.md for the format).
//!
//! The parallel leg uses one worker per hardware core; on a single-core
//! host it oversubscribes to 4 threads so the multi-thread code path is
//! still exercised (the determinism check is then the interesting result —
//! no speedup is possible, and `host_cores` in the JSON says why).

use std::fmt::Write as _;

use tcsl_bench::alloc_track::{alloc_profile, AllocStats, CountingAlloc};
use tcsl_core::{pretrain, CslConfig, DiffPath, TrainingReport};
use tcsl_data::{archive, Dataset};
use tcsl_obs::spans::Stopwatch;
use tcsl_shapelet::init::init_from_data;
use tcsl_shapelet::{Measure, ShapeletBank, ShapeletConfig};
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One timed leg: the training report, the final shapelets, the best
/// (minimum) wall-clock seconds over `reps` identical runs, and the
/// allocation profile of the best-behaved (minimum-peak) run.
struct Leg {
    report: TrainingReport,
    shapelets: Vec<Tensor>,
    best_secs: f64,
    allocs: AllocStats,
}

fn run_leg(
    threads: usize,
    bank0: &ShapeletBank,
    ds: &Dataset,
    cfg: &CslConfig,
    reps: usize,
) -> Leg {
    // The override is read per parallel_map call, so setting it between
    // runs is race-free in this single-threaded driver.
    std::env::set_var("TCSL_THREADS", threads.to_string());
    let mut best_secs = f64::INFINITY;
    let mut best_allocs: Option<AllocStats> = None;
    let mut out: Option<(TrainingReport, Vec<Tensor>)> = None;
    for _ in 0..reps {
        let mut bank = bank0.clone();
        let watch = Stopwatch::start("bench.pretrain_leg");
        let (report, allocs) = alloc_profile(|| pretrain(&mut bank, ds, cfg));
        best_secs = best_secs.min(watch.stop());
        // Min peak over reps: the steady-state figure, free of one-time
        // lazy initialization in the first run.
        if best_allocs.is_none_or(|b| allocs.peak_extra < b.peak_extra) {
            best_allocs = Some(allocs);
        }
        let shapelets = bank.groups().iter().map(|g| g.shapelets.clone()).collect();
        out = Some((report, shapelets));
    }
    std::env::remove_var("TCSL_THREADS");
    let (report, shapelets) = out.expect("reps >= 1");
    Leg {
        report,
        shapelets,
        best_secs,
        allocs: best_allocs.expect("reps >= 1"),
    }
}

/// Bit-for-bit equality of two legs: every epoch-loss entry and every
/// final shapelet value must match exactly, not approximately.
fn legs_identical(a: &Leg, b: &Leg) -> bool {
    a.report.epoch_total == b.report.epoch_total
        && a.report.epoch_contrast == b.report.epoch_contrast
        && a.report.epoch_align == b.report.epoch_align
        && a.report.epoch_validation == b.report.epoch_validation
        && a.report.n_steps == b.report.n_steps
        && a.shapelets.len() == b.shapelets.len()
        && a.shapelets.iter().zip(&b.shapelets).all(|(x, y)| x == y)
}

fn loss_json(r: &TrainingReport) -> String {
    format!(
        "{{\"first_epoch_total\":{:.6},\"last_epoch_total\":{:.6},\"n_steps\":{}}}",
        r.epoch_total.first().copied().unwrap_or(f32::NAN),
        r.epoch_total.last().copied().unwrap_or(f32::NAN),
        r.n_steps
    )
}

fn leg_json(l: &Leg) -> String {
    format!(
        "{{\"secs\":{:.4},\"peak_alloc_mb\":{:.4},\"total_alloc_mb\":{:.4}}}",
        l.best_secs,
        l.allocs.peak_extra_mb(),
        l.allocs.total_mb()
    )
}

struct Case {
    label: &'static str,
    epochs: usize,
    grains: Vec<f32>,
}

/// Upper-bounds the wall-clock cost that *disabled* instrumentation adds to
/// one serial pretrain run: counts every counter `add` call and completed
/// span an instrumented run generates (events ride on the same gate), then
/// prices each at the measured cost of the disabled gate check.
///
/// Returns `(hits, overhead_secs)`. A batched `add(n)` is one gate check
/// however many units it carries, so hits tracks calls, not counter values.
fn disabled_overhead_bound(bank0: &ShapeletBank, ds: &Dataset, cfg: &CslConfig) -> (u64, f64) {
    std::env::set_var("TCSL_THREADS", "1");
    tcsl_obs::trace::use_memory_sink();
    tcsl_obs::set_enabled(true);
    tcsl_obs::counters::reset();
    tcsl_obs::hist::reset();
    tcsl_obs::spans::reset();
    let mut bank = bank0.clone();
    let _ = pretrain(&mut bank, ds, cfg);
    let hits = tcsl_obs::counters::counter_hits_upper_bound()
        + tcsl_obs::hist::hist_hits_upper_bound()
        + tcsl_obs::spans::span_snapshot()
            .iter()
            .map(|(_, s)| s.count)
            .sum::<u64>();
    tcsl_obs::set_enabled(false);
    tcsl_obs::trace::reset_sink();
    tcsl_obs::counters::reset();
    tcsl_obs::hist::reset();
    tcsl_obs::spans::reset();
    std::env::remove_var("TCSL_THREADS");
    let per_op = tcsl_obs::disabled_probe_secs_per_op(1_000_000);
    (hits, hits as f64 * per_op)
}

/// Per-dispatch overhead of the persistent pool vs the scoped-spawn
/// baseline: times `k` near-empty `parallel_map` calls at `threads`
/// contexts under each mode and returns `(pool_us, scoped_us)` per
/// dispatch. The work per call is trivial on purpose — what's measured is
/// the fixed cost of fanning out (waking parked workers vs spawning OS
/// threads), which is the tax every batch of real work pays.
fn dispatch_overhead(threads: usize, k: usize) -> (f64, f64) {
    std::env::set_var("TCSL_THREADS", threads.to_string());
    let mut per_dispatch_us = [0.0f64; 2];
    for (slot, scoped) in [(0usize, false), (1, true)] {
        if scoped {
            std::env::set_var("TCSL_POOL", "scoped");
        } else {
            std::env::remove_var("TCSL_POOL");
        }
        // Warm-up dispatch: the pool's first call pays one-time worker
        // spawning; that cost is amortized, not per-dispatch.
        let _ = tcsl_tensor::parallel::parallel_map(threads, |i| i);
        let watch = Stopwatch::start("bench.dispatch_overhead");
        for _ in 0..k {
            let r = tcsl_tensor::parallel::parallel_map(threads, |i| i);
            std::hint::black_box(&r);
        }
        per_dispatch_us[slot] = watch.stop() / k as f64 * 1e6;
    }
    std::env::remove_var("TCSL_POOL");
    std::env::remove_var("TCSL_THREADS");
    (per_dispatch_us[0], per_dispatch_us[1])
}

/// One instrumented parallel pretrain rep, returning the pool's
/// per-thread span aggregates (`pool.worker.NN` busy time per worker plus
/// the caller's own `pool.caller` share) as a JSON object keyed by span
/// path. Runs against the in-memory trace sink and resets all telemetry
/// state afterwards so the timed legs stay uninstrumented.
fn per_thread_span_json(
    threads: usize,
    bank0: &ShapeletBank,
    ds: &Dataset,
    cfg: &CslConfig,
) -> String {
    std::env::set_var("TCSL_THREADS", threads.to_string());
    tcsl_obs::trace::use_memory_sink();
    tcsl_obs::set_enabled(true);
    tcsl_obs::counters::reset();
    tcsl_obs::hist::reset();
    tcsl_obs::spans::reset();
    let mut bank = bank0.clone();
    let _ = pretrain(&mut bank, ds, cfg);
    let mut rows: Vec<(String, u64, f64)> = tcsl_obs::spans::span_snapshot()
        .into_iter()
        .filter(|(path, _)| {
            let leaf = path.rsplit('/').next().unwrap_or(path);
            leaf.starts_with("pool.worker.") || leaf == "pool.caller"
        })
        .map(|(path, s)| (path, s.count, s.total_ns as f64 / 1e6))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    tcsl_obs::set_enabled(false);
    tcsl_obs::trace::reset_sink();
    tcsl_obs::counters::reset();
    tcsl_obs::spans::reset();
    std::env::remove_var("TCSL_THREADS");
    let mut json = String::from("{");
    for (i, (path, count, total_ms)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\"{path}\":{{\"count\":{count},\"busy_ms\":{total_ms:.3}}}"
        );
    }
    json.push('}');
    json
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // One worker per core when the host has them; otherwise oversubscribe
    // so the parallel code path (worker threads + reduction) still runs.
    let parallel_threads = if host_cores > 1 { host_cores } else { 4 };
    let reps = if smoke { 1 } else { 3 };

    let entry = archive::by_name("MotifEasy").expect("MotifEasy in archive");
    let (train, _test) = archive::generate_split(&entry, 11);
    let train = train.znormed();

    let shapelet_cfg = ShapeletConfig {
        lengths: vec![8, 16],
        k_per_group: if smoke { 2 } else { 4 },
        measures: vec![Measure::Euclidean, Measure::Cosine],
        stride: 1,
    };

    // Parallelism in pretrain fans out per view pair = per grain, so the
    // grain count bounds the usable worker count per batch.
    let cases = if smoke {
        vec![Case {
            label: "smoke_2grains",
            epochs: 1,
            grains: vec![0.75, 1.0],
        }]
    } else {
        vec![
            Case {
                label: "motif_easy_3grains",
                epochs: 3,
                grains: vec![0.5, 0.75, 1.0],
            },
            Case {
                label: "motif_easy_5grains",
                epochs: 3,
                grains: vec![0.4, 0.55, 0.7, 0.85, 1.0],
            },
        ]
    };

    let mut entries = Vec::new();
    for case in &cases {
        let mut bank = ShapeletBank::new(&shapelet_cfg, train.n_vars());
        init_from_data(&mut bank, &train, 4, &mut seeded(1));
        let cfg = CslConfig {
            epochs: case.epochs,
            batch_size: 16,
            grains: case.grains.clone(),
            validation_frac: 0.1,
            seed: 7,
            ..Default::default()
        };

        let serial = run_leg(1, &bank, &train, &cfg, reps);

        // Full mode only: assert the telemetry layer is effectively free
        // when disabled — the priced-out gate cost of every hit one run
        // generates must stay under 1% of the serial leg's wall time.
        let (obs_hits, obs_overhead_secs) = if smoke {
            (0, 0.0)
        } else {
            disabled_overhead_bound(&bank, &train, &cfg)
        };
        let obs_overhead_frac = obs_overhead_secs / serial.best_secs;
        if !smoke {
            assert!(
                obs_overhead_frac < 0.01,
                "case {}: disabled instrumentation overhead bound ({:.3e}s over {} hits) \
                 is not under 1% of the serial leg ({:.4}s)",
                case.label,
                obs_overhead_secs,
                obs_hits,
                serial.best_secs
            );
        }

        let parallel = run_leg(parallel_threads, &bank, &train, &cfg, reps);
        let deterministic = legs_identical(&serial, &parallel);
        assert!(
            deterministic,
            "case {}: serial and parallel runs diverged — the fixed-order \
             reduction contract is broken",
            case.label
        );
        let speedup = serial.best_secs / parallel.best_secs;

        // Same thread count, old per-call spawn path: `TCSL_POOL=scoped`
        // is re-read per dispatch like `TCSL_THREADS`, so flipping it
        // between legs is race-free here. Results must stay bit-identical
        // — the pool changes scheduling mechanics, never arithmetic.
        std::env::set_var("TCSL_POOL", "scoped");
        let scoped = run_leg(parallel_threads, &bank, &train, &cfg, reps);
        std::env::remove_var("TCSL_POOL");
        assert!(
            legs_identical(&parallel, &scoped),
            "case {}: persistent-pool and scoped-spawn runs diverged — the \
             pool broke the index-owned-output contract",
            case.label
        );
        let pool_vs_scoped = scoped.best_secs / parallel.best_secs;

        // Per-thread busy time under the pool: one instrumented rep,
        // separate from the timed legs above.
        let thread_spans = per_thread_span_json(parallel_threads, &bank, &train, &cfg);

        // Old-vs-new training path, both serial so the allocation and
        // wall-clock numbers are directly comparable: the eager-graph
        // oracle (materialized window leaves) vs the fused custom op.
        let oracle_cfg = CslConfig {
            diff_path: DiffPath::Oracle,
            ..cfg.clone()
        };
        let oracle = run_leg(1, &bank, &train, &oracle_cfg, reps);
        assert!(
            serial.allocs.peak_extra < oracle.allocs.peak_extra,
            "case {}: fused-path training peak allocation ({:.4} MiB) is not below the \
             oracle path's ({:.4} MiB) — the zero-materialization contract is broken",
            case.label,
            serial.allocs.peak_extra_mb(),
            oracle.allocs.peak_extra_mb()
        );
        let peak_ratio = oracle.allocs.peak_extra as f64 / serial.allocs.peak_extra.max(1) as f64;

        let mut entry = String::new();
        let _ = write!(
            entry,
            "{{\"case\":\"{}\",\"epochs\":{},\"grains\":{},\"batch_size\":{},\"serial_secs\":{:.4},\"parallel_secs\":{:.4},\"parallel_threads\":{},\"speedup\":{:.2},\"pool_vs_scoped\":{:.2},\"deterministic\":{},\"serial\":{},\"parallel\":{},\"parallel_scoped\":{},\"oracle_serial\":{},\"oracle_over_fused_peak_alloc\":{:.2},\"obs_hits\":{},\"obs_disabled_overhead_frac\":{:.6},\"per_thread_spans\":{},\"losses\":{}}}",
            case.label,
            case.epochs,
            case.grains.len(),
            cfg.batch_size,
            serial.best_secs,
            parallel.best_secs,
            parallel_threads,
            speedup,
            pool_vs_scoped,
            deterministic,
            leg_json(&serial),
            leg_json(&parallel),
            leg_json(&scoped),
            leg_json(&oracle),
            peak_ratio,
            obs_hits,
            obs_overhead_frac,
            thread_spans,
            loss_json(&serial.report)
        );
        println!("{entry}");
        entries.push(entry);
    }

    // The spawn tax in isolation: fixed per-dispatch cost of each fan-out
    // mode, independent of any training workload.
    let overhead_dispatches = if smoke { 200 } else { 2000 };
    let (pool_us, scoped_us) = dispatch_overhead(parallel_threads, overhead_dispatches);
    let pool_overhead = format!(
        "{{\"threads\":{},\"dispatches\":{},\"pool_dispatch_us\":{:.2},\"scoped_dispatch_us\":{:.2},\"spawn_tax\":{:.2}}}",
        parallel_threads,
        overhead_dispatches,
        pool_us,
        scoped_us,
        scoped_us / pool_us.max(1e-9)
    );

    let report = format!(
        "{{\"bench\":\"pretrain\",\"schema_version\":{},\"host_cores\":{},\"pool_overhead\":{},\"unit_note\":\"serial = TCSL_THREADS=1, parallel = one worker per core (oversubscribed to 4 on 1-core hosts, where no speedup is possible) on the persistent pool; parallel_scoped = same thread count under TCSL_POOL=scoped (per-call thread spawning); oracle_serial = eager-graph diff path (materialized window leaves) on 1 thread; secs are min over {} runs; peak_alloc_mb = high-water mark above pre-call live bytes (min over runs); deterministic = bit-identical losses and final shapelets across legs (also asserted pool vs scoped); pool_overhead prices one near-empty dispatch per mode in microseconds; per_thread_spans = busy-time of each pool context over one instrumented rep\",\"cases\":[\n  {}\n]}}\n",
        tcsl_bench::contract::SCHEMA_VERSION,
        host_cores,
        pool_overhead,
        reps,
        entries.join(",\n  ")
    );
    tcsl_bench::contract::write_report(
        "BENCH_pretrain.json",
        "pretrain",
        &report,
        &[
            "pool_overhead.pool_dispatch_us",
            "cases[].serial.peak_alloc_mb",
            "cases[].oracle_serial",
            "cases[].parallel_scoped",
            "cases[].per_thread_spans",
            "cases[].deterministic=true",
        ],
    );
}

//! Sublinear-index benchmark: the exact `pairdist` top-k engine vs the IVF
//! inverted-file index, at serving shape (one query at a time), across
//! corpus sizes — where does probing beat scanning, at what recall?
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p tcsl-bench --bin bench_index          # full
//! cargo run --release -p tcsl-bench --bin bench_index -- --smoke
//! ```
//!
//! The synthetic corpus is *low-rank* Gaussian data (a `LATENT`-dim latent
//! cloud pushed through a fixed random projection, plus small ambient
//! noise) — the shape learned shapelet representations actually have,
//! and the regime where coarse k-means cells capture real neighbourhood
//! structure. Per corpus size `N` the bench reports: index build seconds,
//! per-query p50 latency for the exact engine and the IVF probe (each of
//! `Q` single-row queries timed individually), recall@10 of the IVF
//! shortlist against the exact oracle, and the probe counters
//! (`ivf.cells_probed`, `ivf.candidates`) from an instrumented pass.
//! `crossover_n` is the smallest benched N where the IVF p50 beats exact.
//!
//! In full mode the largest N must show IVF ≥ 5× faster per query at
//! recall@10 ≥ 0.95, and `nprobe == nlist` must reproduce the exact
//! results bit-for-bit (the parity contract, asserted end-to-end here).
//!
//! Prints a one-line JSON summary per corpus size and writes the full
//! report to `BENCH_index.json` (see EXPERIMENTS.md for the format).

use std::fmt::Write as _;

use tcsl_analyzers::index::IvfIndex;
use tcsl_obs::counters::{IVF_CANDIDATES, IVF_CELLS_PROBED};
use tcsl_obs::spans::Stopwatch;
use tcsl_tensor::pairdist;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

/// Ambient feature dimension (learned-representation scale).
const DIM: usize = 64;
/// Intrinsic dimension of the synthetic cloud.
const LATENT: usize = 8;
/// Neighbours per query (the recall@k figure's k).
const K: usize = 10;

/// Low-rank cloud: corpus and queries drawn from the *same* `LATENT`-dim
/// latent Gaussian through one fixed projection (queries must live in the
/// corpus's subspace for nearest-neighbour structure to exist at all),
/// with small ambient noise so rows are never exactly coplanar.
fn low_rank_cloud(n_corpus: usize, n_queries: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = seeded(seed);
    let n = n_corpus + n_queries;
    let proj = Tensor::randn([LATENT, DIM], &mut rng);
    let latent = Tensor::randn([n, LATENT], &mut rng);
    let mut all = tcsl_tensor::matmul::matmul(&latent, &proj);
    let noise = Tensor::randn([n, DIM], &mut rng);
    for (o, &e) in all.as_mut_slice().iter_mut().zip(noise.as_slice()) {
        *o += 0.05 * e;
    }
    let flat = all.as_slice();
    let corpus = Tensor::from_vec(flat[..n_corpus * DIM].to_vec(), [n_corpus, DIM]);
    let queries = Tensor::from_vec(flat[n_corpus * DIM..].to_vec(), [n_queries, DIM]);
    (corpus, queries)
}

/// Median of individually timed single-query calls, in milliseconds —
/// the serving-shape latency figure (batched throughput would let the
/// exact engine amortize its scan across the whole batch).
fn p50_ms(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2] * 1e3
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (ns, n_queries): (&[usize], usize) = if smoke {
        (&[512, 2048], 16)
    } else {
        (&[16_384, 65_536, 262_144], 100)
    };

    let mut entries = Vec::new();
    let mut crossover_n: Option<usize> = None;
    let mut largest: Option<(f64, f64)> = None; // (speedup, recall) at max N

    for &n in ns {
        let (corpus, queries) = low_rank_cloud(n, n_queries, 97);
        let nlist = (n as f64).sqrt().round() as usize;
        let nprobe = (nlist / 16).max(4);

        let watch = Stopwatch::start("bench.index_build");
        let index = IvfIndex::build(&corpus, nlist, 0);
        let build_secs = watch.stop();

        // Single-row query tensors: each timed call sees exactly what a
        // serving loop would submit.
        let singles: Vec<Tensor> = (0..n_queries)
            .map(|i| Tensor::from_vec(queries.row(i).to_vec(), [1, DIM]))
            .collect();

        // Exact oracle (batched — identical results to per-row calls by
        // the engine's determinism contract) for recall, plus warm-up.
        let exact_nn = pairdist::knn(&queries, &corpus, K);
        let ivf_nn = index
            .knn(&queries, K, nprobe)
            .expect("bench queries share the corpus width");
        let mut hit = 0usize;
        let mut total = 0usize;
        for (e, v) in exact_nn.iter().zip(&ivf_nn) {
            total += e.len();
            hit += e
                .iter()
                .filter(|&&(ei, _)| v.iter().any(|&(vi, _)| vi == ei))
                .count();
        }
        let recall = hit as f64 / total.max(1) as f64;

        // Timed serving-shape passes, one reused result buffer each.
        let mut out = Vec::new();
        let mut exact_times: Vec<f64> = singles
            .iter()
            .map(|q| {
                let w = Stopwatch::start("bench.index_exact_query");
                pairdist::knn_into(q, &corpus, K, &mut out);
                w.stop()
            })
            .collect();
        let mut ivf_times: Vec<f64> = singles
            .iter()
            .map(|q| {
                let w = Stopwatch::start("bench.index_ivf_query");
                index
                    .knn_into(q, K, nprobe, &mut out)
                    .expect("bench queries share the corpus width");
                w.stop()
            })
            .collect();
        let exact_p50 = p50_ms(&mut exact_times);
        let ivf_p50 = p50_ms(&mut ivf_times);
        let speedup = exact_p50 / ivf_p50;

        // Instrumented (untimed) pass for the probe counters.
        tcsl_obs::set_enabled(true);
        tcsl_obs::counters::reset();
        index
            .knn(&queries, K, nprobe)
            .expect("bench queries share the corpus width");
        let cells_probed = IVF_CELLS_PROBED.value();
        let candidates = IVF_CANDIDATES.value();
        tcsl_obs::set_enabled(false);
        tcsl_obs::counters::reset();
        let candidate_frac = candidates as f64 / (n_queries * n) as f64;

        if crossover_n.is_none() && ivf_p50 < exact_p50 {
            crossover_n = Some(n);
        }
        largest = Some((speedup, recall));

        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"case\":\"n_{n}\",\"n\":{n},\"n_queries\":{n_queries},\"nlist\":{nlist},\"nprobe\":{nprobe},\"build_secs\":{build_secs:.4},\"exact_p50_ms\":{exact_p50:.4},\"ivf_p50_ms\":{ivf_p50:.4},\"speedup_p50\":{speedup:.2},\"recall_at_10\":{recall:.4},\"cells_probed\":{cells_probed},\"candidates\":{candidates},\"candidate_frac\":{candidate_frac:.4}}}"
        );
        println!("{e}");
        entries.push(e);
    }

    // Parity spot-check at the smallest N: nprobe == nlist must equal the
    // exact engine bit-for-bit end-to-end (cheap, so asserted every mode).
    {
        let n = ns[0];
        let (corpus, queries) = low_rank_cloud(n, n_queries, 97);
        let index = IvfIndex::build(&corpus, (n as f64).sqrt().round() as usize, 0);
        let exact = pairdist::knn(&queries, &corpus, K);
        let full = index
            .knn(&queries, K, index.nlist())
            .expect("bench queries share the corpus width");
        for (e, v) in exact.iter().zip(&full) {
            assert_eq!(e.len(), v.len(), "full-probe IVF dropped neighbours");
            for (&(ei, ed), &(vi, vd)) in e.iter().zip(v) {
                assert_eq!(ei, vi, "full-probe IVF changed a neighbour index");
                assert_eq!(
                    ed.to_bits(),
                    vd.to_bits(),
                    "full-probe IVF changed a distance"
                );
            }
        }
    }

    if !smoke {
        let (speedup, recall) = largest.expect("at least one corpus size");
        assert!(
            speedup >= 5.0,
            "largest N: IVF only {speedup:.2}x faster per query than exact (need >= 5x)"
        );
        assert!(
            recall >= 0.95,
            "largest N: recall@10 {recall:.4} below the 0.95 floor"
        );
    }

    let report = format!(
        "{{\"bench\":\"index\",\"schema_version\":{},\"host_cores\":{},\"smoke\":{},\"dim\":{},\"latent_dim\":{},\"k\":{},\"unit_note\":\"corpus = low-rank Gaussian (LATENT-dim latent x fixed projection + 0.05 ambient noise); exact/ivf p50 = median over individually timed single-row queries (serving shape, ms); recall_at_10 = fraction of exact top-10 indices the IVF shortlist returns; cells_probed/candidates = ivf.* counter totals over one instrumented batch pass; crossover_n = smallest benched N where IVF p50 beats exact; nlist = round(sqrt(N)), nprobe = max(4, nlist/16); full-probe parity asserted at the smallest N\",\"cases\":[\n  {}\n],\"crossover_n\":{}}}\n",
        tcsl_bench::contract::SCHEMA_VERSION,
        host_cores,
        smoke,
        DIM,
        LATENT,
        K,
        entries.join(",\n  "),
        crossover_n.map_or_else(|| "null".to_string(), |n| n.to_string()),
    );
    tcsl_bench::contract::write_report(
        "BENCH_index.json",
        "index",
        &report,
        &[
            "crossover_n",
            "cases[].build_secs",
            "cases[].recall_at_10",
            "cases[].cells_probed",
            "cases[].speedup_p50",
        ],
    );
}

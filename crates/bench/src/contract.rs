//! Shared JSON-field contract for the `BENCH_*.json` reports.
//!
//! Every bench binary routes its report through [`write_report`], which
//! validates the serialized JSON against a required-field list *before*
//! anything touches disk. This replaces the per-binary `grep` contracts CI
//! used to carry: the fields CI (and the `timecsl trace --bench-diff` gate)
//! depend on are now asserted at the emitter, so a refactor that renames or
//! drops a field fails the bench run itself instead of a downstream grep.
//!
//! Field specs are dotted paths into the report object:
//!
//! * `crossover_n` — top-level field must exist.
//! * `cases[].speedup` — at least one element of the `cases` array has the
//!   field (cases are heterogeneous, so "some element" mirrors the old
//!   `grep -q` semantics).
//! * `cases[].labels_identical=true` — the field must exist *and* be the
//!   JSON boolean `true` somewhere (contract booleans the full-mode legs
//!   assert; the report must agree).

use tcsl_obs::json::{self, JsonValue};

/// Version stamp every `BENCH_*.json` carries as `"schema_version"`.
/// Bump when the report layout changes shape incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// Validates `body` as a bench report named `bench` carrying every field in
/// `required`. Returns a human-readable description of the first violation.
pub fn validate_report(bench: &str, body: &str, required: &[&str]) -> Result<(), String> {
    let root = json::parse(body).map_err(|e| format!("{bench} report is not valid JSON: {e}"))?;
    if root.as_obj().is_none() {
        return Err(format!("{bench} report is not a JSON object"));
    }
    match root.get("schema_version").and_then(JsonValue::as_u64) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => {
            return Err(format!(
                "{bench} report has schema_version {v}, expected {SCHEMA_VERSION}"
            ))
        }
        None => return Err(format!("{bench} report is missing \"schema_version\"")),
    }
    match root.get("bench").and_then(JsonValue::as_str) {
        Some(b) if b == bench => {}
        Some(b) => return Err(format!("report names bench {b:?}, expected {bench:?}")),
        None => return Err(format!("{bench} report is missing \"bench\"")),
    }
    for spec in required {
        let (path, want_true) = match spec.strip_suffix("=true") {
            Some(p) => (p, true),
            None => (*spec, false),
        };
        let segs: Vec<&str> = path.split('.').collect();
        if !path_satisfied(&root, &segs, want_true) {
            return Err(format!("{bench} report is missing required field {spec:?}"));
        }
    }
    Ok(())
}

/// Validates `body` (panicking with the violation on failure — bench
/// binaries treat a broken report as a bug, not a recoverable error), then
/// writes it to `path` and logs the destination to stderr.
pub fn write_report(path: &str, bench: &str, body: &str, required: &[&str]) {
    if let Err(msg) = validate_report(bench, body, required) {
        panic!("refusing to write {path}: {msg}");
    }
    std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Walks one dotted-path spec. A `seg[]` segment descends into array field
/// `seg` and succeeds if *any* element satisfies the remaining path.
fn path_satisfied(v: &JsonValue, segs: &[&str], want_true: bool) -> bool {
    let Some(seg) = segs.first() else {
        return !want_true || matches!(v, JsonValue::Bool(true));
    };
    if let Some(field) = seg.strip_suffix("[]") {
        match v.get(field) {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .any(|it| path_satisfied(it, &segs[1..], want_true)),
            _ => false,
        }
    } else {
        match v.get(seg) {
            Some(child) => path_satisfied(child, &segs[1..], want_true),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"bench":"demo","schema_version":1,"crossover_n":null,
        "cases":[{"case":"a","speedup":2.0},{"case":"b","flag":true}]}"#;

    #[test]
    fn accepts_a_complete_report() {
        validate_report(
            "demo",
            GOOD,
            &["crossover_n", "cases[].speedup", "cases[].flag=true"],
        )
        .unwrap();
    }

    #[test]
    fn rejects_missing_fields_and_stale_schema() {
        let e = validate_report("demo", GOOD, &["cases[].nope"]).unwrap_err();
        assert!(e.contains("cases[].nope"), "{e}");
        let e = validate_report("demo", "{\"bench\":\"demo\"}", &[]).unwrap_err();
        assert!(e.contains("schema_version"), "{e}");
        let stale = "{\"bench\":\"demo\",\"schema_version\":999}";
        let e = validate_report("demo", stale, &[]).unwrap_err();
        assert!(e.contains("999"), "{e}");
        let e = validate_report("other", GOOD, &[]).unwrap_err();
        assert!(e.contains("expected \"other\""), "{e}");
    }

    #[test]
    fn boolean_contracts_must_be_true() {
        let falsy = r#"{"bench":"demo","schema_version":1,"cases":[{"flag":false}]}"#;
        let e = validate_report("demo", falsy, &["cases[].flag=true"]).unwrap_err();
        assert!(e.contains("flag=true"), "{e}");
        // A `true` in one heterogeneous case satisfies the contract even
        // when sibling cases lack the field entirely.
        validate_report("demo", GOOD, &["cases[].flag=true"]).unwrap();
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        let e = validate_report("demo", "not json", &[]).unwrap_err();
        assert!(e.contains("not valid JSON"), "{e}");
        let e = validate_report("demo", "[1,2]", &[]).unwrap_err();
        assert!(e.contains("not a JSON object"), "{e}");
    }
}

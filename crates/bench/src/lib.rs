//! # tcsl-bench
//!
//! The experiment harnesses that regenerate every quantitative artefact of
//! the TimeCSL paper (see DESIGN.md's experiment index), plus criterion
//! microbenchmarks.
//!
//! Binaries (run with `cargo run -p tcsl-bench --release --bin <name>`):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `exp_fig1` | Figure 1 — avg-rank comparison on classification, clustering, anomaly detection, long series, training efficiency |
//! | `exp_demo_uwave` | §3 walkthrough — accuracy vs shapelet length |
//! | `exp_semisup` | §2.2 — fine-tuned CSL vs supervised CNN vs label fraction |
//! | `exp_pipeline` | Figure 2 — the unified pipeline on three tasks |
//! | `exp_explore_render` | Figure 3 — the exploration panels as SVG |

pub use tcsl_obs::alloc_track;

pub mod contract;
pub mod harness;
pub mod methods;

//! Per-task evaluation harnesses shared by the experiment binaries.

use crate::methods::{train_method, Method};
use tcsl_analyzers::anomaly::IsolationForest;
use tcsl_analyzers::classify::LinearSvm;
use tcsl_analyzers::cluster::KMeans;
use tcsl_analyzers::{AnomalyScorer, Classifier, Clusterer};
use tcsl_baselines::Dtw1Nn;
use tcsl_data::archive::ArchiveEntry;
use tcsl_data::{archive, Dataset};
use tcsl_eval::metrics::anomaly::roc_auc;
use tcsl_eval::metrics::classification::accuracy;
use tcsl_eval::metrics::clustering::nmi;

/// All per-method results on one dataset.
#[derive(Clone, Debug)]
pub struct DatasetResult {
    /// Dataset name.
    pub dataset: String,
    /// Method names, fixed order.
    pub methods: Vec<&'static str>,
    /// Classification accuracy per method (freeze-mode SVM; DTW-1NN raw).
    pub accuracy: Vec<f64>,
    /// Clustering NMI per *representation* method (DTW excluded).
    pub nmi: Vec<f64>,
    /// Training wall time (seconds) per representation method.
    pub train_time: Vec<f64>,
}

/// Trains every representation method plus DTW-1NN on one classification
/// entry and evaluates accuracy, clustering NMI and training time.
pub fn run_classification_entry(entry: &ArchiveEntry, seed: u64) -> DatasetResult {
    let (train, test) = archive::generate_split(entry, seed);
    let ytr = train.labels().expect("labeled entry");
    let yte = test.labels().expect("labeled entry");
    let n_classes = train.n_classes();

    let mut methods: Vec<&'static str> = Vec::new();
    let mut acc = Vec::new();
    let mut nmis = Vec::new();
    let mut times = Vec::new();

    for m in Method::ALL {
        let repr = train_method(m, &train, seed, false);
        let ztr = repr.encode(&train);
        let zte = repr.encode(&test);

        let mut svm = LinearSvm::new();
        svm.fit(&ztr, ytr).expect("bench features are well-formed");
        let pred = svm.predict(&zte).expect("bench features are well-formed");
        acc.push(accuracy(&pred, yte));

        let mut km = KMeans::new(n_classes);
        let assign = km
            .fit_predict(&zte)
            .expect("bench features are well-formed");
        nmis.push(nmi(&assign, yte));

        times.push(repr.train_time.as_secs_f64());
        methods.push(repr.name);
    }

    // DTW-1NN: classification only (no representation, no training).
    let mut dtw = Dtw1Nn::new();
    let watch = tcsl_obs::spans::Stopwatch::start("harness.dtw_1nn");
    dtw.fit(&train);
    acc.push(accuracy(&dtw.predict(&test), yte));
    times.push(watch.stop()); // fit+predict = its entire cost
    nmis.push(f64::NAN); // excluded from the clustering axis
    methods.push("DTW-1NN");

    DatasetResult {
        dataset: entry.name.to_string(),
        methods,
        accuracy: acc,
        nmi: nmis,
        train_time: times,
    }
}

/// Anomaly-detection evaluation: representation + isolation forest,
/// ROC-AUC on the labeled test segments.
pub fn run_anomaly_entry(entry: &ArchiveEntry, seed: u64) -> (String, Vec<&'static str>, Vec<f64>) {
    let (train, test) = archive::generate_split(entry, seed);
    let truth: Vec<bool> = test
        .labels()
        .expect("labeled")
        .iter()
        .map(|&l| l == 1)
        .collect();
    let mut names = Vec::new();
    let mut aucs = Vec::new();
    for m in Method::ALL {
        let repr = train_method(m, &train.without_labels(), seed, false);
        let ztr = repr.encode(&train);
        let zte = repr.encode(&test);
        let mut forest = IsolationForest::new();
        forest.fit(&ztr).expect("bench features are well-formed");
        let scores = forest.score(&zte).expect("bench features are well-formed");
        names.push(repr.name);
        aucs.push(roc_auc(&scores, &truth));
    }
    (entry.name.to_string(), names, aucs)
}

/// Long-series evaluation: accuracy and end-to-end time (train + encode +
/// classify / DTW predict) per method.
pub struct LongResult {
    /// Dataset name.
    pub dataset: String,
    /// Method names.
    pub methods: Vec<&'static str>,
    /// Accuracy per method.
    pub accuracy: Vec<f64>,
    /// Total wall time (seconds) per method.
    pub total_time: Vec<f64>,
}

/// Runs the long-series suite entry with CSL (capped windows), one CNN
/// baseline, statistics and DTW-1NN.
pub fn run_long_entry(entry: &ArchiveEntry, seed: u64) -> LongResult {
    let (train, test) = archive::generate_split(entry, seed);
    let ytr = train.labels().unwrap();
    let yte = test.labels().unwrap();
    let mut methods = Vec::new();
    let mut acc = Vec::new();
    let mut total = Vec::new();

    for m in [Method::Csl, Method::CnnSimclr, Method::StatFeatures] {
        let watch = tcsl_obs::spans::Stopwatch::start("harness.long_method");
        let repr = train_method(m, &train, seed, true);
        let ztr = repr.encode(&train);
        let zte = repr.encode(&test);
        let mut svm = LinearSvm::new();
        svm.fit(&ztr, ytr).expect("bench features are well-formed");
        let pred = svm.predict(&zte).expect("bench features are well-formed");
        let a = accuracy(&pred, yte);
        methods.push(repr.name);
        acc.push(a);
        total.push(watch.stop());
    }

    let watch = tcsl_obs::spans::Stopwatch::start("harness.dtw_1nn");
    let mut dtw = Dtw1Nn::new();
    dtw.fit(&train);
    let a = accuracy(&dtw.predict(&test), yte);
    methods.push("DTW-1NN");
    acc.push(a);
    total.push(watch.stop());

    LongResult {
        dataset: entry.name.to_string(),
        methods,
        accuracy: acc,
        total_time: total,
    }
}

/// Convenience: evaluates a frozen feature matrix pair with a linear SVM.
pub fn svm_accuracy(
    ztr: &tcsl_tensor::Tensor,
    ytr: &[usize],
    zte: &tcsl_tensor::Tensor,
    yte: &[usize],
) -> f64 {
    let mut svm = LinearSvm::new();
    svm.fit(ztr, ytr).expect("bench features are well-formed");
    let pred = svm.predict(zte).expect("bench features are well-formed");
    accuracy(&pred, yte)
}

/// Convenience: subset of `ds` with a stratified labeled fraction.
pub fn labeled_fraction(ds: &Dataset, frac: f32, seed: u64) -> Dataset {
    let mut rng = tcsl_tensor::rng::seeded(seed);
    let (labeled, _) = tcsl_data::split::label_fraction_split(ds, frac, &mut rng);
    labeled
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_entry_produces_full_rows() {
        let entry = archive::by_name("MotifEasy").unwrap();
        let res = run_classification_entry(&entry, 77);
        assert_eq!(res.methods.len(), 6); // 5 representations + DTW
        assert_eq!(res.accuracy.len(), 6);
        assert!(res.accuracy.iter().all(|&a| (0.0..=1.0).contains(&a)));
        // NMI defined for the 5 representation methods, NaN for DTW.
        assert!(res.nmi[..5].iter().all(|&v| v.is_finite()));
        assert!(res.nmi[5].is_nan());
        // CSL trains, statistics don't.
        assert!(res.train_time[0] > 0.0);
        assert_eq!(res.train_time[4], 0.0);
    }

    #[test]
    fn anomaly_entry_produces_aucs() {
        let entry = archive::by_name("AnomSpike").unwrap();
        let (_, names, aucs) = run_anomaly_entry(&entry, 78);
        assert_eq!(names.len(), 5);
        assert!(aucs.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }
}

//! Property tests pinning the IVF index's exactness contract: with
//! `nprobe == nlist` — every cell probed — the index must return *exactly*
//! the exact engine's neighbour sets: same indices, bit-identical
//! distances, the same lowest-index tie-breaks, NaN rows last.
//!
//! The generator works on a coarse value grid (multiples of 0.5) so the
//! blocked engine and its scalar oracle agree bit-for-bit, with feature
//! dims crossing both the 8-lane SIMD width and the 64-element FMA
//! dispatch threshold, and optional NaN-poisoned query/corpus rows —
//! mirroring the tensor crate's `grid_knn_case` but driving the whole
//! build → bucket → probe → re-rank pipeline.

// Tests are exempt from the request-path error wall (clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use proptest::prelude::*;
use tcsl_analyzers::index::IvfIndex;
use tcsl_tensor::pairdist::knn;
use tcsl_tensor::Tensor;

/// Query/corpus pair on the f32-exact grid plus IVF shape parameters.
/// `nan_q`/`nan_c` optionally poison one row with a NaN feature (index
/// taken modulo `rows + 1`; the `rows` value means "no poison").
#[allow(clippy::type_complexity)]
fn grid_ivf_case() -> impl Strategy<Value = (Tensor, Tensor, usize, usize, u64)> {
    // dim up to 70 crosses both the 8-lane SIMD width and the FMA kernel's
    // 64-element dispatch threshold, including non-multiples of each.
    (
        (1usize..12, 1usize..26, 1usize..70, 1usize..8, 1usize..9),
        (0usize..40, 0usize..40, 0u64..4),
    )
        .prop_flat_map(|((n, m, d, k, nlist), (nan_q, nan_c, seed))| {
            (
                proptest::collection::vec(-12i32..13, n * d),
                proptest::collection::vec(-12i32..13, m * d),
            )
                .prop_map(move |(av, bv)| {
                    let to_grid = |v: Vec<i32>| -> Vec<f32> {
                        v.into_iter().map(|x| x as f32 * 0.5).collect()
                    };
                    let mut av = to_grid(av);
                    let mut bv = to_grid(bv);
                    if nan_q % (n + 1) < n {
                        av[(nan_q % (n + 1)) * d] = f32::NAN;
                    }
                    if nan_c % (m + 1) < m {
                        bv[(nan_c % (m + 1)) * d] = f32::NAN;
                    }
                    (
                        Tensor::from_vec(av, [n, d]),
                        Tensor::from_vec(bv, [m, d]),
                        k,
                        nlist,
                        seed,
                    )
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ivf_full_probe_equals_exact_engine_bitwise(
        (q, c, k, nlist, seed) in grid_ivf_case()
    ) {
        let index = IvfIndex::build(&c, nlist, seed);
        let exact = knn(&q, &c, k);
        let ivf = index.knn(&q, k, index.nlist()).unwrap();
        prop_assert_eq!(exact.len(), ivf.len());
        for (i, (e, v)) in exact.iter().zip(&ivf).enumerate() {
            prop_assert_eq!(e.len(), v.len(), "query {}", i);
            for (&(ei, ed), &(vi, vd)) in e.iter().zip(v) {
                prop_assert_eq!(ei, vi, "query {}", i);
                prop_assert_eq!(ed.to_bits(), vd.to_bits(), "query {}", i);
            }
        }
    }

    #[test]
    fn ivf_partial_probe_is_an_exact_subset_of_the_exact_ranking(
        (q, c, k, nlist, seed) in grid_ivf_case()
    ) {
        // With fewer probes the only legal deviation is omission: every
        // returned pair must appear in the exact engine's full ranking with
        // the identical distance bits, already sorted by (distance, index).
        let index = IvfIndex::build(&c, nlist, seed);
        let nprobe = (index.nlist() / 2).max(1);
        let full = knn(&q, &c, c.rows().max(1));
        let ivf = index.knn(&q, k, nprobe).unwrap();
        for (i, row) in ivf.iter().enumerate() {
            prop_assert!(row.len() <= k.min(c.rows()));
            for w in row.windows(2) {
                let ord = w[0].1.total_cmp(&w[1].1).then(w[0].0.cmp(&w[1].0));
                prop_assert!(ord == std::cmp::Ordering::Less, "query {} unsorted", i);
            }
            for &(j, d) in row {
                let exact_d = full[i]
                    .iter()
                    .find(|&&(ej, _)| ej == j)
                    .map(|&(_, ed)| ed)
                    .expect("returned index exists in the corpus ranking");
                prop_assert_eq!(d.to_bits(), exact_d.to_bits(), "query {} idx {}", i, j);
            }
        }
    }
}

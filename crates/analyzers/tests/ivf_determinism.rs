//! Thread-count invariance of the IVF index, plus its probe counters.
//!
//! This test owns its binary (no other `#[test]` here) so it can safely
//! pin `TCSL_THREADS` via the environment between runs and flip the global
//! `tcsl-obs` enable switch: the same build + query pass is executed under
//! 1 and 7 worker threads, and the cell assignments, every query result
//! (bitwise), and the `ivf.cells_probed` / `ivf.candidates` totals must
//! all be identical — the CI `TCSL_THREADS=7` leg runs this file under an
//! externally pinned thread count as well.

// Tests are exempt from the request-path error wall (clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use tcsl_analyzers::index::IvfIndex;
use tcsl_obs::counters::{IVF_CANDIDATES, IVF_CELLS_PROBED};
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

#[test]
fn ivf_build_query_and_counters_are_thread_count_invariant() {
    let mut rng = seeded(41);
    let x = Tensor::randn([400, 24], &mut rng);
    let q = Tensor::randn([37, 24], &mut rng);

    let run = |threads: &str| {
        std::env::set_var("TCSL_THREADS", threads);
        tcsl_obs::counters::reset();
        let index = IvfIndex::build(&x, 16, 0);
        let nn = index.knn(&q, 10, 4).unwrap();
        (
            index.assignments().to_vec(),
            nn,
            IVF_CELLS_PROBED.value(),
            IVF_CANDIDATES.value(),
        )
    };
    tcsl_obs::set_enabled(true);
    let (a1, nn1, probed1, cands1) = run("1");
    let (a7, nn7, probed7, cands7) = run("7");
    tcsl_obs::set_enabled(false);
    tcsl_obs::counters::reset();

    assert_eq!(a1, a7, "cell assignments depend on thread count");
    for (i, (r1, r7)) in nn1.iter().zip(&nn7).enumerate() {
        assert_eq!(r1.len(), r7.len(), "query {i}");
        for (&(i1, d1), &(i7, d7)) in r1.iter().zip(r7) {
            assert_eq!(i1, i7, "query {i}");
            assert_eq!(d1.to_bits(), d7.to_bits(), "query {i}");
        }
    }
    assert_eq!(probed1, probed7, "probe totals depend on thread count");
    assert_eq!(cands1, cands7, "candidate totals depend on thread count");
    // The counters describe real sublinear work: every query probed some
    // cells (at most `nprobe`), every probed cell held candidates, and the
    // 4-of-16 probe pattern scanned strictly less than a full exact scan.
    assert!(probed1 >= q.rows() as u64);
    assert!(probed1 <= (q.rows() * 4) as u64);
    assert!(cands1 >= probed1);
    assert!(
        cands1 < (q.rows() * x.rows()) as u64,
        "probing must scan less than the full corpus"
    );
}

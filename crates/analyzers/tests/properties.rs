//! Property tests for analyzer invariants.

// Tests are exempt from the request-path error wall (clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use proptest::prelude::*;
use tcsl_analyzers::anomaly::KnnDistance;
use tcsl_analyzers::classify::{DecisionTree, KnnClassifier, LinearSvm};
use tcsl_analyzers::cluster::KMeans;
use tcsl_analyzers::preprocessing::StandardScaler;
use tcsl_analyzers::{AnomalyScorer, Classifier, Clusterer};
use tcsl_tensor::Tensor;

fn dataset(n: usize, f: usize) -> impl Strategy<Value = (Tensor, Vec<usize>)> {
    (
        proptest::collection::vec(-5.0f32..5.0, n * f),
        proptest::collection::vec(0usize..3, n),
    )
        .prop_map(move |(vals, mut labels)| {
            // Guarantee at least two classes.
            if labels.iter().all(|&l| l == labels[0]) {
                labels[0] = (labels[0] + 1) % 3;
            }
            // Shift features by class so the problem is learnable.
            let mut data = vals;
            for (i, &l) in labels.iter().enumerate() {
                data[i * f] += 10.0 * l as f32;
            }
            (Tensor::from_vec(data, [n, f]), labels)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn one_nn_has_perfect_training_accuracy((x, y) in dataset(20, 4)) {
        let mut knn = KnnClassifier::new(1);
        knn.fit(&x, &y).unwrap();
        prop_assert_eq!(knn.accuracy(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn deep_tree_fits_training_data((x, y) in dataset(16, 3)) {
        let mut tree = DecisionTree::new(16);
        tree.fit(&x, &y).unwrap();
        // Distinct rows (probability-1 with continuous features) are
        // perfectly separable by a deep tree.
        prop_assert!(tree.accuracy(&x, &y).unwrap() >= 0.9);
    }

    #[test]
    fn svm_predictions_are_valid_classes((x, y) in dataset(24, 4)) {
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y).unwrap();
        let n_classes = y.iter().copied().max().unwrap() + 1;
        for p in svm.predict(&x).unwrap() {
            prop_assert!(p < n_classes);
        }
    }

    #[test]
    fn kmeans_uses_at_most_k_clusters((x, _y) in dataset(18, 3), k in 1usize..5) {
        let mut km = KMeans::new(k);
        let assign = km.fit_predict(&x).unwrap();
        prop_assert_eq!(assign.len(), 18);
        for &c in &assign {
            prop_assert!(c < k);
        }
    }

    #[test]
    fn knn_scores_are_nonnegative_and_zero_on_duplicates((x, _y) in dataset(15, 3)) {
        let mut scorer = KnnDistance::new(3);
        scorer.fit(&x).unwrap();
        for s in scorer.score(&x).unwrap() {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn scaler_output_is_centred((x, _y) in dataset(12, 5)) {
        let (_, t) = StandardScaler::fit_transform(&x);
        for c in 0..t.cols() {
            let mean: f32 = (0..t.rows()).map(|i| t.at2(i, c)).sum::<f32>() / t.rows() as f32;
            prop_assert!(mean.abs() < 1e-3, "column {} mean {}", c, mean);
        }
    }
}

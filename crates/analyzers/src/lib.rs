#![warn(missing_docs)]
// Index-based loops in the numeric kernels walk several parallel
// buffers at once; iterator rewrites obscure that correspondence.
#![allow(clippy::needless_range_loop)]
// The error wall (clippy.toml) exempts test builds: tests assert on values
// and unwrap() freely.
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]
//! # tcsl-analyzers
//!
//! Task-oriented analyzers (paper §2.2, "Task solving"): the freezing mode
//! plugs *any standard analyzer* on top of the shapelet-based features, so
//! this crate provides from-scratch implementations of the ones the demo
//! integrates via scikit-learn — SVM, logistic regression, k-NN, decision
//! tree and gradient boosting for classification; k-means and agglomerative
//! clustering; isolation forest and k-NN distance scoring for anomaly
//! detection — behind small [`traits`].
//!
//! All analyzers consume a plain `(N, F)` feature matrix, so they work on
//! any representation (shapelet features, baseline encoder embeddings,
//! classical statistics) interchangeably — which is exactly how the
//! experiment harnesses compare methods.

pub mod anomaly;
pub(crate) mod check;
pub mod classify;
pub mod cluster;
pub mod index;
pub mod preprocessing;
pub mod traits;

pub use index::{IndexBackend, IvfIndex, NnIndex};
pub use traits::{AnomalyScorer, Classifier, Clusterer};

#[cfg(test)]
pub(crate) mod testutil;

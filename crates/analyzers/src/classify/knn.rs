//! k-nearest-neighbour classification (Euclidean metric, majority vote with
//! nearest-neighbour tie-break).
//!
//! Neighbour search runs through an [`NnIndex`] handle: the default
//! [`IndexBackend::Exact`] streams the blocked [`pairdist`] engine's
//! heap-bounded top-k (equal distances resolve to the lowest training
//! index, NaN distances sort last — the ordering the old full scan had),
//! while [`IndexBackend::Ivf`] builds a coarse inverted-file index at `fit`
//! and probes it per query, trading recall for sublinear scan work on large
//! training sets.
//!
//! [`pairdist`]: tcsl_tensor::pairdist

use crate::check;
use crate::index::{IndexBackend, NnIndex};
use crate::traits::Classifier;
use tcsl_error::TcslResult;
use tcsl_tensor::Tensor;

/// k-NN classifier.
#[derive(Clone, Debug)]
pub struct KnnClassifier {
    /// Number of neighbours.
    pub k: usize,
    /// Neighbour-search engine; [`IndexBackend::Exact`] by default. Changes
    /// take effect at the next `fit` (that is when the index is built).
    pub backend: IndexBackend,
    index: Option<NnIndex>,
    train_y: Vec<usize>,
}

impl KnnClassifier {
    /// k-NN with the given `k` (≥ 1) on the exact engine.
    pub fn new(k: usize) -> Self {
        Self::with_backend(k, IndexBackend::Exact)
    }

    /// k-NN with the given `k` (≥ 1) searching through `backend`.
    pub fn with_backend(k: usize, backend: IndexBackend) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KnnClassifier {
            k,
            backend,
            index: None,
            train_y: Vec::new(),
        }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &Tensor, y: &[usize]) -> TcslResult<()> {
        check::check_train(x, Some(y), "k-NN")?;
        self.index = Some(NnIndex::build(x.clone(), self.backend));
        self.train_y = y.to_vec();
        Ok(())
    }

    fn predict(&self, x: &Tensor) -> TcslResult<Vec<usize>> {
        let _span = tcsl_obs::spans::span("knn_classify.predict");
        let index = self
            .index
            .as_ref()
            .ok_or_else(|| check::before_fit("k-NN predict"))?;
        check::check_query(x, index.dim(), "k-NN predict")?;
        // The class count depends only on the training labels: computed
        // once per predict call, not (as it used to be) re-scanned from
        // scratch inside the per-row closure.
        let n_classes = self.train_y.iter().copied().max().unwrap_or(0) + 1;
        let all_nn = index.knn(x, self.k)?;
        Ok(all_nn
            .into_iter()
            .map(|nn| {
                let mut votes = vec![0usize; n_classes];
                for &(idx, _) in &nn {
                    votes[self.train_y[idx]] += 1;
                }
                #[allow(clippy::disallowed_methods)] // n_classes >= 1 by construction
                let top = *votes.iter().max().expect("at least one class");
                // Tie-break by the nearest neighbour among tied classes.
                #[allow(clippy::disallowed_methods)] // the index returns >= 1 neighbour
                nn.iter()
                    .find(|(idx, _)| votes[self.train_y[*idx]] == top)
                    .map(|&(idx, _)| self.train_y[idx])
                    .expect("non-empty neighbourhood")
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    #[test]
    fn one_nn_memorizes_training_data() {
        let (x, y) = blobs(3, 15, 3, 5.0, 1);
        let mut knn = KnnClassifier::new(1);
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.accuracy(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn five_nn_generalizes() {
        let (xtr, ytr) = blobs(2, 40, 4, 5.0, 2);
        let (xte, yte) = blobs(2, 15, 4, 5.0, 3);
        let mut knn = KnnClassifier::new(5);
        knn.fit(&xtr, &ytr).unwrap();
        assert!(knn.accuracy(&xte, &yte).unwrap() > 0.9);
    }

    #[test]
    fn tie_break_uses_nearest() {
        // Two training points at distance 1 and 2 with different labels, k=2:
        // tie (1 vote each) resolved toward the closer point's label.
        let x = Tensor::from_vec(vec![1.0, 2.0], [2, 1]);
        let mut knn = KnnClassifier::new(2);
        knn.fit(&x, &[1, 0]).unwrap(); // labels [1, 0]
        let q = Tensor::from_vec(vec![1.1], [1, 1]);
        assert_eq!(knn.predict(&q).unwrap(), vec![1]);
    }

    #[test]
    fn exactly_tied_rows_resolve_to_lowest_index() {
        // Training rows 0 and 2 are bit-identical with different labels:
        // the 1-NN winner must be the lower index (label 7), the order the
        // old stable full-scan sort produced.
        let x = Tensor::from_vec(vec![3.0, 3.0, 0.0, 0.0, 3.0, 3.0], [3, 2]);
        let mut knn = KnnClassifier::new(1);
        knn.fit(&x, &[7, 1, 4]).unwrap();
        let q = Tensor::from_vec(vec![3.0, 3.0], [1, 2]);
        assert_eq!(knn.predict(&q).unwrap(), vec![7]);
    }

    #[test]
    fn predictions_match_naive_full_scan() {
        // Regression pin for the engine rewiring + the hoisted class count:
        // the blocked path must reproduce the old per-row full-scan
        // implementation exactly on generic data.
        let (xtr, ytr) = blobs(3, 30, 4, 5.0, 7);
        let (xte, _) = blobs(3, 20, 4, 5.0, 8);
        let mut knn = KnnClassifier::new(3);
        knn.fit(&xtr, &ytr).unwrap();
        let fast = knn.predict(&xte).unwrap();

        let naive: Vec<usize> = (0..xte.rows())
            .map(|i| {
                let row = xte.row(i);
                let mut d: Vec<(usize, f32)> = (0..xtr.rows())
                    .map(|j| {
                        let dist: f32 = xtr
                            .row(j)
                            .iter()
                            .zip(row)
                            .map(|(&a, &b)| (a - b) * (a - b))
                            .sum();
                        (j, dist)
                    })
                    .collect();
                d.sort_by(|a, b| a.1.total_cmp(&b.1));
                d.truncate(3);
                let n_classes = ytr.iter().copied().max().unwrap() + 1;
                let mut votes = vec![0usize; n_classes];
                for &(idx, _) in &d {
                    votes[ytr[idx]] += 1;
                }
                let top = *votes.iter().max().unwrap();
                d.iter()
                    .find(|(idx, _)| votes[ytr[*idx]] == top)
                    .map(|&(idx, _)| ytr[idx])
                    .unwrap()
            })
            .collect();
        assert_eq!(fast, naive);
    }

    #[test]
    fn ivf_backend_at_full_probe_matches_exact_predictions() {
        let (xtr, ytr) = blobs(3, 40, 5, 5.0, 9);
        let (xte, _) = blobs(3, 25, 5, 5.0, 10);
        let mut exact = KnnClassifier::new(3);
        exact.fit(&xtr, &ytr).unwrap();
        let mut ivf = KnnClassifier::with_backend(
            3,
            IndexBackend::Ivf {
                nlist: 6,
                nprobe: 6,
            },
        );
        ivf.fit(&xtr, &ytr).unwrap();
        assert_eq!(exact.predict(&xte).unwrap(), ivf.predict(&xte).unwrap());
    }

    #[test]
    fn ivf_backend_with_few_probes_stays_accurate_on_separated_blobs() {
        let (xtr, ytr) = blobs(3, 40, 4, 8.0, 11);
        let (xte, yte) = blobs(3, 15, 4, 8.0, 12);
        let mut knn = KnnClassifier::with_backend(
            5,
            IndexBackend::Ivf {
                nlist: 8,
                nprobe: 2,
            },
        );
        knn.fit(&xtr, &ytr).unwrap();
        assert!(knn.accuracy(&xte, &yte).unwrap() > 0.9);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        KnnClassifier::new(0);
    }

    #[test]
    fn nan_features_are_a_typed_error() {
        // A NaN in user-supplied features used to abort the whole
        // prediction pass via `partial_cmp().expect`; now it is rejected
        // up front as a request error instead of silently sorting last.
        let x = Tensor::from_vec(vec![0.0, 1.0, f32::NAN], [3, 1]);
        let mut knn = KnnClassifier::new(1);
        let err = knn.fit(&x, &[0, 1, 1]).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::NonFiniteInput);

        let clean = Tensor::from_vec(vec![0.0, 1.0], [2, 1]);
        knn.fit(&clean, &[0, 1]).unwrap();
        let q = Tensor::from_vec(vec![f32::NAN], [1, 1]);
        let err = knn.predict(&q).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::NonFiniteInput);
    }

    #[test]
    fn misuse_is_a_typed_error_not_a_panic() {
        let knn = KnnClassifier::new(1);
        let err = knn.predict(&Tensor::zeros([1, 2])).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("before fit"), "{err}");

        let mut knn = KnnClassifier::new(1);
        let err = knn.fit(&Tensor::zeros([0, 2]), &[]).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::EmptyInput);
        let err = knn.fit(&Tensor::zeros([2, 2]), &[0]).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::ShapeMismatch);

        knn.fit(&Tensor::zeros([2, 2]), &[0, 1]).unwrap();
        let err = knn.predict(&Tensor::zeros([1, 3])).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::ShapeMismatch);
    }
}

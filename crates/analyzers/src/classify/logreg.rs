//! Multinomial logistic regression trained by full-batch gradient descent
//! with L2 regularization.

use crate::check;
use crate::traits::Classifier;
use tcsl_error::TcslResult;
use tcsl_tensor::Tensor;

/// Softmax (multinomial) logistic regression.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    /// Gradient-descent step size.
    pub learning_rate: f32,
    /// Iterations of full-batch descent.
    pub iterations: usize,
    /// L2 regularization strength.
    pub l2: f32,
    w: Option<Tensor>, // (C, F+1), bias last column
}

impl LogisticRegression {
    /// Defaults tuned for standardized features.
    pub fn new() -> Self {
        LogisticRegression {
            learning_rate: 0.5,
            iterations: 200,
            l2: 1e-4,
            w: None,
        }
    }

    /// Overrides the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations >= 1, "need at least one iteration");
        self.iterations = iterations;
        self
    }

    fn logits(w: &Tensor, x: &Tensor) -> Tensor {
        let (n, f) = (x.rows(), x.cols());
        let c = w.rows();
        assert_eq!(w.cols(), f + 1, "feature width changed since fit");
        let mut out = Tensor::zeros([n, c]);
        for i in 0..n {
            let row = x.row(i);
            for cc in 0..c {
                let wr = w.row(cc);
                let mut acc = wr[f];
                for (&xv, &wv) in row.iter().zip(wr.iter()) {
                    acc += xv * wv;
                }
                out.set(&[i, cc], acc);
            }
        }
        out
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Tensor, y: &[usize]) -> TcslResult<()> {
        check::check_train(x, Some(y), "logistic regression")?;
        let (n, f) = (x.rows(), x.cols());
        let c = y.iter().copied().max().unwrap_or(0) + 1;
        let mut w = Tensor::zeros([c, f + 1]);
        for _ in 0..self.iterations {
            let logits = Self::logits(&w, x);
            // grad[c] = mean_i (softmax_i[c] − 1{y_i=c}) · [x_i; 1] + l2·w[c]
            let mut grad = Tensor::zeros([c, f + 1]);
            for i in 0..n {
                let row = logits.row(i);
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
                let total: f32 = exps.iter().sum();
                for cc in 0..c {
                    let p = exps[cc] / total - if y[i] == cc { 1.0 } else { 0.0 };
                    let gr = grad.row_mut(cc);
                    for (gv, &xv) in gr.iter_mut().zip(x.row(i)) {
                        *gv += p * xv;
                    }
                    gr[f] += p;
                }
            }
            grad = grad.scale(1.0 / n as f32);
            grad.add_scaled_inplace(&w, self.l2);
            w.add_scaled_inplace(&grad, -self.learning_rate);
        }
        self.w = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Tensor) -> TcslResult<Vec<usize>> {
        let w = self
            .w
            .as_ref()
            .ok_or_else(|| check::before_fit("logistic regression predict"))?;
        check::check_query(x, w.cols() - 1, "logistic regression predict")?;
        let logits = Self::logits(w, x);
        Ok((0..logits.rows())
            .map(|i| {
                let row = logits.row(i);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    #[test]
    fn fits_blobs() {
        let (x, y) = blobs(3, 25, 4, 5.0, 1);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y).unwrap();
        assert!(lr.accuracy(&x, &y).unwrap() > 0.9);
    }

    #[test]
    fn binary_case() {
        let (x, y) = blobs(2, 40, 2, 4.0, 2);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y).unwrap();
        assert!(lr.accuracy(&x, &y).unwrap() > 0.9);
    }

    #[test]
    fn regularization_bounds_weights() {
        let (x, y) = blobs(2, 20, 3, 8.0, 3);
        let mut strong = LogisticRegression {
            l2: 1.0,
            ..LogisticRegression::new()
        };
        let mut weak = LogisticRegression {
            l2: 1e-6,
            ..LogisticRegression::new()
        };
        strong.fit(&x, &y).unwrap();
        weak.fit(&x, &y).unwrap();
        let ns = strong.w.as_ref().unwrap().norm();
        let nw = weak.w.as_ref().unwrap().norm();
        assert!(ns < nw, "strong reg should shrink weights: {ns} vs {nw}");
    }

    #[test]
    fn predict_before_fit_is_a_typed_error() {
        let err = LogisticRegression::new()
            .predict(&Tensor::zeros([1, 2]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("before fit"), "{err}");
    }

    #[test]
    fn width_mismatch_is_a_shape_error() {
        let (x, y) = blobs(2, 10, 3, 4.0, 4);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y).unwrap();
        let err = lr.predict(&Tensor::zeros([1, 5])).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::ShapeMismatch);
    }
}

//! Random forest: bagged CART trees over bootstrap samples with random
//! feature subspaces, majority vote.

use crate::check;
use crate::classify::tree::DecisionTree;
use crate::traits::Classifier;
use rand::Rng;
use tcsl_error::TcslResult;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

/// Random-forest classifier.
#[derive(Clone, Debug)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth cap of each tree.
    pub max_depth: usize,
    /// Features sampled per tree (0 = √F).
    pub features_per_tree: usize,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<(DecisionTree, Vec<usize>)>, // tree + its feature subset
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Forest with the given size and defaults (depth 8, √F features).
    pub fn new(n_trees: usize) -> Self {
        assert!(n_trees >= 1, "need at least one tree");
        RandomForest {
            n_trees,
            max_depth: 8,
            features_per_tree: 0,
            seed: 0,
            trees: Vec::new(),
            n_classes: 0,
            n_features: 0,
        }
    }

    fn project(x: &Tensor, rows: &[usize], cols: &[usize]) -> Tensor {
        let mut out = Tensor::zeros([rows.len(), cols.len()]);
        for (ri, &r) in rows.iter().enumerate() {
            for (ci, &c) in cols.iter().enumerate() {
                out.set(&[ri, ci], x.at2(r, c));
            }
        }
        out
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Tensor, y: &[usize]) -> TcslResult<()> {
        check::check_train(x, Some(y), "random forest")?;
        let n = x.rows();
        let f = x.cols();
        self.n_classes = y.iter().copied().max().unwrap_or(0) + 1;
        let per_tree = if self.features_per_tree == 0 {
            ((f as f32).sqrt().ceil() as usize).clamp(1, f)
        } else {
            self.features_per_tree.min(f)
        };
        let mut rng = seeded(self.seed);
        self.n_features = f;
        self.trees = (0..self.n_trees)
            .map(|_| {
                // Bootstrap rows.
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                // Random feature subset.
                let perm = tcsl_tensor::rng::permutation(&mut rng, f);
                let cols: Vec<usize> = perm.into_iter().take(per_tree).collect();
                let xt = Self::project(x, &rows, &cols);
                let yt: Vec<usize> = rows.iter().map(|&r| y[r]).collect();
                let mut tree = DecisionTree::new(self.max_depth);
                tree.fit(&xt, &yt)?;
                Ok((tree, cols))
            })
            .collect::<TcslResult<Vec<_>>>()?;
        Ok(())
    }

    fn predict(&self, x: &Tensor) -> TcslResult<Vec<usize>> {
        if self.trees.is_empty() {
            return Err(check::before_fit("random forest predict"));
        }
        check::check_query(x, self.n_features, "random forest predict")?;
        let rows: Vec<usize> = (0..x.rows()).collect();
        let mut votes = vec![vec![0usize; self.n_classes]; x.rows()];
        for (tree, cols) in &self.trees {
            let xt = Self::project(x, &rows, cols);
            for (i, p) in tree.predict(&xt)?.into_iter().enumerate() {
                votes[i][p] += 1;
            }
        }
        Ok(votes
            .into_iter()
            .map(|v| {
                let mut best = 0;
                for (c, &count) in v.iter().enumerate() {
                    if count > v[best] {
                        best = c;
                    }
                }
                best
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    #[test]
    fn forest_beats_single_shallow_tree_on_noisy_blobs() {
        let (xtr, ytr) = blobs(3, 40, 8, 2.5, 1);
        let (xte, yte) = blobs(3, 15, 8, 2.5, 2);
        let mut forest = RandomForest::new(30);
        forest.fit(&xtr, &ytr).unwrap();
        let facc = forest.accuracy(&xte, &yte).unwrap();
        let mut stump = DecisionTree::new(2);
        stump.fit(&xtr, &ytr).unwrap();
        let sacc = stump.accuracy(&xte, &yte).unwrap();
        assert!(facc >= sacc, "forest {facc} < stump {sacc}");
        assert!(facc > 0.75, "forest accuracy only {facc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(2, 25, 5, 4.0, 3);
        let mut a = RandomForest::new(10);
        let mut b = RandomForest::new(10);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn explicit_feature_budget_is_respected() {
        let (x, y) = blobs(2, 20, 6, 5.0, 4);
        let mut f = RandomForest {
            features_per_tree: 2,
            ..RandomForest::new(5)
        };
        f.fit(&x, &y).unwrap();
        for (_, cols) in &f.trees {
            assert_eq!(cols.len(), 2);
        }
    }

    #[test]
    fn predict_before_fit_is_a_typed_error() {
        let err = RandomForest::new(3)
            .predict(&Tensor::zeros([1, 2]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("before fit"), "{err}");
    }
}

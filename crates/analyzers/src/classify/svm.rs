//! Linear SVM trained with Pegasos (stochastic subgradient on the hinge
//! loss with L2 regularization), one-vs-rest for multiclass — the default
//! freezing-mode classifier of the demo.

use crate::check;
use crate::traits::Classifier;
use tcsl_error::TcslResult;
use tcsl_tensor::rng::{permutation, seeded};
use tcsl_tensor::Tensor;

/// One-vs-rest linear SVM.
#[derive(Clone, Debug)]
pub struct LinearSvm {
    /// Regularization strength λ of Pegasos.
    pub lambda: f32,
    /// Epochs over the data.
    pub epochs: usize,
    /// RNG seed for sample order.
    pub seed: u64,
    weights: Vec<Vec<f32>>, // one (F+1)-vector per class (bias last)
}

impl LinearSvm {
    /// SVM with sensible defaults (λ=1e-3, 40 epochs).
    pub fn new() -> Self {
        LinearSvm {
            lambda: 1e-3,
            epochs: 40,
            seed: 0,
            weights: Vec::new(),
        }
    }

    /// Overrides the regularization strength.
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        self.lambda = lambda;
        self
    }

    /// Decision value of class `c` for a feature row.
    fn decision(&self, c: usize, row: &[f32]) -> f32 {
        let w = &self.weights[c];
        let mut acc = w[row.len()]; // bias
        for (&x, &wi) in row.iter().zip(w.iter()) {
            acc += x * wi;
        }
        acc
    }

    fn train_binary(&self, x: &Tensor, targets: &[f32]) -> Vec<f32> {
        let (n, f) = (x.rows(), x.cols());
        let mut w = vec![0.0f32; f + 1];
        let mut rng = seeded(self.seed);
        let mut t = 0u64;
        for _epoch in 0..self.epochs {
            for &i in &permutation(&mut rng, n) {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f32);
                let row = x.row(i);
                let y = targets[i];
                let margin = y * (row.iter().zip(&w).map(|(&a, &b)| a * b).sum::<f32>() + w[f]);
                // w ← (1 − ηλ)·w  (+ η·y·x on margin violation)
                let shrink = 1.0 - eta * self.lambda;
                for wi in w.iter_mut().take(f) {
                    *wi *= shrink;
                }
                if margin < 1.0 {
                    for (wi, &xi) in w.iter_mut().zip(row) {
                        *wi += eta * y * xi;
                    }
                    w[f] += eta * y;
                }
            }
        }
        w
    }
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Tensor, y: &[usize]) -> TcslResult<()> {
        check::check_train(x, Some(y), "SVM")?;
        let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
        self.weights = (0..n_classes)
            .map(|c| {
                let targets: Vec<f32> =
                    y.iter().map(|&l| if l == c { 1.0 } else { -1.0 }).collect();
                self.train_binary(x, &targets)
            })
            .collect();
        Ok(())
    }

    fn predict(&self, x: &Tensor) -> TcslResult<Vec<usize>> {
        if self.weights.is_empty() {
            return Err(check::before_fit("SVM predict"));
        }
        check::check_query(x, self.weights[0].len() - 1, "SVM predict")?;
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for c in 0..self.weights.len() {
                    let v = self.decision(c, row);
                    if v > best_v {
                        best_v = v;
                        best = c;
                    }
                }
                best
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    #[test]
    fn separates_two_blobs() {
        let (x, y) = blobs(2, 30, 4, 6.0, 1);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y).unwrap();
        assert!(svm.accuracy(&x, &y).unwrap() > 0.95);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let (x, y) = blobs(4, 25, 6, 7.0, 2);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y).unwrap();
        assert!(
            svm.accuracy(&x, &y).unwrap() > 0.9,
            "accuracy {}",
            svm.accuracy(&x, &y).unwrap()
        );
    }

    #[test]
    fn generalizes_to_held_out_points() {
        let (xtr, ytr) = blobs(3, 30, 5, 6.0, 3);
        let (xte, yte) = blobs(3, 10, 5, 6.0, 4);
        let mut svm = LinearSvm::new();
        svm.fit(&xtr, &ytr).unwrap();
        assert!(svm.accuracy(&xte, &yte).unwrap() > 0.85);
    }

    #[test]
    fn predict_before_fit_is_a_typed_error() {
        let err = LinearSvm::new()
            .predict(&Tensor::zeros([1, 2]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("before fit"), "{err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(2, 20, 3, 5.0, 5);
        let mut a = LinearSvm::new();
        let mut b = LinearSvm::new();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }
}

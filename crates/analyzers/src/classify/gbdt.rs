//! Gradient-boosted decision trees: one-vs-rest logistic boosting with
//! shallow regression trees as weak learners.

use crate::check;
use crate::classify::tree::RegressionTree;
use crate::traits::Classifier;
use tcsl_error::TcslResult;
use tcsl_tensor::Tensor;

/// One-vs-rest gradient boosting classifier.
#[derive(Clone, Debug)]
pub struct GradientBoosting {
    /// Boosting rounds per class.
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub shrinkage: f32,
    /// Depth of each weak learner.
    pub tree_depth: usize,
    ensembles: Vec<Vec<RegressionTree>>, // per class
    n_features: usize,
}

impl GradientBoosting {
    /// Boosting with the given round budget.
    pub fn new(rounds: usize) -> Self {
        assert!(rounds >= 1, "need at least one boosting round");
        GradientBoosting {
            rounds,
            shrinkage: 0.3,
            tree_depth: 3,
            ensembles: Vec::new(),
            n_features: 0,
        }
    }

    fn raw_scores(&self, x: &Tensor) -> Tensor {
        let (n, c) = (x.rows(), self.ensembles.len());
        let mut out = Tensor::zeros([n, c]);
        for (cc, ensemble) in self.ensembles.iter().enumerate() {
            for tree in ensemble {
                for (i, p) in tree.predict(x).into_iter().enumerate() {
                    let v = out.at2(i, cc);
                    out.set(&[i, cc], v + self.shrinkage * p);
                }
            }
        }
        out
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &Tensor, y: &[usize]) -> TcslResult<()> {
        check::check_train(x, Some(y), "gradient boosting")?;
        self.n_features = x.cols();
        let n = x.rows();
        let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
        self.ensembles = (0..n_classes)
            .map(|c| {
                let targets: Vec<f32> = y.iter().map(|&l| if l == c { 1.0 } else { 0.0 }).collect();
                let mut score = vec![0.0f32; n];
                let mut ensemble = Vec::with_capacity(self.rounds);
                for _ in 0..self.rounds {
                    // Negative gradient of logistic loss: y − σ(F).
                    let residual: Vec<f32> = score
                        .iter()
                        .zip(&targets)
                        .map(|(&s, &t)| t - sigmoid(s))
                        .collect();
                    let mut tree = RegressionTree::new(self.tree_depth);
                    tree.fit(x, &residual);
                    for (s, p) in score.iter_mut().zip(tree.predict(x)) {
                        *s += self.shrinkage * p;
                    }
                    ensemble.push(tree);
                }
                ensemble
            })
            .collect();
        Ok(())
    }

    fn predict(&self, x: &Tensor) -> TcslResult<Vec<usize>> {
        if self.ensembles.is_empty() {
            return Err(check::before_fit("gradient boosting predict"));
        }
        check::check_query(x, self.n_features, "gradient boosting predict")?;
        let scores = self.raw_scores(x);
        Ok((0..scores.rows())
            .map(|i| {
                let row = scores.row(i);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    #[test]
    fn boosts_past_a_single_stump() {
        let (x, y) = blobs(2, 30, 3, 3.0, 1);
        let mut one = GradientBoosting {
            rounds: 1,
            tree_depth: 1,
            ..GradientBoosting::new(1)
        };
        let mut many = GradientBoosting {
            rounds: 25,
            tree_depth: 1,
            ..GradientBoosting::new(1)
        };
        one.fit(&x, &y).unwrap();
        many.fit(&x, &y).unwrap();
        assert!(many.accuracy(&x, &y).unwrap() >= one.accuracy(&x, &y).unwrap());
        assert!(many.accuracy(&x, &y).unwrap() > 0.9);
    }

    #[test]
    fn multiclass_blobs() {
        let (x, y) = blobs(3, 20, 4, 5.0, 2);
        let mut gb = GradientBoosting::new(15);
        gb.fit(&x, &y).unwrap();
        assert!(gb.accuracy(&x, &y).unwrap() > 0.9);
    }

    #[test]
    fn handles_nonlinear_xor() {
        let pts = [
            (1.0f32, 1.0f32, 0usize),
            (-1.0, -1.0, 0),
            (1.0, -1.0, 1),
            (-1.0, 1.0, 1),
            (1.5, 1.5, 0),
            (-1.5, -1.5, 0),
            (1.5, -1.5, 1),
            (-1.5, 1.5, 1),
        ];
        let data: Vec<f32> = pts.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        let y: Vec<usize> = pts.iter().map(|&(_, _, l)| l).collect();
        let x = Tensor::from_vec(data, [8, 2]);
        let mut gb = GradientBoosting {
            rounds: 60,
            tree_depth: 4,
            ..GradientBoosting::new(1)
        };
        gb.fit(&x, &y).unwrap();
        assert_eq!(gb.accuracy(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn predict_before_fit_is_a_typed_error() {
        let err = GradientBoosting::new(2)
            .predict(&Tensor::zeros([1, 1]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("before fit"), "{err}");
    }
}

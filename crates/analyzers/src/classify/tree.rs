//! CART decision trees: a gini-impurity classifier and a variance-reduction
//! regression tree (the weak learner of [`crate::classify::gbdt`]).

use crate::check;
use crate::traits::Classifier;
use tcsl_error::TcslResult;
use tcsl_tensor::Tensor;

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A binary tree over feature thresholds storing `f32` leaf values
/// (class id for classification, mean target for regression).
#[derive(Clone, Debug, Default)]
struct TreeCore {
    nodes: Vec<Node>,
}

impl TreeCore {
    fn predict_row(&self, row: &[f32]) -> f32 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A chosen split: `(feature, threshold, left members, right members)`.
type Split = (usize, f32, Vec<usize>, Vec<usize>);

/// A candidate split with its impurity score prepended.
type ScoredSplit = (f32, usize, f32, Vec<usize>, Vec<usize>);

/// Best split of `indices` under an impurity function returning the summed
/// impurity of a child given its member indices. Returns
/// `(feature, threshold, left, right)` or `None` when no split helps.
fn best_split(
    x: &Tensor,
    indices: &[usize],
    impurity: &dyn Fn(&[usize]) -> f32,
    min_leaf: usize,
) -> Option<Split> {
    let parent = impurity(indices);
    let mut best: Option<ScoredSplit> = None;
    for f in 0..x.cols() {
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            // total_cmp: NaN feature values sort last instead of panicking.
            x.at2(a, f).total_cmp(&x.at2(b, f))
        });
        for cut in min_leaf..order.len().saturating_sub(min_leaf - 1) {
            if cut >= order.len() {
                break;
            }
            let lo = x.at2(order[cut - 1], f);
            let hi = x.at2(order[cut], f);
            if hi - lo < 1e-9 {
                continue;
            }
            let threshold = 0.5 * (lo + hi);
            let (left, right) = (&order[..cut], &order[cut..]);
            let score = impurity(left) + impurity(right);
            // Non-worsening splits are allowed (XOR-style targets improve
            // only two levels down); recursion stays bounded because every
            // split strictly shrinks both children.
            if score <= parent + 1e-9 {
                match &best {
                    Some((bs, ..)) if *bs <= score => {}
                    _ => best = Some((score, f, threshold, left.to_vec(), right.to_vec())),
                }
            }
        }
    }
    best.map(|(_, f, t, l, r)| (f, t, l, r))
}

#[allow(clippy::too_many_arguments)] // recursive kernel; a params struct would only relabel these
fn build(
    core: &mut TreeCore,
    x: &Tensor,
    indices: &[usize],
    depth: usize,
    max_depth: usize,
    min_split: usize,
    impurity: &dyn Fn(&[usize]) -> f32,
    leaf_value: &dyn Fn(&[usize]) -> f32,
) -> usize {
    let make_leaf = depth >= max_depth || indices.len() < min_split;
    if !make_leaf {
        if let Some((feature, threshold, left_idx, right_idx)) = best_split(x, indices, impurity, 1)
        {
            let slot = core.nodes.len();
            core.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
            let left = build(
                core,
                x,
                &left_idx,
                depth + 1,
                max_depth,
                min_split,
                impurity,
                leaf_value,
            );
            let right = build(
                core,
                x,
                &right_idx,
                depth + 1,
                max_depth,
                min_split,
                impurity,
                leaf_value,
            );
            core.nodes[slot] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
            return slot;
        }
    }
    core.nodes.push(Node::Leaf {
        value: leaf_value(indices),
    });
    core.nodes.len() - 1
}

/// Gini-impurity CART classifier.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    core: TreeCore,
    fitted: bool,
    n_features: usize,
}

impl DecisionTree {
    /// Tree with the given depth cap.
    pub fn new(max_depth: usize) -> Self {
        assert!(max_depth >= 1, "max_depth must be at least 1");
        DecisionTree {
            max_depth,
            min_samples_split: 2,
            core: TreeCore::default(),
            fitted: false,
            n_features: 0,
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Tensor, y: &[usize]) -> TcslResult<()> {
        check::check_train(x, Some(y), "decision tree")?;
        let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
        let gini = |idx: &[usize]| -> f32 {
            let mut counts = vec![0usize; n_classes];
            for &i in idx {
                counts[y[i]] += 1;
            }
            let n = idx.len() as f32;
            let sum_sq: f32 = counts.iter().map(|&c| (c as f32 / n).powi(2)).sum();
            (1.0 - sum_sq) * n // weighted gini
        };
        let majority = |idx: &[usize]| -> f32 {
            let mut counts = vec![0usize; n_classes];
            for &i in idx {
                counts[y[i]] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(c, _)| c as f32)
                .unwrap_or(0.0)
        };
        self.core = TreeCore::default();
        let indices: Vec<usize> = (0..x.rows()).collect();
        build(
            &mut self.core,
            x,
            &indices,
            0,
            self.max_depth,
            self.min_samples_split,
            &gini,
            &majority,
        );
        self.fitted = true;
        self.n_features = x.cols();
        Ok(())
    }

    fn predict(&self, x: &Tensor) -> TcslResult<Vec<usize>> {
        if !self.fitted {
            return Err(check::before_fit("decision tree predict"));
        }
        check::check_query(x, self.n_features, "decision tree predict")?;
        Ok((0..x.rows())
            .map(|i| self.core.predict_row(x.row(i)) as usize)
            .collect())
    }
}

/// Variance-reduction regression tree (leaf = mean target).
#[derive(Clone, Debug)]
pub struct RegressionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    core: TreeCore,
    fitted: bool,
}

impl RegressionTree {
    /// Regression tree with the given depth cap.
    pub fn new(max_depth: usize) -> Self {
        assert!(max_depth >= 1, "max_depth must be at least 1");
        RegressionTree {
            max_depth,
            min_samples_split: 2,
            core: TreeCore::default(),
            fitted: false,
        }
    }

    /// Fits to continuous targets.
    pub fn fit(&mut self, x: &Tensor, targets: &[f32]) {
        assert_eq!(x.rows(), targets.len(), "one target per row required");
        assert!(x.rows() > 0, "empty training set");
        let sse = |idx: &[usize]| -> f32 {
            let n = idx.len() as f32;
            let mean: f32 = idx.iter().map(|&i| targets[i]).sum::<f32>() / n;
            idx.iter().map(|&i| (targets[i] - mean).powi(2)).sum()
        };
        let mean = |idx: &[usize]| -> f32 {
            idx.iter().map(|&i| targets[i]).sum::<f32>() / idx.len() as f32
        };
        self.core = TreeCore::default();
        let indices: Vec<usize> = (0..x.rows()).collect();
        build(
            &mut self.core,
            x,
            &indices,
            0,
            self.max_depth,
            self.min_samples_split,
            &sse,
            &mean,
        );
        self.fitted = true;
    }

    /// Predicted value per row.
    pub fn predict(&self, x: &Tensor) -> Vec<f32> {
        assert!(self.fitted, "predict before fit");
        (0..x.rows())
            .map(|i| self.core.predict_row(x.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    #[test]
    fn classifies_blobs() {
        let (x, y) = blobs(3, 20, 4, 6.0, 1);
        let mut tree = DecisionTree::new(6);
        tree.fit(&x, &y).unwrap();
        assert!(tree.accuracy(&x, &y).unwrap() > 0.9);
    }

    #[test]
    fn learns_xor_that_stumps_linear_models() {
        // XOR in 2D: class = sign(x0) != sign(x1).
        let pts = [
            (1.0f32, 1.0f32, 0usize),
            (-1.0, -1.0, 0),
            (1.0, -1.0, 1),
            (-1.0, 1.0, 1),
            (2.0, 2.0, 0),
            (-2.0, -2.0, 0),
            (2.0, -2.0, 1),
            (-2.0, 2.0, 1),
        ];
        let data: Vec<f32> = pts.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        let y: Vec<usize> = pts.iter().map(|&(_, _, l)| l).collect();
        let x = Tensor::from_vec(data, [8, 2]);
        // Greedy gini may peel off single points near the root, so give the
        // tree enough depth to finish the job.
        let mut tree = DecisionTree::new(8);
        tree.fit(&x, &y).unwrap();
        assert_eq!(tree.accuracy(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn depth_one_is_a_stump() {
        let (x, y) = blobs(2, 15, 2, 8.0, 2);
        let mut tree = DecisionTree::new(1);
        tree.fit(&x, &y).unwrap();
        // A stump still separates two well-spread blobs on one axis.
        assert!(tree.accuracy(&x, &y).unwrap() > 0.9);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let x = Tensor::from_vec((0..20).map(|i| i as f32).collect(), [20, 1]);
        let targets: Vec<f32> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut tree = RegressionTree::new(2);
        tree.fit(&x, &targets);
        let pred = tree.predict(&x);
        for (p, t) in pred.iter().zip(&targets) {
            assert!((p - t).abs() < 0.5, "pred {p} target {t}");
        }
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], [4, 1]);
        let mut tree = RegressionTree::new(5);
        tree.fit(&x, &[2.0; 4]);
        assert_eq!(tree.predict(&x), vec![2.0; 4]);
    }

    #[test]
    fn predict_before_fit_is_a_typed_error() {
        let err = DecisionTree::new(3)
            .predict(&Tensor::zeros([1, 1]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("before fit"), "{err}");
    }
}

//! Classification analyzers.

pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod logreg;
pub mod svm;
pub mod tree;

pub use forest::RandomForest;
pub use gbdt::GradientBoosting;
pub use knn::KnnClassifier;
pub use logreg::LogisticRegression;
pub use svm::LinearSvm;
pub use tree::DecisionTree;

//! Shared request validation for analyzer entry points.
//!
//! Every analyzer's public `fit`/`predict`/`score` surface funnels its
//! input checks through these helpers so the error taxonomy stays uniform
//! across the crate: empty training data is `EmptyInput`, label/width
//! mismatches are `ShapeMismatch`, NaN/inf features are `NonFiniteInput`
//! and querying an unfitted model is `Config` (API misuse). See the
//! "Error taxonomy & panic policy" section of DESIGN.md.

use tcsl_error::{TcslError, TcslResult};
use tcsl_tensor::Tensor;

/// Validates a training feature matrix: non-empty and all-finite. When
/// `y` is given, it must hold exactly one label per row.
pub(crate) fn check_train(x: &Tensor, y: Option<&[usize]>, what: &str) -> TcslResult<()> {
    if x.rows() == 0 {
        return Err(TcslError::empty(format!("{what} training set")));
    }
    if let Some(y) = y {
        if y.len() != x.rows() {
            return Err(TcslError::shape_mismatch(
                format!("{what} labels"),
                format!("{} (one per row)", x.rows()),
                y.len(),
            ));
        }
    }
    check_finite(x, &format!("{what} training features"))
}

/// Validates a query matrix against the fitted feature width. Empty query
/// sets are allowed — they simply produce empty outputs.
pub(crate) fn check_query(x: &Tensor, expected_cols: usize, what: &str) -> TcslResult<()> {
    if x.cols() != expected_cols {
        return Err(TcslError::shape_mismatch(
            format!("{what} feature width"),
            expected_cols,
            x.cols(),
        ));
    }
    check_finite(x, &format!("{what} features"))
}

/// Every sample finite, else [`TcslError::NonFiniteInput`].
pub(crate) fn check_finite(x: &Tensor, what: &str) -> TcslResult<()> {
    if !x.as_slice().iter().all(|v| v.is_finite()) {
        return Err(TcslError::non_finite(what.to_string()));
    }
    Ok(())
}

/// The "called before fit" error — API misuse, so a `Config` error.
pub(crate) fn before_fit(what: &str) -> TcslError {
    TcslError::config(format!("{what} called before fit"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_error::ErrorClass;

    #[test]
    fn each_helper_maps_to_its_error_class() {
        let empty = Tensor::zeros([0, 3]);
        assert_eq!(
            check_train(&empty, None, "svm").unwrap_err().class(),
            ErrorClass::EmptyInput
        );
        let x = Tensor::zeros([2, 3]);
        assert_eq!(
            check_train(&x, Some(&[0]), "svm").unwrap_err().class(),
            ErrorClass::ShapeMismatch
        );
        let nan = Tensor::from_vec(vec![0.0, f32::NAN], [1, 2]);
        assert_eq!(
            check_train(&nan, None, "svm").unwrap_err().class(),
            ErrorClass::NonFiniteInput
        );
        assert_eq!(
            check_query(&x, 4, "predict").unwrap_err().class(),
            ErrorClass::ShapeMismatch
        );
        assert_eq!(before_fit("predict").class(), ErrorClass::Config);
        assert!(before_fit("predict").to_string().contains("before fit"));
    }

    #[test]
    fn valid_input_passes_every_check() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        check_train(&x, Some(&[0, 1]), "knn").unwrap();
        check_query(&x, 2, "predict").unwrap();
        // Empty queries are allowed.
        check_query(&Tensor::zeros([0, 2]), 2, "predict").unwrap();
    }
}

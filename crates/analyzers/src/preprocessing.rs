//! Feature preprocessing.

use tcsl_tensor::Tensor;

/// Per-column standardization fitted on training features — the usual
/// companion of SVMs and k-means on heterogeneous feature scales (shapelet
/// features mix distances, cosines and correlations).
#[derive(Clone, Debug)]
pub struct StandardScaler {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl StandardScaler {
    /// Fits column means and standard deviations.
    pub fn fit(x: &Tensor) -> Self {
        let (n, f) = (x.rows(), x.cols());
        assert!(n > 0, "cannot fit a scaler on zero rows");
        let mut means = vec![0.0f32; f];
        for i in 0..n {
            for (m, &v) in means.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f32;
        }
        let mut stds = vec![0.0f32; f];
        for i in 0..n {
            for ((s, &v), m) in stds.iter_mut().zip(x.row(i)).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n as f32).sqrt();
            if *s < 1e-8 {
                *s = 1.0; // constant column: center only
            }
        }
        StandardScaler { means, stds }
    }

    /// Standardizes a feature matrix with the fitted statistics.
    pub fn transform(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.cols(),
            self.means.len(),
            "feature width changed since fit"
        );
        let mut out = x.clone();
        for i in 0..out.rows() {
            for ((v, m), s) in out.row_mut(i).iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Fit and transform in one call.
    pub fn fit_transform(x: &Tensor) -> (Self, Tensor) {
        let scaler = Self::fit(x);
        let t = scaler.transform(x);
        (scaler, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let x = Tensor::from_vec(vec![0.0, 10.0, 2.0, 10.0, 4.0, 10.0], [3, 2]);
        let (_, t) = StandardScaler::fit_transform(&x);
        // Column 0 mean 2, std sqrt(8/3); column 1 constant → centered.
        let col0: Vec<f32> = (0..3).map(|i| t.at2(i, 0)).collect();
        assert!((col0.iter().sum::<f32>()).abs() < 1e-5);
        for i in 0..3 {
            assert_eq!(t.at2(i, 1), 0.0);
        }
    }

    #[test]
    fn transform_applies_train_statistics() {
        let train = Tensor::from_vec(vec![0.0, 2.0, 4.0, 6.0], [4, 1]);
        let scaler = StandardScaler::fit(&train);
        let test = Tensor::from_vec(vec![3.0], [1, 1]);
        let t = scaler.transform(&test);
        // mean 3, std sqrt(5) → 0
        assert!(t.at2(0, 0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "width changed")]
    fn width_mismatch_panics() {
        let scaler = StandardScaler::fit(&Tensor::zeros([2, 3]));
        scaler.transform(&Tensor::zeros([2, 4]));
    }
}

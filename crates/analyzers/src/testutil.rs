//! Shared fixtures for analyzer tests: separable Gaussian blobs.

use tcsl_tensor::rng::{gauss, seeded};
use tcsl_tensor::Tensor;

/// `k` Gaussian blobs of `n_per` points in `dim` dimensions, centers spread
/// `sep` apart. Returns `(features, labels)`.
pub fn blobs(k: usize, n_per: usize, dim: usize, sep: f32, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = seeded(seed);
    let centers: Vec<Vec<f32>> = (0..k)
        .map(|c| {
            (0..dim)
                .map(|d| if d % k == c { sep } else { 0.0 })
                .collect()
        })
        .collect();
    let mut data = Vec::with_capacity(k * n_per * dim);
    let mut labels = Vec::with_capacity(k * n_per);
    for (c, center) in centers.iter().enumerate() {
        for _ in 0..n_per {
            for &m in center {
                data.push(m + gauss(&mut rng));
            }
            labels.push(c);
        }
    }
    (Tensor::from_vec(data, [k * n_per, dim]), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_shapes() {
        let (x, y) = blobs(3, 10, 4, 5.0, 1);
        assert_eq!(x.rows(), 30);
        assert_eq!(x.cols(), 4);
        assert_eq!(y.len(), 30);
        assert_eq!(y.iter().filter(|&&l| l == 2).count(), 10);
    }
}

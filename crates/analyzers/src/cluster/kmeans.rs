//! Lloyd's k-means with k-means++ seeding and multiple restarts — the
//! demo's clustering analyzer and the coarse quantizer of the IVF index.
//!
//! The assignment step (points × centers, every Lloyd iteration), the
//! k-means++ seeding distances and the final inertia all run on the
//! blocked [`pairdist`] engine; equal distances assign to the lowest
//! center index, exactly as the old strict-`<` scalar scan did.
//!
//! [`KMeans::fit`] returns the whole fitted model ([`KMeansFit`]: centers,
//! assignments, inertia) so callers that need both — the IVF index buckets
//! the corpus by the very partition the fit produced — never run a second
//! assignment pass; [`Clusterer::fit_predict`] is now a thin wrapper over
//! it. The returned assignments are always consistent with the returned
//! centers (each row sits in its engine-argmin cell), even when a run
//! exhausts `max_iter` without converging.

use crate::check;
use crate::traits::Clusterer;
use rand::Rng;
use tcsl_error::{TcslError, TcslResult};
use tcsl_tensor::pairdist;
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

/// A fitted k-means model: the output of one [`KMeans::fit`].
#[derive(Clone, Debug)]
pub struct KMeansFit {
    /// Fitted centers, `(k, F)`.
    pub centers: Tensor,
    /// Per-row cluster assignment — always the [`assign_to_centers`]
    /// partition of the training data under `centers`.
    pub assignments: Vec<usize>,
    /// Sum of squared distances from every row to its assigned center.
    pub inertia: f32,
}

/// Assigns every row of `x` to its nearest row of `centers`: one blocked
/// points×centers engine call, argmin per row with a strict-`<` scan so
/// equal distances resolve to the lowest center index (and a NaN row,
/// never `<` anything, stays at center 0 rather than aborting). This is
/// the routing step the IVF index reuses to bucket a full corpus under
/// centroids fitted on a sample.
pub fn assign_to_centers(x: &Tensor, centers: &Tensor) -> Vec<usize> {
    let d = pairdist::pairdist(x, centers);
    (0..x.rows())
        .map(|i| {
            let row = d.row(i);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, &dist) in row.iter().enumerate() {
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            best
        })
        .collect()
}

/// k-means clusterer.
#[derive(Clone, Debug)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Independent restarts; best inertia wins.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    centers: Option<Tensor>,
}

impl KMeans {
    /// k-means with `k` clusters and sensible defaults.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one cluster");
        KMeans {
            k,
            max_iter: 100,
            restarts: 4,
            seed: 0,
            centers: None,
        }
    }

    /// Fitted centers `(k, F)`, if fitted.
    pub fn centers(&self) -> Option<&Tensor> {
        self.centers.as_ref()
    }

    /// Squared distances from every row of `x` to row `j` of `x`, as one
    /// single-center block through the engine.
    fn dists_to_row(x: &Tensor, j: usize) -> Vec<f32> {
        let center = Tensor::from_vec(x.row(j).to_vec(), [1, x.cols()]);
        pairdist::pairdist(x, &center).into_vec()
    }

    fn plus_plus_init(&self, x: &Tensor, rng: &mut impl Rng) -> Tensor {
        let n = x.rows();
        let mut centers: Vec<usize> = vec![rng.gen_range(0..n)];
        let mut d2: Vec<f32> = Self::dists_to_row(x, centers[0]);
        while centers.len() < self.k.min(n) {
            // Non-finite distances (NaN-poisoned rows, overflowed norms)
            // are excluded from the D² weighting: summing them would make
            // `total` NaN/inf and abort the draw, where the engine-wide
            // contract is that NaN rows never abort — they just can't be
            // *weighted* towards, only picked by the uniform fallback.
            let total: f32 = d2.iter().filter(|d| d.is_finite()).sum();
            let next = if total <= 1e-12 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut pick = None;
                for (i, &d) in d2.iter().enumerate() {
                    if !d.is_finite() {
                        continue;
                    }
                    pick = Some(i);
                    if target < d {
                        break;
                    }
                    target -= d;
                }
                #[allow(clippy::disallowed_methods)] // total > 0 implies a finite d2
                pick.expect("positive total implies a finite distance")
            };
            centers.push(next);
            for (slot, nd) in d2.iter_mut().zip(Self::dists_to_row(x, next)) {
                if nd < *slot {
                    *slot = nd;
                }
            }
        }
        let f = x.cols();
        let mut out = Tensor::zeros([centers.len(), f]);
        for (c, &i) in centers.iter().enumerate() {
            out.row_mut(c).copy_from_slice(x.row(i));
        }
        out
    }

    /// One Lloyd run from `centers`. The loop is structured so the
    /// returned assignments are *always* the [`assign_to_centers`]
    /// partition of `x` under the returned centers: every center update is
    /// followed by a fresh assignment, and the run stops when an update
    /// leaves the partition fixed (or `max_iter` updates have happened —
    /// with the closing assignment still recomputed against the final
    /// centers, where the previous formulation returned a stale one).
    fn lloyd(&self, x: &Tensor, mut centers: Tensor) -> (Tensor, Vec<usize>, f32) {
        let (n, f) = (x.rows(), x.cols());
        let k = centers.rows();
        let mut assign = assign_to_centers(x, &centers);
        for _ in 0..self.max_iter {
            let mut sums = Tensor::zeros([k, f]);
            let mut counts = vec![0usize; k];
            for i in 0..n {
                counts[assign[i]] += 1;
                for (s, &v) in sums.row_mut(assign[i]).iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    for (dst, &s) in centers.row_mut(c).iter_mut().zip(sums.row(c)) {
                        *dst = s * inv;
                    }
                }
                // Empty clusters keep their previous centre.
            }
            let new_assign = assign_to_centers(x, &centers);
            let converged = new_assign == assign;
            assign = new_assign;
            if converged {
                break;
            }
        }
        let d = pairdist::pairdist(x, &centers);
        let inertia: f32 = (0..n).map(|i| d.at2(i, assign[i])).sum();
        (centers, assign, inertia)
    }

    /// Fits the model (k-means++ seeding, `restarts` independent Lloyd
    /// runs, best inertia wins) and returns the whole fit — centers,
    /// assignments and inertia — so callers needing more than the labels
    /// (the IVF index wants the partition *and* the centroids) never rerun
    /// an assignment pass. Also stores the centers for [`Self::centers`].
    pub fn fit(&mut self, x: &Tensor) -> KMeansFit {
        let _span = tcsl_obs::spans::span("kmeans.fit");
        assert!(x.rows() >= self.k, "fewer points than clusters");
        let mut rng = seeded(self.seed);
        let mut best: Option<(Tensor, Vec<usize>, f32)> = None;
        for _ in 0..self.restarts.max(1) {
            let init = self.plus_plus_init(x, &mut rng);
            let run = self.lloyd(x, init);
            match &best {
                Some((_, _, bi)) if *bi <= run.2 => {}
                _ => best = Some(run),
            }
        }
        #[allow(clippy::disallowed_methods)] // restarts >= 1 by construction
        let (centers, assignments, inertia) = best.expect("at least one restart");
        self.centers = Some(centers.clone());
        KMeansFit {
            centers,
            assignments,
            inertia,
        }
    }
}

impl Clusterer for KMeans {
    /// Validating wrapper over [`KMeans::fit`] for request-path callers:
    /// empty or NaN-poisoned features and `k > N` are typed errors here,
    /// while the inherent `fit` keeps the engine-level NaN tolerance the
    /// IVF coarse quantizer relies on.
    fn fit_predict(&mut self, x: &Tensor) -> TcslResult<Vec<usize>> {
        let _span = tcsl_obs::spans::span("kmeans.fit_predict");
        check::check_train(x, None, "k-means")?;
        if x.rows() < self.k {
            return Err(TcslError::config(format!(
                "k-means: {} clusters requested but only {} points given",
                self.k,
                x.rows()
            )));
        }
        Ok(self.fit(x).assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    /// Fraction of same-label pairs placed in the same cluster and
    /// different-label pairs separated (pairwise clustering accuracy).
    fn pair_agreement(assign: &[usize], truth: &[usize]) -> f32 {
        let n = truth.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                let same_c = assign[i] == assign[j];
                let same_t = truth[i] == truth[j];
                if same_c == same_t {
                    agree += 1;
                }
            }
        }
        agree as f32 / total as f32
    }

    #[test]
    fn recovers_separated_blobs() {
        let (x, y) = blobs(3, 25, 4, 8.0, 1);
        let mut km = KMeans::new(3);
        let assign = km.fit_predict(&x).unwrap();
        assert!(pair_agreement(&assign, &y) > 0.95);
        assert_eq!(km.centers().unwrap().rows(), 3);
    }

    #[test]
    fn single_cluster_assigns_everything_to_zero() {
        let (x, _) = blobs(2, 10, 3, 4.0, 2);
        let mut km = KMeans::new(1);
        let assign = km.fit_predict(&x).unwrap();
        assert!(assign.iter().all(|&c| c == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = blobs(3, 15, 3, 5.0, 3);
        let mut a = KMeans::new(3);
        let mut b = KMeans::new(3);
        assert_eq!(a.fit_predict(&x).unwrap(), b.fit_predict(&x).unwrap());
    }

    #[test]
    fn too_many_clusters_is_a_config_error() {
        let x = Tensor::zeros([2, 2]);
        let err = KMeans::new(5).fit_predict(&x).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("clusters"), "{err}");
    }

    #[test]
    fn nan_features_are_a_typed_error_through_the_trait() {
        // The trait surface validates; the inherent `fit` below stays
        // NaN-tolerant for the IVF coarse quantizer.
        let x = Tensor::from_vec(vec![0.0, f32::NAN, 1.0, 2.0], [2, 2]);
        let err = KMeans::new(2).fit_predict(&x).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::NonFiniteInput);
    }

    #[test]
    fn nan_rows_do_not_abort_fitting() {
        // NaN features make their row's distances NaN; the k-means++ draw
        // must skip them (not panic on a NaN total) and the fit contract —
        // assignments are the argmin partition — must still hold, with NaN
        // rows parked at center 0 by the assignment default.
        let (x, _) = blobs(3, 12, 4, 6.0, 9);
        let mut v = x.as_slice().to_vec();
        v[5] = f32::NAN;
        v[40] = f32::NAN;
        let x = Tensor::from_vec(v, [36, 4]);
        let mut km = KMeans::new(3);
        let fit = km.fit(&x);
        assert_eq!(fit.assignments.len(), 36);
        assert_eq!(fit.assignments, assign_to_centers(&x, &fit.centers));
    }

    #[test]
    fn assignment_ties_resolve_to_lowest_center_index() {
        // A point exactly equidistant from two centers — and a pair of
        // bit-identical centers — must assign to the lower index.
        let x = Tensor::from_vec(vec![0.0, 4.0], [2, 1]);
        let equidistant = Tensor::from_vec(vec![1.0, -1.0], [2, 1]);
        assert_eq!(assign_to_centers(&x, &equidistant), vec![0, 0]);
        let duplicated = Tensor::from_vec(vec![4.0, 4.0, 0.0], [3, 1]);
        assert_eq!(assign_to_centers(&x, &duplicated), vec![2, 0]);
    }

    #[test]
    fn fit_assignments_match_partition_implied_by_centers() {
        // The model contract: `fit` returns assignments that are exactly the
        // argmin partition of the data under the returned centers — even
        // when the run exhausts `max_iter` mid-descent and the final center
        // update never converged.
        let (x, _) = blobs(4, 30, 6, 3.0, 7);
        for max_iter in [1, 2, 100] {
            let mut km = KMeans::new(4);
            km.max_iter = max_iter;
            let fit = km.fit(&x);
            assert_eq!(
                fit.assignments,
                assign_to_centers(&x, &fit.centers),
                "max_iter={max_iter}: assignments drifted from centers"
            );
            assert_eq!(km.centers().unwrap().as_slice(), fit.centers.as_slice());
            let implied: f32 = {
                let d = pairdist::pairdist(&x, &fit.centers);
                (0..x.rows()).map(|i| d.at2(i, fit.assignments[i])).sum()
            };
            assert_eq!(fit.inertia.to_bits(), implied.to_bits());
        }
    }

    #[test]
    fn assignment_matches_naive_scalar_scan() {
        let (x, _) = blobs(3, 20, 5, 6.0, 4);
        let centers = Tensor::from_vec(
            (0..15).map(|i| (i as f32 * 0.7).sin() * 4.0).collect(),
            [3, 5],
        );
        let fast = assign_to_centers(&x, &centers);
        let naive: Vec<usize> = (0..x.rows())
            .map(|i| {
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for c in 0..centers.rows() {
                    let d: f32 = x
                        .row(i)
                        .iter()
                        .zip(centers.row(c))
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum();
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                best
            })
            .collect();
        assert_eq!(fast, naive);
    }
}

//! Agglomerative clustering (average linkage, cut at `k` clusters).
//!
//! The initial pairwise distance matrix comes from the blocked
//! [`pairdist`] engine; the merge loop resolves equal-average ties to the
//! lowest cluster-index pair (the scan order), which
//! [`Agglomerative::fit_predict_from_distances`] lets tests pin against an
//! oracle-built matrix.

use crate::check;
use crate::traits::Clusterer;
use tcsl_error::{TcslError, TcslResult};
use tcsl_tensor::pairdist;
use tcsl_tensor::Tensor;

/// Average-linkage agglomerative clusterer.
#[derive(Clone, Debug)]
pub struct Agglomerative {
    /// Number of clusters to cut the dendrogram at.
    pub k: usize,
}

impl Agglomerative {
    /// Agglomerative clustering into `k` clusters.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one cluster");
        Agglomerative { k }
    }

    /// Runs the merge loop on a precomputed symmetric `(N, N)` Euclidean
    /// distance matrix. [`Clusterer::fit_predict`] builds that matrix with
    /// the blocked engine and delegates here; parity tests feed the naive
    /// oracle matrix instead to pin zero assignment drift.
    pub fn fit_predict_from_distances(&self, d: &Tensor) -> Vec<usize> {
        let n = d.rows();
        assert_eq!(n, d.cols(), "distance matrix must be square");
        assert!(n >= self.k, "fewer points than clusters");
        // Active clusters as member lists; O(n³) average-linkage — fine for
        // the dataset sizes TimeCSL explores interactively.
        let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        while clusters.len() > self.k {
            // Strict `<`: equal average distances keep the first (lowest
            // cluster-index) pair found by the scan.
            let mut best = (0usize, 1usize, f32::INFINITY);
            for a in 0..clusters.len() {
                for b in (a + 1)..clusters.len() {
                    let mut sum = 0.0f32;
                    for &i in &clusters[a] {
                        for &j in &clusters[b] {
                            sum += d.at2(i, j);
                        }
                    }
                    let avg = sum / (clusters[a].len() * clusters[b].len()) as f32;
                    if avg < best.2 {
                        best = (a, b, avg);
                    }
                }
            }
            let merged = clusters.remove(best.1);
            clusters[best.0].extend(merged);
        }
        let mut assign = vec![0usize; n];
        for (c, members) in clusters.iter().enumerate() {
            for &i in members {
                assign[i] = c;
            }
        }
        assign
    }
}

impl Clusterer for Agglomerative {
    fn fit_predict(&mut self, x: &Tensor) -> TcslResult<Vec<usize>> {
        let _span = tcsl_obs::spans::span("agglomerative.fit_predict");
        check::check_train(x, None, "agglomerative clustering")?;
        if x.rows() < self.k {
            return Err(TcslError::config(format!(
                "agglomerative clustering: {} clusters requested but only {} points given",
                self.k,
                x.rows()
            )));
        }
        let d = pairdist::pairdist(x, x).sqrt();
        Ok(self.fit_predict_from_distances(&d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    #[test]
    fn merges_nearby_points() {
        let (x, y) = blobs(2, 12, 3, 8.0, 1);
        let mut ag = Agglomerative::new(2);
        let assign = ag.fit_predict(&x).unwrap();
        // All members of one true blob end up together.
        let first_cluster = assign[0];
        for (i, &l) in y.iter().enumerate() {
            if l == y[0] {
                assert_eq!(assign[i], first_cluster);
            } else {
                assert_ne!(assign[i], first_cluster);
            }
        }
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let x = Tensor::from_vec(vec![0.0, 5.0, 10.0], [3, 1]);
        let mut ag = Agglomerative::new(3);
        let assign = ag.fit_predict(&x).unwrap();
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn too_many_clusters_is_a_config_error() {
        let err = Agglomerative::new(4)
            .fit_predict(&Tensor::zeros([2, 1]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("clusters"), "{err}");
    }

    #[test]
    fn merge_ties_resolve_to_lowest_index_pair() {
        // d(0,1) == d(1,2) == 1 exactly: the first merge must take the
        // lowest-index pair (0,1), so the cut at k=2 groups {0,1} | {2}.
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0], [3, 1]);
        let assign = Agglomerative::new(2).fit_predict(&x).unwrap();
        assert_eq!(assign[0], assign[1]);
        assert_ne!(assign[0], assign[2]);
    }

    #[test]
    fn engine_matrix_matches_oracle_matrix_assignments() {
        let (x, _) = blobs(3, 8, 4, 6.0, 5);
        let mut ag = Agglomerative::new(3);
        let fast = ag.fit_predict(&x).unwrap();
        let oracle = tcsl_tensor::pairdist::pairdist_oracle(&x, &x).sqrt();
        assert_eq!(fast, ag.fit_predict_from_distances(&oracle));
    }
}

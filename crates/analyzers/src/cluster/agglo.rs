//! Agglomerative clustering (average linkage, cut at `k` clusters).

use crate::traits::Clusterer;
use tcsl_tensor::Tensor;

/// Average-linkage agglomerative clusterer.
#[derive(Clone, Debug)]
pub struct Agglomerative {
    /// Number of clusters to cut the dendrogram at.
    pub k: usize,
}

impl Agglomerative {
    /// Agglomerative clustering into `k` clusters.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one cluster");
        Agglomerative { k }
    }
}

impl Clusterer for Agglomerative {
    fn fit_predict(&mut self, x: &Tensor) -> Vec<usize> {
        let n = x.rows();
        assert!(n >= self.k, "fewer points than clusters");
        // Active clusters as member lists; O(n³) average-linkage on the
        // pairwise distance matrix — fine for the dataset sizes TimeCSL
        // explores interactively.
        let mut d = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist: f32 = x
                    .row(i)
                    .iter()
                    .zip(x.row(j))
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                d[i][j] = dist;
                d[j][i] = dist;
            }
        }
        let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        while clusters.len() > self.k {
            let mut best = (0usize, 1usize, f32::INFINITY);
            for a in 0..clusters.len() {
                for b in (a + 1)..clusters.len() {
                    let mut sum = 0.0f32;
                    for &i in &clusters[a] {
                        for &j in &clusters[b] {
                            sum += d[i][j];
                        }
                    }
                    let avg = sum / (clusters[a].len() * clusters[b].len()) as f32;
                    if avg < best.2 {
                        best = (a, b, avg);
                    }
                }
            }
            let merged = clusters.remove(best.1);
            clusters[best.0].extend(merged);
        }
        let mut assign = vec![0usize; n];
        for (c, members) in clusters.iter().enumerate() {
            for &i in members {
                assign[i] = c;
            }
        }
        assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;

    #[test]
    fn merges_nearby_points() {
        let (x, y) = blobs(2, 12, 3, 8.0, 1);
        let mut ag = Agglomerative::new(2);
        let assign = ag.fit_predict(&x);
        // All members of one true blob end up together.
        let first_cluster = assign[0];
        for (i, &l) in y.iter().enumerate() {
            if l == y[0] {
                assert_eq!(assign[i], first_cluster);
            } else {
                assert_ne!(assign[i], first_cluster);
            }
        }
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let x = Tensor::from_vec(vec![0.0, 5.0, 10.0], [3, 1]);
        let mut ag = Agglomerative::new(3);
        let assign = ag.fit_predict(&x);
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    #[should_panic(expected = "fewer points")]
    fn too_many_clusters_panics() {
        Agglomerative::new(4).fit_predict(&Tensor::zeros([2, 1]));
    }
}

//! Clustering analyzers.

pub mod agglo;
pub mod kmeans;

pub use agglo::Agglomerative;
pub use kmeans::KMeans;

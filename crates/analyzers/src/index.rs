//! Sublinear IVF (inverted-file) index over the representation space.
//!
//! The exact `pairdist` engine answers every query in O(N·M); at the
//! "millions of series" corpus sizes the roadmap targets that is a wall.
//! This module amortizes an index build over many queries: the existing
//! [`KMeans`] (itself driven through the engine) learns `nlist` coarse
//! centroids, the corpus is bucketed into per-centroid *cells* whose rows
//! are repacked contiguously, and a query only scans the `nprobe` cells
//! whose centroids are nearest — `nprobe/nlist` of the corpus instead of
//! all of it.
//!
//! **Determinism contract.** Within the probed candidate set the results
//! are bit-identical to the exact engine: cell rows are scored by
//! [`scan_cell_into`], whose `dot4` kernel rounds each pair independently
//! of how rows are grouped, so a repacked row scores exactly as it does in
//! the full corpus; the shared bounded-heap total order (`total_cmp`
//! distance, then lowest original index) makes the merged shortlist
//! independent of cell probe order. Consequently `nprobe == nlist` — probe
//! everything — reproduces the exact engine's neighbour sets *verbatim*:
//! indices, distances, tie-breaks, NaN-last ordering (pinned by the
//! `ivf_parity` proptests). Builds and queries are bit-identical for any
//! `TCSL_THREADS` setting, like every other engine surface.
//!
//! **Recall semantics.** With `nprobe < nlist` the only approximation is
//! *candidate omission*: a true neighbour living in an unprobed cell is
//! missed entirely. Whatever is returned carries its exact distance —
//! there is no quantization error to re-rank away, so recall@k against the
//! exact oracle is the whole quality story (measured by `bench_index`).

use crate::cluster::kmeans::{assign_to_centers, KMeans};
use tcsl_error::{TcslError, TcslResult};
use tcsl_obs::counters::{LocalCounter, IVF_CANDIDATES, IVF_CELLS_PROBED};
use tcsl_tensor::pairdist::{self, row_sq_norms, scan_cell_into, topk_sort};
use tcsl_tensor::parallel::parallel_chunks_mut;
use tcsl_tensor::Tensor;

/// Query rows per parallel work item, mirroring the exact engine's
/// row-block fan-out: the partition depends only on the query count, so
/// results are thread-count invariant.
const QUERY_BLOCK: usize = 64;

/// Corpus rows sampled per requested cell when fitting the coarse
/// quantizer: above `SAMPLE_PER_CELL · nlist` rows, k-means runs on a
/// deterministic strided sample and only the final bucketing pass touches
/// the full corpus.
const SAMPLE_PER_CELL: usize = 64;

/// Which neighbour-search engine a consumer should use.
///
/// `Exact` is the default and the recall oracle; `Ivf` trades recall for
/// sublinear query time via [`IvfIndex`]. Consumers (`KnnClassifier`,
/// `KnnDistance`, t-SNE) thread this through unchanged, so a pipeline can
/// flip one knob to move between the two.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexBackend {
    /// Full-scan `pairdist` top-k: exact, O(corpus) per query.
    #[default]
    Exact,
    /// Inverted-file index: `nlist` k-means cells, `nprobe` probed per
    /// query. `nprobe == nlist` reproduces `Exact` bit-for-bit.
    Ivf {
        /// Number of coarse cells (clamped to the corpus size at build).
        nlist: usize,
        /// Cells probed per query (clamped to `[1, nlist]` at query time).
        nprobe: usize,
    },
}

/// One inverted-file cell: the member rows repacked contiguously, their
/// engine-path squared norms, and their original corpus indices (ascending,
/// from the sequential bucketing scan).
#[derive(Clone, Debug)]
struct IvfCell {
    rows: Tensor,
    norms: Vec<f32>,
    ids: Vec<usize>,
}

/// A built inverted-file index over one corpus.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    centroids: Tensor,
    cells: Vec<IvfCell>,
    assignments: Vec<usize>,
    rows: usize,
    dim: usize,
}

impl IvfIndex {
    /// Builds an index over `corpus` with (up to) `nlist` cells.
    ///
    /// The coarse quantizer is a short [`KMeans`] run (one restart, few
    /// iterations — cell boundaries don't need convergence, only balance);
    /// corpora larger than `64·nlist` rows fit it on a deterministic
    /// strided sample, then one [`assign_to_centers`] pass buckets the full
    /// corpus. Smaller corpora reuse the fit's own assignments directly.
    pub fn build(corpus: &Tensor, nlist: usize, seed: u64) -> IvfIndex {
        let _span = tcsl_obs::spans::span("ivf.build");
        let (n, dim) = (corpus.rows(), corpus.cols());
        if n == 0 {
            return IvfIndex {
                centroids: Tensor::zeros([0, dim]),
                cells: Vec::new(),
                assignments: Vec::new(),
                rows: 0,
                dim,
            };
        }
        let nlist = nlist.clamp(1, n);
        let mut km = KMeans::new(nlist);
        km.max_iter = 10;
        km.restarts = 1;
        km.seed = seed;
        let sample_target = SAMPLE_PER_CELL * nlist;
        let (centroids, assignments) = if n > sample_target {
            // Stride chosen so the sample keeps ≥ `sample_target` rows; a
            // pure function of (n, nlist), so the build is reproducible.
            let stride = n / sample_target;
            let picks: Vec<usize> = (0..n).step_by(stride).collect();
            let mut sample = Tensor::zeros([picks.len(), dim]);
            for (s, &i) in picks.iter().enumerate() {
                sample.row_mut(s).copy_from_slice(corpus.row(i));
            }
            let fit = km.fit(&sample);
            let assignments = assign_to_centers(corpus, &fit.centers);
            (fit.centers, assignments)
        } else {
            let fit = km.fit(corpus);
            (fit.centers, fit.assignments)
        };
        let mut cells: Vec<IvfCell> = (0..nlist)
            .map(|_| IvfCell {
                rows: Tensor::zeros([0, dim]),
                norms: Vec::new(),
                ids: Vec::new(),
            })
            .collect();
        let mut buffers: Vec<Vec<f32>> = vec![Vec::new(); nlist];
        for (i, &c) in assignments.iter().enumerate() {
            buffers[c].extend_from_slice(corpus.row(i));
            cells[c].ids.push(i);
        }
        for (cell, buf) in cells.iter_mut().zip(buffers) {
            cell.rows = Tensor::from_vec(buf, [cell.ids.len(), dim]);
            // Same dot4 lane path as the engine's norms: bit-identical to
            // the norm the full-corpus scan computes for each row.
            cell.norms = row_sq_norms(&cell.rows);
        }
        IvfIndex {
            centroids,
            cells,
            assignments,
            rows: n,
            dim,
        }
    }

    /// Number of cells (the effective `nlist`).
    pub fn nlist(&self) -> usize {
        self.cells.len()
    }

    /// Indexed corpus rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Per-row cell assignment of the indexed corpus (the coarse
    /// quantizer's partition — thread-count invariant, pinned by CI).
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// k-nearest-neighbour search probing `nprobe` cells per query, writing
    /// into `out` with the same reshape-in-place, capacity-reusing contract
    /// as [`pairdist::knn_into`]. Results are sorted ascending by
    /// `(distance, index)`; each row holds `min(k, candidates)` entries.
    ///
    /// `k == 0` and a query feature width that differs from the indexed
    /// corpus are request errors (`out` is left untouched); oversized `k`
    /// and `nprobe` clamp, and empty corpora/query sets yield empty rows.
    /// The distance engine itself is NaN-tolerant (non-finite rows sort
    /// last, exactly as in the exact engine) — finiteness validation
    /// belongs to the analyzer entry points above this.
    pub fn knn_into(
        &self,
        queries: &Tensor,
        k: usize,
        nprobe: usize,
        out: &mut Vec<Vec<(usize, f32)>>,
    ) -> TcslResult<()> {
        if k == 0 {
            return Err(TcslError::config("knn: k must be at least 1"));
        }
        if queries.cols() != self.dim {
            return Err(TcslError::shape_mismatch(
                "ivf query feature width",
                self.dim,
                queries.cols(),
            ));
        }
        let n = queries.rows();
        out.truncate(n);
        for row in out.iter_mut() {
            row.clear();
        }
        while out.len() < n {
            out.push(Vec::new());
        }
        if n == 0 || self.rows == 0 {
            return Ok(());
        }
        let _span = tcsl_obs::spans::span("ivf.query");
        let nprobe = nprobe.clamp(1, self.cells.len());
        let k = k.min(self.rows);
        // Query→centroid distances for every pair up front (one engine
        // call), plus the queries' own engine-path norms for the scans.
        let cd = pairdist::pairdist(queries, &self.centroids);
        let qnorms = row_sq_norms(queries);
        // Query blocks fan out on the persistent pool; each block's output
        // rows are owned by its block index, so merged results and counter
        // totals are thread-count invariant.
        parallel_chunks_mut(&mut out[..], QUERY_BLOCK, |bi, rows_out| {
            let lo = bi * QUERY_BLOCK;
            // Probe/candidate totals are functions of the data alone (which
            // cells are non-empty, which rank nearest), so the merged
            // counter totals are thread-count invariant.
            let mut probed = LocalCounter::new(&IVF_CELLS_PROBED);
            let mut cands = LocalCounter::new(&IVF_CANDIDATES);
            // Per-query distributions, batched per block like the counters:
            // candidates scanned is a function of the data alone
            // (deterministic set); per-query latency is host-class, and the
            // clock is only read while tracing is on.
            let mut q_cands =
                tcsl_obs::hist::LocalHistogram::new(&tcsl_obs::hist::IVF_QUERY_CANDIDATES);
            let mut q_ns = tcsl_obs::hist::LocalHistogram::new(&tcsl_obs::hist::IVF_QUERY_NS);
            let timing = tcsl_obs::enabled();
            let mut order: Vec<(usize, f32)> = Vec::new();
            for (r, acc) in rows_out.iter_mut().enumerate() {
                let t0 = timing.then(std::time::Instant::now);
                let i = lo + r;
                let q = queries.row(i);
                let crow = cd.row(i);
                order.clear();
                order.extend(
                    self.cells
                        .iter()
                        .enumerate()
                        .filter(|(_, cell)| !cell.ids.is_empty())
                        .map(|(c, _)| (c, crow[c])),
                );
                // Nearest centroids first; ties and all-NaN rows resolve by
                // cell index, so the probe set is always deterministic.
                topk_sort(&mut order);
                let mut scanned = 0u64;
                for &(c, _) in order.iter().take(nprobe) {
                    let cell = &self.cells[c];
                    probed.add(1);
                    cands.add(cell.ids.len() as u64);
                    scanned += cell.ids.len() as u64;
                    scan_cell_into(q, qnorms[i], &cell.rows, &cell.norms, &cell.ids, k, acc);
                }
                topk_sort(acc);
                if timing {
                    q_cands.record(scanned);
                }
                if let Some(t0) = t0 {
                    q_ns.record(t0.elapsed().as_nanos() as u64);
                }
            }
        });
        Ok(())
    }

    /// Convenience wrapper over [`Self::knn_into`] allocating a fresh
    /// result vector.
    pub fn knn(
        &self,
        queries: &Tensor,
        k: usize,
        nprobe: usize,
    ) -> TcslResult<Vec<Vec<(usize, f32)>>> {
        let mut out = Vec::with_capacity(queries.rows());
        self.knn_into(queries, k, nprobe, &mut out)?;
        Ok(out)
    }
}

/// Backend-dispatched corpus handle: the uniform way consumers hold "a
/// corpus plus the chosen search engine". `Exact` keeps only the corpus
/// (queries go through [`pairdist::knn`]); `Ivf` builds the index once at
/// construction and probes it per query.
#[derive(Clone, Debug)]
pub struct NnIndex {
    corpus: Tensor,
    backend: IndexBackend,
    ivf: Option<IvfIndex>,
}

impl NnIndex {
    /// Seed for the coarse quantizer fits of consumer-built indexes. Fixed:
    /// the backend enum stays a plain routing knob and two consumers
    /// indexing the same corpus agree on the partition.
    const BUILD_SEED: u64 = 0;

    /// Wraps `corpus` under `backend`, building the IVF structure eagerly
    /// when the backend asks for one.
    pub fn build(corpus: Tensor, backend: IndexBackend) -> NnIndex {
        let ivf = match backend {
            IndexBackend::Exact => None,
            IndexBackend::Ivf { nlist, .. } => {
                Some(IvfIndex::build(&corpus, nlist, Self::BUILD_SEED))
            }
        };
        NnIndex {
            corpus,
            backend,
            ivf,
        }
    }

    /// The wrapped corpus.
    pub fn corpus(&self) -> &Tensor {
        &self.corpus
    }

    /// The backend this handle routes through.
    pub fn backend(&self) -> IndexBackend {
        self.backend
    }

    /// Feature width of the wrapped corpus.
    pub fn dim(&self) -> usize {
        self.corpus.cols()
    }

    /// k-nearest neighbours of every query row under the configured
    /// backend (exact full scan, or IVF probe + exact re-rank). `k == 0`
    /// and mismatched query widths are request errors on both backends.
    pub fn knn(&self, queries: &Tensor, k: usize) -> TcslResult<Vec<Vec<(usize, f32)>>> {
        match (self.backend, &self.ivf) {
            (IndexBackend::Ivf { nprobe, .. }, Some(ivf)) => ivf.knn(queries, k, nprobe),
            _ => {
                if k == 0 {
                    return Err(TcslError::config("knn: k must be at least 1"));
                }
                if queries.cols() != self.corpus.cols() {
                    return Err(TcslError::shape_mismatch(
                        "query feature width",
                        self.corpus.cols(),
                        queries.cols(),
                    ));
                }
                Ok(pairdist::knn(queries, &self.corpus, k))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blobs;
    use tcsl_tensor::pairdist::knn;

    #[test]
    fn bucketing_partitions_the_corpus_exactly_once() {
        let (x, _) = blobs(4, 40, 6, 5.0, 11);
        let index = IvfIndex::build(&x, 8, 0);
        assert_eq!(index.rows(), x.rows());
        let mut seen = vec![false; x.rows()];
        for (c, cell) in index.cells.iter().enumerate() {
            assert_eq!(cell.rows.rows(), cell.ids.len());
            assert_eq!(cell.norms.len(), cell.ids.len());
            // Ids ascend (sequential bucketing) and rows match the corpus.
            assert!(cell.ids.windows(2).all(|w| w[0] < w[1]));
            for (slot, &i) in cell.ids.iter().enumerate() {
                assert!(!seen[i], "row {i} bucketed twice");
                seen[i] = true;
                assert_eq!(cell.rows.row(slot), x.row(i));
                assert_eq!(index.assignments()[i], c);
            }
        }
        assert!(seen.iter().all(|&s| s), "some corpus row was dropped");
    }

    #[test]
    fn probing_every_cell_matches_the_exact_engine_bitwise() {
        let (x, _) = blobs(3, 30, 7, 4.0, 13);
        let (q, _) = blobs(3, 5, 7, 4.0, 14);
        let index = IvfIndex::build(&x, 6, 0);
        let exact = knn(&q, &x, 5);
        let ivf = index.knn(&q, 5, index.nlist()).unwrap();
        assert_eq!(exact.len(), ivf.len());
        for (e, v) in exact.iter().zip(&ivf) {
            assert_eq!(e.len(), v.len());
            for (&(ei, ed), &(vi, vd)) in e.iter().zip(v) {
                assert_eq!(ei, vi);
                assert_eq!(ed.to_bits(), vd.to_bits());
            }
        }
    }

    #[test]
    fn single_probe_returns_exact_distances_for_whatever_it_finds() {
        let (x, _) = blobs(4, 25, 5, 8.0, 17);
        let index = IvfIndex::build(&x, 4, 0);
        let exact = knn(&x, &x, 1);
        let ivf = index.knn(&x, 1, 1).unwrap();
        // Each row's own cell is always the nearest centroid, so 1-probe
        // self-queries find the exact self-match with its exact 0.0.
        for (i, row) in ivf.iter().enumerate() {
            assert_eq!(row[0], exact[i][0]);
            assert_eq!(row[0], (i, 0.0));
        }
    }

    #[test]
    fn oversized_parameters_clamp_instead_of_panicking() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 10.0], [4, 1]);
        let index = IvfIndex::build(&x, 99, 0);
        assert!(index.nlist() <= 4);
        let q = Tensor::from_vec(vec![0.4], [1, 1]);
        let nn = index.knn(&q, 99, 99).unwrap();
        assert_eq!(nn[0].len(), 4, "k clamps to the corpus size");
        assert_eq!(nn[0][0].0, 0);
    }

    #[test]
    fn empty_corpus_and_empty_queries_yield_empty_results() {
        let empty = Tensor::zeros([0, 3]);
        let index = IvfIndex::build(&empty, 4, 0);
        assert_eq!(index.nlist(), 0);
        let q = Tensor::zeros([2, 3]);
        let nn = index.knn(&q, 3, 1).unwrap();
        assert_eq!(nn.len(), 2);
        assert!(nn.iter().all(|r| r.is_empty()));
        let (x, _) = blobs(2, 10, 3, 4.0, 19);
        let index = IvfIndex::build(&x, 2, 0);
        assert!(index.knn(&Tensor::zeros([0, 3]), 3, 1).unwrap().is_empty());
    }

    #[test]
    fn knn_into_reuses_buffers_like_the_exact_engine() {
        let (x, _) = blobs(3, 20, 4, 5.0, 23);
        let (q, _) = blobs(3, 6, 4, 5.0, 24);
        let index = IvfIndex::build(&x, 4, 0);
        let mut out = Vec::new();
        index.knn_into(&q, 3, 2, &mut out).unwrap();
        let ptrs: Vec<*const (usize, f32)> = out.iter().map(|r| r.as_ptr()).collect();
        let first = out.clone();
        index.knn_into(&q, 3, 2, &mut out).unwrap();
        let ptrs2: Vec<*const (usize, f32)> = out.iter().map(|r| r.as_ptr()).collect();
        assert_eq!(ptrs, ptrs2, "inner buffers were reallocated");
        assert_eq!(first, out, "reused buffers changed the results");
    }

    #[test]
    fn nn_index_dispatches_backends_and_agrees_at_full_probe() {
        let (x, _) = blobs(3, 30, 6, 5.0, 31);
        let (q, _) = blobs(3, 8, 6, 5.0, 32);
        let exact = NnIndex::build(x.clone(), IndexBackend::Exact);
        assert_eq!(exact.backend(), IndexBackend::default());
        let full = NnIndex::build(
            x.clone(),
            IndexBackend::Ivf {
                nlist: 5,
                nprobe: 5,
            },
        );
        assert_eq!(exact.knn(&q, 4).unwrap(), full.knn(&q, 4).unwrap());
    }
}

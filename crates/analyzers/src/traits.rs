//! Common analyzer interfaces.

use tcsl_tensor::Tensor;

/// A supervised classifier over feature vectors.
pub trait Classifier {
    /// Fits the model to features `x` (`N×F`) and integer labels `y`.
    fn fit(&mut self, x: &Tensor, y: &[usize]);

    /// Predicts one label per row of `x`.
    fn predict(&self, x: &Tensor) -> Vec<usize>;

    /// Convenience: fraction of correct predictions on `(x, y)`.
    fn accuracy(&self, x: &Tensor, y: &[usize]) -> f32 {
        let pred = self.predict(x);
        let hits = pred.iter().zip(y).filter(|(p, t)| p == t).count();
        hits as f32 / y.len().max(1) as f32
    }
}

/// An unsupervised clusterer.
pub trait Clusterer {
    /// Partitions the rows of `x` into clusters, returning one cluster id
    /// per row.
    fn fit_predict(&mut self, x: &Tensor) -> Vec<usize>;
}

/// An anomaly scorer: higher scores mean more anomalous.
pub trait AnomalyScorer {
    /// Fits to (mostly normal) training features.
    fn fit(&mut self, x: &Tensor);

    /// Anomaly score per row of `x` (higher = more anomalous).
    fn score(&self, x: &Tensor) -> Vec<f32>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(usize);
    impl Classifier for Constant {
        fn fit(&mut self, _x: &Tensor, _y: &[usize]) {}
        fn predict(&self, x: &Tensor) -> Vec<usize> {
            vec![self.0; x.rows()]
        }
    }

    #[test]
    fn accuracy_default_impl() {
        let c = Constant(1);
        let x = Tensor::zeros([4, 2]);
        assert_eq!(c.accuracy(&x, &[1, 1, 0, 1]), 0.75);
    }
}

//! Common analyzer interfaces.
//!
//! Every entry point is fallible: analyzers sit on the serving path behind
//! the CLI and exploration sessions, so bad request data — empty or
//! NaN-poisoned features, label mismatches, querying an unfitted model —
//! is a typed [`TcslError`], not a panic (DESIGN.md, "Error taxonomy &
//! panic policy").

use tcsl_error::{TcslError, TcslResult};
use tcsl_tensor::Tensor;

/// A supervised classifier over feature vectors.
pub trait Classifier {
    /// Fits the model to features `x` (`N×F`) and integer labels `y`.
    fn fit(&mut self, x: &Tensor, y: &[usize]) -> TcslResult<()>;

    /// Predicts one label per row of `x`.
    fn predict(&self, x: &Tensor) -> TcslResult<Vec<usize>>;

    /// Convenience: fraction of correct predictions on `(x, y)`.
    fn accuracy(&self, x: &Tensor, y: &[usize]) -> TcslResult<f32> {
        if y.len() != x.rows() {
            return Err(TcslError::shape_mismatch(
                "accuracy labels",
                format!("{} (one per row)", x.rows()),
                y.len(),
            ));
        }
        let pred = self.predict(x)?;
        let hits = pred.iter().zip(y).filter(|(p, t)| p == t).count();
        Ok(hits as f32 / y.len().max(1) as f32)
    }
}

/// An unsupervised clusterer.
pub trait Clusterer {
    /// Partitions the rows of `x` into clusters, returning one cluster id
    /// per row.
    fn fit_predict(&mut self, x: &Tensor) -> TcslResult<Vec<usize>>;
}

/// An anomaly scorer: higher scores mean more anomalous.
pub trait AnomalyScorer {
    /// Fits to (mostly normal) training features.
    fn fit(&mut self, x: &Tensor) -> TcslResult<()>;

    /// Anomaly score per row of `x` (higher = more anomalous).
    fn score(&self, x: &Tensor) -> TcslResult<Vec<f32>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(usize);
    impl Classifier for Constant {
        fn fit(&mut self, _x: &Tensor, _y: &[usize]) -> TcslResult<()> {
            Ok(())
        }
        fn predict(&self, x: &Tensor) -> TcslResult<Vec<usize>> {
            Ok(vec![self.0; x.rows()])
        }
    }

    #[test]
    fn accuracy_default_impl() {
        let c = Constant(1);
        let x = Tensor::zeros([4, 2]);
        assert_eq!(c.accuracy(&x, &[1, 1, 0, 1]).unwrap(), 0.75);
    }

    #[test]
    fn accuracy_rejects_mismatched_labels() {
        let c = Constant(0);
        let x = Tensor::zeros([4, 2]);
        let err = c.accuracy(&x, &[1, 1]).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::ShapeMismatch);
    }
}

//! Distance-based anomaly scoring: the mean distance to the `k` nearest
//! training points. A simple, strong baseline detector.
//!
//! Neighbour search runs through an [`NnIndex`] handle: the default
//! [`IndexBackend::Exact`] streams the blocked engine's heap-bounded top-k
//! (`k + 1` neighbours, so a potential exact self-match can be skipped
//! without a full distance scan), while [`IndexBackend::Ivf`] probes a
//! coarse inverted-file index built at `fit` — on large reference sets the
//! per-score scan work becomes sublinear, and because every returned
//! distance is exact, the self-match skip keeps working unchanged.

use crate::check;
use crate::index::{IndexBackend, NnIndex};
use crate::traits::AnomalyScorer;
use tcsl_error::TcslResult;
use tcsl_tensor::Tensor;

/// k-NN distance anomaly scorer.
#[derive(Clone, Debug)]
pub struct KnnDistance {
    /// Number of neighbours to average over.
    pub k: usize,
    /// Neighbour-search engine; [`IndexBackend::Exact`] by default. Changes
    /// take effect at the next `fit` (that is when the index is built).
    pub backend: IndexBackend,
    index: Option<NnIndex>,
}

impl KnnDistance {
    /// Scorer averaging over `k` neighbours on the exact engine.
    pub fn new(k: usize) -> Self {
        Self::with_backend(k, IndexBackend::Exact)
    }

    /// Scorer averaging over `k` neighbours searching through `backend`.
    pub fn with_backend(k: usize, backend: IndexBackend) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KnnDistance {
            k,
            backend,
            index: None,
        }
    }
}

impl AnomalyScorer for KnnDistance {
    fn fit(&mut self, x: &Tensor) -> TcslResult<()> {
        check::check_train(x, None, "k-NN distance")?;
        self.index = Some(NnIndex::build(x.clone(), self.backend));
        Ok(())
    }

    fn score(&self, x: &Tensor) -> TcslResult<Vec<f32>> {
        let _span = tcsl_obs::spans::span("knn_anomaly.score");
        let index = self
            .index
            .as_ref()
            .ok_or_else(|| check::before_fit("k-NN distance score"))?;
        check::check_query(x, index.dim(), "k-NN distance score")?;
        // One extra neighbour covers the self-match skip below.
        let all_nn = index.knn(x, self.k + 1)?;
        Ok(all_nn
            .into_iter()
            .map(|nn| {
                let dists: Vec<f32> = nn.iter().map(|&(_, d)| d.sqrt()).collect();
                // Skip an exact self-match at distance 0 when scoring
                // training points themselves.
                let start = usize::from(dists.first().is_some_and(|&d| d < 1e-12));
                let rest = &dists[start..];
                if rest.is_empty() {
                    // Degenerate: the single training row is an exact
                    // self-match, leaving no neighbour to average over.
                    0.0
                } else {
                    let take = self.k.min(rest.len());
                    rest[..take].iter().sum::<f32>() / take as f32
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::{gauss, seeded};

    #[test]
    fn far_points_score_higher() {
        let mut rng = seeded(2);
        let mut data = Vec::new();
        for _ in 0..100 {
            data.push(gauss(&mut rng));
        }
        let train = Tensor::from_vec(data, [100, 1]);
        let mut scorer = KnnDistance::new(5);
        scorer.fit(&train).unwrap();
        let test = Tensor::from_vec(vec![0.0, 10.0], [2, 1]);
        let scores = scorer.score(&test).unwrap();
        assert!(scores[1] > scores[0] * 3.0, "{scores:?}");
    }

    #[test]
    fn self_match_is_skipped_for_training_points() {
        let train = Tensor::from_vec(vec![0.0, 1.0, 2.0], [3, 1]);
        let mut scorer = KnnDistance::new(1);
        scorer.fit(&train).unwrap();
        let scores = scorer.score(&train).unwrap();
        // Nearest non-self neighbour is 1 away for every point.
        for s in scores {
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn single_training_row_scoring_itself_does_not_panic() {
        // Degenerate case: the lone training row self-matches, so after the
        // skip there is no neighbour left — the score must be 0, not an
        // out-of-bounds slice.
        let train = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let mut scorer = KnnDistance::new(3);
        scorer.fit(&train).unwrap();
        assert_eq!(scorer.score(&train).unwrap(), vec![0.0]);
        // A non-matching query still averages over the one real neighbour.
        let q = Tensor::from_vec(vec![1.0, 5.0], [1, 2]);
        assert!((scorer.score(&q).unwrap()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn ivf_backend_at_full_probe_matches_exact_scores_bitwise() {
        let mut rng = seeded(5);
        let train = Tensor::randn([60, 6], &mut rng);
        let test = Tensor::randn([15, 6], &mut rng);
        let mut exact = KnnDistance::new(4);
        exact.fit(&train).unwrap();
        let mut ivf = KnnDistance::with_backend(
            4,
            IndexBackend::Ivf {
                nlist: 7,
                nprobe: 7,
            },
        );
        ivf.fit(&train).unwrap();
        let es = exact.score(&test).unwrap();
        let vs = ivf.score(&test).unwrap();
        assert_eq!(es.len(), vs.len());
        for (e, v) in es.iter().zip(&vs) {
            assert_eq!(e.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn score_before_fit_is_a_typed_error() {
        let err = KnnDistance::new(3)
            .score(&Tensor::zeros([1, 1]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("before fit"), "{err}");
    }

    #[test]
    fn nan_training_rows_are_a_typed_error() {
        // NaN reference rows used to sort last silently; the request path
        // now rejects them up front with a typed error instead.
        let train = Tensor::from_vec(vec![0.0, 1.0, f32::NAN, 2.0], [4, 1]);
        let mut scorer = KnnDistance::new(2);
        let err = scorer.fit(&train).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::NonFiniteInput);

        scorer
            .fit(&Tensor::from_vec(vec![0.0, 1.0], [2, 1]))
            .unwrap();
        let err = scorer
            .score(&Tensor::from_vec(vec![f32::NAN], [1, 1]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::NonFiniteInput);
    }
}

//! Anomaly-detection analyzers.

pub mod iforest;
pub mod knn_score;

pub use iforest::IsolationForest;
pub use knn_score::KnnDistance;

//! Isolation forest (Liu et al.) — the demo's anomaly-detection analyzer.
//!
//! Anomalies are easier to isolate by random axis-aligned splits, so they
//! sit at shallower average depths; the score is the standard
//! `2^(−E[h(x)]/c(ψ))` normalization (higher = more anomalous).

use crate::check;
use crate::traits::AnomalyScorer;
use rand::Rng;
use tcsl_error::{TcslError, TcslResult};
use tcsl_tensor::rng::seeded;
use tcsl_tensor::Tensor;

#[derive(Clone, Debug)]
enum INode {
    Leaf {
        size: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug)]
struct ITree {
    nodes: Vec<INode>,
}

impl ITree {
    fn build(
        x: &Tensor,
        indices: &[usize],
        depth: usize,
        max_depth: usize,
        rng: &mut impl Rng,
    ) -> ITree {
        let mut tree = ITree { nodes: Vec::new() };
        tree.build_node(x, indices, depth, max_depth, rng);
        tree
    }

    fn build_node(
        &mut self,
        x: &Tensor,
        indices: &[usize],
        depth: usize,
        max_depth: usize,
        rng: &mut impl Rng,
    ) -> usize {
        if depth >= max_depth || indices.len() <= 1 {
            self.nodes.push(INode::Leaf {
                size: indices.len(),
            });
            return self.nodes.len() - 1;
        }
        // Pick a random feature with spread; give up after a few tries.
        for _ in 0..8 {
            let feature = rng.gen_range(0..x.cols());
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &i in indices {
                let v = x.at2(i, feature);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo < 1e-9 {
                continue;
            }
            let threshold = rng.gen_range(lo..hi);
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| x.at2(i, feature) <= threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                continue;
            }
            let slot = self.nodes.len();
            self.nodes.push(INode::Leaf { size: 0 }); // placeholder
            let left = self.build_node(x, &left_idx, depth + 1, max_depth, rng);
            let right = self.build_node(x, &right_idx, depth + 1, max_depth, rng);
            self.nodes[slot] = INode::Split {
                feature,
                threshold,
                left,
                right,
            };
            return slot;
        }
        self.nodes.push(INode::Leaf {
            size: indices.len(),
        });
        self.nodes.len() - 1
    }

    fn path_length(&self, row: &[f32]) -> f32 {
        let mut at = 0usize;
        let mut depth = 0.0f32;
        loop {
            match &self.nodes[at] {
                INode::Leaf { size } => return depth + c_factor(*size),
                INode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    depth += 1.0;
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Average path length of an unsuccessful BST search over `n` items — the
/// depth correction for unexpanded leaves.
fn c_factor(n: usize) -> f32 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f32;
    2.0 * ((n - 1.0).ln() + 0.577_215_7) - 2.0 * (n - 1.0) / n
}

/// Isolation forest scorer.
#[derive(Clone, Debug)]
pub struct IsolationForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Subsample size ψ per tree.
    pub subsample: usize,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<ITree>,
    c_psi: f32,
    n_features: usize,
}

impl IsolationForest {
    /// Forest with the classic defaults (100 trees, ψ = 256).
    pub fn new() -> Self {
        IsolationForest {
            n_trees: 100,
            subsample: 256,
            seed: 0,
            trees: Vec::new(),
            c_psi: 1.0,
            n_features: 0,
        }
    }
}

impl Default for IsolationForest {
    fn default() -> Self {
        Self::new()
    }
}

impl AnomalyScorer for IsolationForest {
    fn fit(&mut self, x: &Tensor) -> TcslResult<()> {
        check::check_train(x, None, "isolation forest")?;
        if x.rows() < 2 {
            return Err(TcslError::config(
                "isolation forest needs at least two training rows".to_string(),
            ));
        }
        // At ψ ≤ 1 every tree is a lone leaf: `c_factor(1) == 0` used to be
        // clamped to 1e-6 and every score collapsed toward 2^(-depth/1e-6)
        // ≈ 0 — a silently degenerate forest instead of an error.
        if self.subsample < 2 {
            return Err(TcslError::config(format!(
                "isolation forest subsample must be >= 2 (got {}): a single-row \
                 subsample degenerates every tree to a leaf and all scores to ~0",
                self.subsample
            )));
        }
        self.n_features = x.cols();
        let mut rng = seeded(self.seed);
        let psi = self.subsample.min(x.rows());
        let max_depth = (psi as f32).log2().ceil() as usize + 1;
        self.c_psi = c_factor(psi).max(1e-6);
        self.trees = (0..self.n_trees)
            .map(|_| {
                let sample: Vec<usize> = (0..psi).map(|_| rng.gen_range(0..x.rows())).collect();
                ITree::build(x, &sample, 0, max_depth, &mut rng)
            })
            .collect();
        Ok(())
    }

    fn score(&self, x: &Tensor) -> TcslResult<Vec<f32>> {
        if self.trees.is_empty() {
            return Err(check::before_fit("isolation forest score"));
        }
        check::check_query(x, self.n_features, "isolation forest score")?;
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mean_depth: f32 = self.trees.iter().map(|t| t.path_length(row)).sum::<f32>()
                    / self.trees.len() as f32;
                2f32.powf(-mean_depth / self.c_psi)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsl_tensor::rng::gauss;

    fn data_with_outliers() -> (Tensor, Vec<bool>) {
        let mut rng = seeded(1);
        let mut data = Vec::new();
        let mut is_outlier = Vec::new();
        for _ in 0..200 {
            data.push(gauss(&mut rng));
            data.push(gauss(&mut rng));
            is_outlier.push(false);
        }
        for i in 0..10 {
            data.push(8.0 + i as f32);
            data.push(-8.0 - i as f32);
            is_outlier.push(true);
        }
        (Tensor::from_vec(data, [210, 2]), is_outlier)
    }

    #[test]
    fn outliers_score_higher() {
        let (x, truth) = data_with_outliers();
        let mut forest = IsolationForest::new();
        forest.fit(&x).unwrap();
        let scores = forest.score(&x).unwrap();
        let inlier_mean: f32 = scores
            .iter()
            .zip(&truth)
            .filter(|(_, &o)| !o)
            .map(|(&s, _)| s)
            .sum::<f32>()
            / 200.0;
        let outlier_mean: f32 = scores
            .iter()
            .zip(&truth)
            .filter(|(_, &o)| o)
            .map(|(&s, _)| s)
            .sum::<f32>()
            / 10.0;
        assert!(
            outlier_mean > inlier_mean + 0.1,
            "outliers {outlier_mean} vs inliers {inlier_mean}"
        );
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let (x, _) = data_with_outliers();
        let mut forest = IsolationForest::new();
        forest.fit(&x).unwrap();
        assert!(forest
            .score(&x)
            .unwrap()
            .iter()
            .all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = data_with_outliers();
        let mut a = IsolationForest::new();
        let mut b = IsolationForest::new();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.score(&x).unwrap(), b.score(&x).unwrap());
    }

    #[test]
    fn c_factor_grows_with_n() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(10) > c_factor(2));
        assert!(c_factor(1000) > c_factor(100));
    }

    #[test]
    fn score_before_fit_is_a_typed_error() {
        let err = IsolationForest::new()
            .score(&Tensor::zeros([1, 1]))
            .unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("before fit"), "{err}");
    }

    #[test]
    fn degenerate_subsample_rejected_at_fit() {
        // Regression: ψ = 1 used to fit "successfully" and score everything
        // ≈ 0 through the clamped c_factor instead of failing loudly.
        let (x, _) = data_with_outliers();
        let mut forest = IsolationForest {
            subsample: 1,
            ..IsolationForest::new()
        };
        let err = forest.fit(&x).unwrap_err();
        assert_eq!(err.class(), tcsl_error::ErrorClass::Config);
        assert!(err.to_string().contains("subsample must be >= 2"), "{err}");
    }
}
